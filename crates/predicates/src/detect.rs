//! Every-occurrence detection under the *Instantaneously* modality.
//!
//! The problem specification of §3.3: detect **each occurrence** of a
//! predicate φ on sensed world attributes (the paper stresses that earlier
//! algorithms detect only the first occurrence and then "hang").
//!
//! All detectors share one skeleton: the root P₀ reconstructs the global
//! state by replaying the reports **in the order a clock discipline says
//! they happened**, evaluating φ after each update and emitting rising /
//! falling edges. The disciplines differ only in the ordering key:
//!
//! | Discipline | Orders by | Error behaviour (paper) |
//! |---|---|---|
//! | `Oracle` | ground-truth sense times | exact (the ideal observer) |
//! | `SyncedPhysical` | ε-synced readings | FN (and FP) for races shorter than ≈2ε (Mayo–Kearns) |
//! | `UnsyncedPhysical` | raw drifting readings | errors grow with offset/drift |
//! | `Arrival` | arrival order at P₀ | errors within the delay spread |
//! | `ScalarStrobe` | strobe scalar stamps | FN **and** FP under races within Δ |
//! | `VectorStrobe` | linear extension of the strobe vector order | FN only, with races flagged into the **borderline bin** |
//!
//! The vector-strobe detector reproduces the consensus flavour of \[24\]:
//! besides ordering, it uses the vector stamps to recognize *races*
//! (concurrent reports near an edge) — every detection involved in a race
//! is placed in the borderline bin, and near-miss occurrences that exist
//! under an adjacent reordering of concurrent reports are emitted as
//! borderline detections. The application chooses the borderline policy
//! (treat as positive to err on the safe side — the §5 recommendation).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use psn_core::{ExecutionTrace, ReceivedReport};
use psn_sim::time::SimTime;
use psn_world::{AttrKey, AttrValue, WorldState};

use crate::metrics::DetectorMetrics;
use crate::spec::Predicate;

/// One detected occurrence, in ground-truth coordinates (the truth times of
/// the sense events the detector attributed the edges to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Truth time of the rising-edge report.
    pub start: SimTime,
    /// Truth time of the falling-edge report (None if still true at the
    /// end of the observation stream).
    pub end: Option<SimTime>,
    /// True if this detection was involved in a race (vector-strobe
    /// discipline only): the application's borderline bin.
    pub borderline: bool,
}

/// The clock discipline a detector orders reports by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Discipline {
    /// Ground-truth order: the unattainable ideal observer.
    Oracle,
    /// ε-synchronized physical clock readings (Mayo–Kearns / Stoller).
    SyncedPhysical,
    /// Raw, unsynchronized drifting oscillator readings.
    UnsyncedPhysical,
    /// Arrival order at the root.
    Arrival,
    /// Strobe scalar stamps (SSC1–SSC2), ties broken by process id.
    ScalarStrobe,
    /// Strobe vector stamps (SVC1–SVC2) via their scalar linear extension,
    /// with race detection into the borderline bin.
    VectorStrobe,
}

impl Discipline {
    /// All disciplines, for sweep experiments.
    pub const ALL: [Discipline; 6] = [
        Discipline::Oracle,
        Discipline::SyncedPhysical,
        Discipline::UnsyncedPhysical,
        Discipline::Arrival,
        Discipline::ScalarStrobe,
        Discipline::VectorStrobe,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Discipline::Oracle => "oracle",
            Discipline::SyncedPhysical => "phys-sync(ε)",
            Discipline::UnsyncedPhysical => "phys-unsync",
            Discipline::Arrival => "arrival",
            Discipline::ScalarStrobe => "strobe-scalar",
            Discipline::VectorStrobe => "strobe-vector",
        }
    }
}

/// Sort key for one report under a discipline. Every key is totalized with
/// `(process, sense_seq)` so sweeps are deterministic.
fn order_key(r: &ReceivedReport, arrival_idx: usize, d: Discipline) -> (i128, usize, usize) {
    let p = r.report.process;
    let s = r.report.sense_seq;
    match d {
        Discipline::Oracle => (r.report.stamps.truth.as_nanos() as i128, p, s),
        Discipline::SyncedPhysical => (i128::from(r.report.stamps.synced.0), p, s),
        Discipline::UnsyncedPhysical => (i128::from(r.report.stamps.physical.0), p, s),
        Discipline::Arrival => (arrival_idx as i128, p, s),
        Discipline::ScalarStrobe | Discipline::VectorStrobe => {
            (i128::from(r.report.stamps.strobe_scalar.value), p, s)
        }
    }
}

/// Detect every occurrence of `predicate` in `trace` under `discipline`.
///
/// `initial` is the observed state before any report (deployment-time
/// calibration — typically the scenario's initial world state).
pub fn detect_occurrences(
    trace: &ExecutionTrace,
    predicate: &Predicate,
    initial: &WorldState,
    discipline: Discipline,
) -> Vec<Detection> {
    detect_occurrences_instrumented(
        trace,
        predicate,
        initial,
        discipline,
        &DetectorMetrics::disabled(),
    )
}

/// [`detect_occurrences`], recording occurrences emitted, borderline-bin
/// size, and per-occurrence detection latency vs ground truth into
/// `metrics`. Output is identical to the uninstrumented call.
pub fn detect_occurrences_instrumented(
    trace: &ExecutionTrace,
    predicate: &Predicate,
    initial: &WorldState,
    discipline: Discipline,
    metrics: &DetectorMetrics,
) -> Vec<Detection> {
    detect_impl(trace, predicate, initial, discipline, metrics, None)
}

/// [`detect_occurrences`], additionally appending a stamped
/// [`psn_sim::trace::TraceKind::Process`] record (kind
/// [`psn_sim::trace::ProcessEventKind::Detect`]) to `sink` for every
/// occurrence the detector emits — at the root-local arrival time of the
/// report that completed it, stamped with the root's vector clock at that
/// receive, with `detail` naming the reporting process (`u64::MAX` for the
/// trailing still-open interval, which no report completed). Passing the
/// execution's own sealed [`psn_sim::trace::Trace`] (cloned) yields one
/// merged causal trace: sense → send → receive → **detect**, ready for
/// [`psn_sim::trace_analysis::TraceAnalysis::detection_chain`]. `sink` is
/// re-sealed before returning. Detection output is identical to the
/// untraced call.
pub fn detect_occurrences_traced(
    trace: &ExecutionTrace,
    predicate: &Predicate,
    initial: &WorldState,
    discipline: Discipline,
    sink: &mut psn_sim::trace::Trace,
) -> Vec<Detection> {
    let out = detect_impl(
        trace,
        predicate,
        initial,
        discipline,
        &DetectorMetrics::disabled(),
        Some(sink),
    );
    sink.seal();
    out
}

fn detect_impl(
    trace: &ExecutionTrace,
    predicate: &Predicate,
    initial: &WorldState,
    discipline: Discipline,
    metrics: &DetectorMetrics,
    mut sink: Option<&mut psn_sim::trace::Trace>,
) -> Vec<Detection> {
    use psn_sim::trace::{ClockStamp, ProcessEventKind, TraceKind};
    let root = trace.root_id();
    // The verdict record for an occurrence completed by report `r`: emitted
    // at the root, at r's arrival, stamped with the root's merged vector at
    // that receive (so the verdict inherits the receive's causal past).
    let emit = |sink: &mut Option<&mut psn_sim::trace::Trace>, r: Option<&ReceivedReport>| {
        if let Some(sink) = sink.as_deref_mut() {
            let (at, stamp, detail) = match r {
                Some(r) => (
                    r.arrived_at,
                    ClockStamp::vector(r.root_vector.as_slice()),
                    r.report.process as u64,
                ),
                None => (trace.ended_at, ClockStamp::None, u64::MAX),
            };
            sink.record(
                at,
                TraceKind::Process { actor: root, kind: ProcessEventKind::Detect, stamp, detail },
            );
        }
    };
    // Order the observation stream per the discipline.
    let mut ordered: Vec<&ReceivedReport> = trace.log.reports.iter().collect();
    let keys: HashMap<*const ReceivedReport, (i128, usize, usize)> = trace
        .log
        .reports
        .iter()
        .enumerate()
        .map(|(i, r)| (r as *const _, order_key(r, i, discipline)))
        .collect();
    ordered.sort_by_key(|r| keys[&(*r as *const _)]);

    let vars = predicate.variables();
    let mut state: HashMap<AttrKey, AttrValue> =
        vars.iter().map(|&k| (k, initial.get(k).unwrap_or(AttrValue::Int(0)))).collect();

    let eval = |state: &HashMap<AttrKey, AttrValue>| {
        predicate.eval(&|k| state.get(&k).copied().unwrap_or(AttrValue::Int(0)))
    };

    // The race window for borderline classification: reports within this
    // many sweep positions of each other can be concurrent-and-adjacent.
    let window = trace.n.max(2);

    let mut detections: Vec<Detection> = Vec::new();
    // (start, borderline, root-local arrival of the rising-edge report —
    // None for the deployment-time open interval).
    let mut open: Option<(SimTime, bool, Option<SimTime>)> = None;
    let mut holds = eval(&state);
    if holds {
        open = Some((SimTime::ZERO, false, None));
    }
    // Recent history for race probes: (index, report, previous value of its
    // key before it applied).
    let mut recent: Vec<(usize, &ReceivedReport, Option<AttrValue>)> = Vec::new();

    for (idx, r) in ordered.iter().enumerate() {
        let key = r.report.key;
        let relevant = state.contains_key(&key);
        let prev_value = state.get(&key).copied();
        if relevant {
            state.insert(key, r.report.value);
        }
        let now_holds = eval(&state);
        let is_race = discipline == Discipline::VectorStrobe
            && recent.iter().any(|(i, s, _)| {
                idx - i <= window
                    && s.report.process != r.report.process
                    && s.report.stamps.strobe_vector.concurrent(&r.report.stamps.strobe_vector)
            });

        match (holds, now_holds) {
            (false, true) => {
                open = Some((r.report.stamps.truth, is_race, Some(r.arrived_at)));
            }
            (true, false) => {
                let (start, race_at_start, seen_at) = open.take().expect("open interval");
                let d = Detection {
                    start,
                    end: Some(r.report.stamps.truth),
                    borderline: race_at_start || is_race,
                };
                metrics.on_occurrence(&d, seen_at);
                emit(&mut sink, Some(r));
                detections.push(d);
            }
            _ => {}
        }

        // Near-miss probe (vector strobe only): if φ did not rise, but
        // would have risen had this report been ordered before an adjacent
        // concurrent report, the occurrence may exist in truth — emit a
        // borderline blip so the application can err on the safe side.
        if discipline == Discipline::VectorStrobe && !now_holds && !holds && relevant && is_race {
            for (i, s, s_prev) in recent.iter().rev() {
                if idx - i > window {
                    break;
                }
                if s.report.process == r.report.process
                    || !s.report.stamps.strobe_vector.concurrent(&r.report.stamps.strobe_vector)
                    || !state.contains_key(&s.report.key)
                {
                    continue;
                }
                // Tentatively roll back S (as if R preceded it).
                let cur = state.get(&s.report.key).copied();
                match s_prev {
                    Some(v) => {
                        state.insert(s.report.key, *v);
                    }
                    None => {
                        state.remove(&s.report.key);
                    }
                }
                let probe = eval(&state);
                // Restore.
                match cur {
                    Some(v) => {
                        state.insert(s.report.key, v);
                    }
                    None => {
                        state.remove(&s.report.key);
                    }
                }
                if probe {
                    let d = Detection {
                        start: r.report.stamps.truth,
                        end: Some(r.report.stamps.truth),
                        borderline: true,
                    };
                    metrics.on_occurrence(&d, Some(r.arrived_at));
                    emit(&mut sink, Some(r));
                    detections.push(d);
                    break;
                }
            }
        }

        holds = now_holds;
        if relevant {
            recent.push((idx, r, prev_value));
            if recent.len() > 2 * window {
                recent.remove(0);
            }
        }
    }
    if let Some((start, race, seen_at)) = open {
        let d = Detection { start, end: None, borderline: race };
        metrics.on_occurrence(&d, seen_at);
        emit(&mut sink, None);
        detections.push(d);
    }
    detections
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_core::{run_execution, ExecutionConfig};
    use psn_sim::delay::DelayModel;
    use psn_sim::time::{SimDuration, SimTime};
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};
    use psn_world::truth_intervals;

    fn scenario(rate: f64, cap: i64) -> psn_world::Scenario {
        exhibition::generate(
            &ExhibitionParams {
                doors: 3,
                arrival_rate_hz: rate,
                mean_stay: SimDuration::from_secs(40),
                duration: SimTime::from_secs(600),
                capacity: cap,
            },
            17,
        )
    }

    #[test]
    fn oracle_matches_ground_truth_exactly() {
        let s = scenario(2.0, 40);
        let trace = run_execution(&s, &ExecutionConfig::default());
        let pred = Predicate::occupancy_over(3, 40);
        let detected =
            detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        assert_eq!(detected.len(), truth.len(), "every occurrence, no hang");
        for (d, t) in detected.iter().zip(&truth) {
            assert_eq!(d.start, t.start);
            assert_eq!(d.end, t.end);
            assert!(!d.borderline);
        }
    }

    #[test]
    fn every_occurrence_is_detected_not_just_the_first() {
        let s = scenario(3.0, 60);
        let trace = run_execution(&s, &ExecutionConfig::default());
        let pred = Predicate::occupancy_over(3, 60);
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        if truth.len() < 2 {
            // Seed chosen to produce multiple occurrences; guard anyway.
            return;
        }
        let detected =
            detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
        assert!(detected.len() >= 2, "detector must not hang after the first occurrence");
    }

    #[test]
    fn synchronous_delay_strobe_equals_oracle() {
        // Δ = 0 with strobe-per-event: the strobe order is the truth order
        // (paper §4.2.3 item 5 / §4.2.4).
        let s = scenario(2.0, 40);
        let trace = run_execution(
            &s,
            &ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() },
        );
        let pred = Predicate::occupancy_over(3, 40);
        let init = s.timeline.initial_state();
        let oracle = detect_occurrences(&trace, &pred, &init, Discipline::Oracle);
        let scalar = detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe);
        let vector: Vec<Detection> =
            detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe)
                .into_iter()
                .map(|d| Detection { borderline: false, ..d })
                .collect();
        assert_eq!(scalar, oracle);
        assert_eq!(vector, oracle);
    }

    #[test]
    fn large_delay_causes_strobe_errors() {
        // Δ comparable to inter-event gaps: strobe order diverges from
        // truth, so edges move or appear/disappear.
        let s = scenario(5.0, 50);
        let trace = run_execution(
            &s,
            &ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_secs(2)),
                ..Default::default()
            },
        );
        let pred = Predicate::occupancy_over(3, 50);
        let init = s.timeline.initial_state();
        let oracle = detect_occurrences(&trace, &pred, &init, Discipline::Oracle);
        let scalar = detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe);
        assert_ne!(scalar, oracle, "2s delays at 5 ev/s must perturb detection");
    }

    #[test]
    fn vector_strobe_flags_borderline_under_races() {
        let s = scenario(8.0, 60);
        let trace = run_execution(
            &s,
            &ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_secs(1)),
                ..Default::default()
            },
        );
        let pred = Predicate::occupancy_over(3, 60);
        let detected = detect_occurrences(
            &trace,
            &pred,
            &s.timeline.initial_state(),
            Discipline::VectorStrobe,
        );
        assert!(
            detected.iter().any(|d| d.borderline),
            "high event rate with Δ=1s must produce races"
        );
    }

    #[test]
    fn instrumented_detection_is_identical_and_counts() {
        let s = scenario(8.0, 60);
        let trace = run_execution(
            &s,
            &ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_secs(1)),
                ..Default::default()
            },
        );
        let pred = Predicate::occupancy_over(3, 60);
        let init = s.timeline.initial_state();
        let plain = detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe);
        let m = psn_sim::metrics::Metrics::new();
        let dm = crate::metrics::DetectorMetrics::attach(&m);
        let inst =
            detect_occurrences_instrumented(&trace, &pred, &init, Discipline::VectorStrobe, &dm);
        assert_eq!(plain, inst, "metrics must not change detection output");
        let snap = m.snapshot();
        assert_eq!(snap.counter("detector.occurrences"), Some(inst.len() as u64));
        assert_eq!(
            snap.counter("detector.borderline"),
            Some(inst.iter().filter(|d| d.borderline).count() as u64)
        );
        let lat = snap.timer("detector.latency_ns").unwrap();
        assert!(lat.count >= 1, "report-triggered occurrences have a latency sample");
        assert!(lat.mean > 0.0, "Δ=1s delays give positive detection latency");
    }

    #[test]
    fn traced_detection_appends_stamped_verdicts() {
        let s = scenario(2.0, 40);
        let trace =
            run_execution(&s, &ExecutionConfig { record_sim_trace: true, ..Default::default() });
        let pred = Predicate::occupancy_over(3, 40);
        let init = s.timeline.initial_state();
        let plain = detect_occurrences(&trace, &pred, &init, Discipline::Arrival);
        let mut sink = trace.sim.clone();
        let before = sink.len();
        let traced =
            detect_occurrences_traced(&trace, &pred, &init, Discipline::Arrival, &mut sink);
        assert_eq!(plain, traced, "tracing must not change detection output");
        use psn_sim::trace::{ProcessEventKind, TraceKind};
        let verdicts: Vec<_> = sink
            .records()
            .iter()
            .filter(|r| {
                matches!(&r.kind, TraceKind::Process { kind: ProcessEventKind::Detect, .. })
            })
            .collect();
        assert_eq!(sink.len(), before + verdicts.len(), "only Detect records were appended");
        assert_eq!(verdicts.len(), traced.len(), "one verdict per occurrence");
        for (v, d) in verdicts.iter().zip(&traced) {
            if let TraceKind::Process { actor, stamp, detail, .. } = &v.kind {
                assert_eq!(*actor, trace.root_id());
                if d.end.is_some() {
                    assert!(stamp.as_vector().is_some(), "report-completed verdicts are stamped");
                    assert!(*detail < trace.n as u64);
                } else {
                    assert_eq!(*detail, u64::MAX, "trailing open interval has no reporter");
                }
            }
        }
        // The merged trace stays a valid total order: seal was called and
        // the verdict sits at the completing report's arrival time.
        assert!(sink.records().windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn disciplines_have_labels() {
        for d in Discipline::ALL {
            assert!(!d.label().is_empty());
        }
    }
}
