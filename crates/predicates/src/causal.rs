//! `Possibly` / `Definitely` detection of conjunctive predicates over
//! vector-stamped intervals (paper §3.1.1.b, §4.2; Cooper–Marzullo
//! modalities, Garg–Waldecker style interval advancement).
//!
//! Each conjunct φₚ is locally evaluable at process p; its truth intervals
//! are bounded by p's sense events, stamped with a vector-clock family:
//!
//! - **causality-based** Mattern/Fidge stamps: the paper's §4.2.1 note
//!   applies — when merely *observing* the world plane, sensors exchange no
//!   computation messages, "the Mattern/Fidge vector clock protocol has no
//!   occasion to invoke rules VC2 or VC3", so cross-process intervals are
//!   always mutually concurrent: `Possibly` trivially holds and
//!   `Definitely` never does. This degeneracy is itself one of the paper's
//!   observations, reproduced in the tests.
//! - **strobe vector** stamps: the artificial strobe order relates
//!   intervals across processes, making `Definitely`-style detection
//!   meaningful — the paper's §4.2 "partial order as an implementation
//!   tool" (\[17\]-style concurrent event detection).
//!
//! Every occurrence is reported (no "hanging" after the first).

use serde::{Deserialize, Serialize};

use psn_clocks::VectorStamp;
use psn_core::ExecutionTrace;
use psn_lattice::StampedInterval;
use psn_sim::time::SimTime;
use psn_world::{AttrKey, AttrValue, WorldState};

use crate::spec::Conjunct;

/// Which vector stamps bound the intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StampFamily {
    /// Mattern/Fidge causal stamps (degenerate for pure observation).
    Causal,
    /// Strobe vector stamps (SVC1–SVC2).
    StrobeVector,
}

/// One detected conjunctive occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalOccurrence {
    /// Latest truth start among the matched per-process intervals.
    pub truth_start: SimTime,
    /// Earliest truth end among them (None if some interval never closed).
    pub truth_end: Option<SimTime>,
    /// True if the intervals *definitely* overlapped (every observer sees a
    /// common instant), not merely possibly.
    pub definitely: bool,
}

/// A conjunct's truth interval at one process, with stamps and truth times.
#[derive(Debug, Clone)]
struct LocalInterval {
    stamped: StampedInterval,
    truth_start: SimTime,
    truth_end: Option<SimTime>,
}

/// Build the per-process truth intervals of each conjunct by replaying that
/// process's reports in local order.
fn local_intervals(
    trace: &ExecutionTrace,
    conjunct: &Conjunct,
    initial: &WorldState,
    family: StampFamily,
    n_stamp: usize,
) -> Vec<LocalInterval> {
    let mut reports: Vec<_> =
        trace.log.reports.iter().filter(|r| r.report.process == conjunct.process).collect();
    reports.sort_by_key(|r| r.report.sense_seq);

    let vars = conjunct.expr.variables();
    let mut state: std::collections::HashMap<AttrKey, AttrValue> =
        vars.iter().map(|&k| (k, initial.get(k).unwrap_or(AttrValue::Int(0)))).collect();
    let eval = |state: &std::collections::HashMap<AttrKey, AttrValue>| {
        conjunct.expr.eval_bool(&|k| state.get(&k).copied().unwrap_or(AttrValue::Int(0)))
    };
    let stamp_of = |r: &psn_core::ReceivedReport| -> VectorStamp {
        match family {
            StampFamily::Causal => r.report.stamps.vector.clone(),
            StampFamily::StrobeVector => r.report.stamps.strobe_vector.clone(),
        }
    };

    let mut out = Vec::new();
    let mut holds = eval(&state);
    let mut open: Option<(VectorStamp, SimTime)> =
        if holds { Some((VectorStamp::zero(n_stamp), SimTime::ZERO)) } else { None };
    let mut last_stamp = VectorStamp::zero(n_stamp);
    for r in &reports {
        if state.contains_key(&r.report.key) {
            state.insert(r.report.key, r.report.value);
        }
        let s = stamp_of(r);
        last_stamp = s.clone();
        let now = eval(&state);
        match (holds, now) {
            (false, true) => open = Some((s, r.report.stamps.truth)),
            (true, false) => {
                let (lo, t0) = open.take().expect("open");
                out.push(LocalInterval {
                    stamped: StampedInterval { lo, hi: s },
                    truth_start: t0,
                    truth_end: Some(r.report.stamps.truth),
                });
            }
            _ => {}
        }
        holds = now;
    }
    if let Some((lo, t0)) = open {
        out.push(LocalInterval {
            stamped: StampedInterval { lo, hi: last_stamp },
            truth_start: t0,
            truth_end: None,
        });
    }
    out
}

/// Detect every `Possibly`-overlapping combination of conjunct intervals
/// (one per conjunct), flagging those that `Definitely` overlap.
///
/// Uses Garg–Waldecker style advancement: while some interval surely
/// precedes another, advance it; when no interval surely precedes any
/// other, the current combination possibly overlaps — record it and
/// advance the earliest-ending interval.
pub fn detect_conjunctive(
    trace: &ExecutionTrace,
    conjuncts: &[Conjunct],
    initial: &WorldState,
    family: StampFamily,
) -> Vec<CausalOccurrence> {
    assert!(!conjuncts.is_empty(), "need at least one conjunct");
    let n_stamp = trace.n + 1; // stamps cover sensors + root
    let lists: Vec<Vec<LocalInterval>> =
        conjuncts.iter().map(|c| local_intervals(trace, c, initial, family, n_stamp)).collect();
    let mut idx = vec![0usize; lists.len()];
    let mut out = Vec::new();

    'outer: loop {
        for (p, list) in lists.iter().enumerate() {
            if idx[p] >= list.len() {
                break 'outer;
            }
        }
        // Find an interval that surely precedes another: it cannot be part
        // of any overlapping combination with the current (or any later)
        // intervals of that peer — advance it.
        let mut advanced = false;
        'pairs: for p in 0..lists.len() {
            for q in 0..lists.len() {
                if p == q {
                    continue;
                }
                let xp = &lists[p][idx[p]].stamped;
                let xq = &lists[q][idx[q]].stamped;
                if xp.surely_precedes(xq) {
                    idx[p] += 1;
                    advanced = true;
                    break 'pairs;
                }
            }
        }
        if advanced {
            continue;
        }
        // Pairwise possibly-overlapping: an occurrence.
        let current: Vec<&LocalInterval> =
            lists.iter().enumerate().map(|(p, l)| &l[idx[p]]).collect();
        let definitely = (0..current.len()).all(|p| {
            (0..current.len())
                .all(|q| p == q || current[p].stamped.definitely_overlaps(&current[q].stamped))
        }) || current.len() == 1;
        let truth_start = current.iter().map(|iv| iv.truth_start).max().expect("nonempty");
        let truth_end = current
            .iter()
            .map(|iv| iv.truth_end)
            .min_by_key(|e| e.unwrap_or(SimTime::MAX))
            .expect("nonempty");
        out.push(CausalOccurrence { truth_start, truth_end, definitely });
        // Advance the earliest-ending interval to look for the next
        // occurrence (every-occurrence semantics).
        let p_min = (0..current.len())
            .min_by_key(|&p| current[p].truth_end.unwrap_or(SimTime::MAX))
            .expect("nonempty");
        idx[p_min] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Expr;
    use psn_core::{run_execution, ExecutionConfig};
    use psn_sim::delay::DelayModel;
    use psn_sim::time::{SimDuration, SimTime};
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};
    use psn_world::truth_intervals;

    /// Two-door exhibition; conjuncts: door d busy (x_d − y_d > k).
    fn busy_conjuncts(k: i64) -> Vec<Conjunct> {
        (0..2)
            .map(|d| Conjunct {
                process: d,
                expr: Expr::var(AttrKey::new(d, 0))
                    .sub(Expr::var(AttrKey::new(d, 1)))
                    .gt(Expr::int(k)),
            })
            .collect()
    }

    fn scenario() -> psn_world::Scenario {
        exhibition::generate(
            &ExhibitionParams {
                doors: 2,
                arrival_rate_hz: 3.0,
                mean_stay: SimDuration::from_secs(60),
                duration: SimTime::from_secs(600),
                capacity: 100,
            },
            23,
        )
    }

    #[test]
    fn causal_stamps_never_definitely_overlap() {
        // Sensors exchange no computation messages, so Mattern/Fidge stamps
        // at different processes are always concurrent: Definitely is
        // unattainable — the paper's degeneracy observation (§4.2.1).
        let s = scenario();
        let trace = run_execution(&s, &ExecutionConfig::default());
        let occ = detect_conjunctive(
            &trace,
            &busy_conjuncts(3),
            &s.timeline.initial_state(),
            StampFamily::Causal,
        );
        assert!(!occ.is_empty(), "Possibly fires (everything is concurrent)");
        assert!(
            occ.iter().all(|o| !o.definitely),
            "Definitely must never hold under pure-observation causal clocks"
        );
    }

    #[test]
    fn strobe_stamps_enable_definitely() {
        // With Δ=0 strobes, cross-process knowledge exists: genuinely
        // overlapping busy periods are detected as Definitely.
        let s = scenario();
        let trace = run_execution(
            &s,
            &ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() },
        );
        let occ = detect_conjunctive(
            &trace,
            &busy_conjuncts(3),
            &s.timeline.initial_state(),
            StampFamily::StrobeVector,
        );
        // Ground truth: does the conjunction ever hold?
        let pred = crate::spec::Predicate::Conjunctive(busy_conjuncts(3));
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        if truth.is_empty() {
            assert!(occ.iter().all(|o| !o.definitely));
        } else {
            assert!(
                occ.iter().any(|o| o.definitely),
                "truth has {} overlaps but none detected Definitely",
                truth.len()
            );
        }
    }

    #[test]
    fn every_occurrence_reported() {
        let s = scenario();
        let trace = run_execution(
            &s,
            &ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() },
        );
        let pred = crate::spec::Predicate::Conjunctive(busy_conjuncts(2));
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        let occ = detect_conjunctive(
            &trace,
            &busy_conjuncts(2),
            &s.timeline.initial_state(),
            StampFamily::StrobeVector,
        );
        let definite = occ.iter().filter(|o| o.definitely).count();
        // With Δ=0, Definitely occurrences track the true overlaps closely.
        assert!(
            definite + 1 >= truth.len() && definite <= truth.len() + 1,
            "definite {definite} vs truth {}",
            truth.len()
        );
    }

    #[test]
    fn single_conjunct_is_trivially_definite() {
        let s = scenario();
        let trace = run_execution(&s, &ExecutionConfig::default());
        let one = vec![busy_conjuncts(3).remove(0)];
        let occ = detect_conjunctive(
            &trace,
            &one,
            &s.timeline.initial_state(),
            StampFamily::StrobeVector,
        );
        assert!(occ.iter().all(|o| o.definitely));
    }

    #[test]
    #[should_panic(expected = "at least one conjunct")]
    fn empty_conjuncts_rejected() {
        let s = scenario();
        let trace = run_execution(&s, &ExecutionConfig::default());
        let _ = detect_conjunctive(&trace, &[], &s.timeline.initial_state(), StampFamily::Causal);
    }
}
