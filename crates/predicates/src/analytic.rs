//! Analytical accuracy models.
//!
//! The paper's §3.3 cites simulations "backed by an analytical model with
//! supporting numerical results". This module provides the closed-form
//! counterparts of the measured experiments, so tables can print
//! *predicted vs measured* side by side:
//!
//! - [`fn_probability_synced`] — the Mayo–Kearns false-negative
//!   probability for ε-synchronized clocks (experiment E1's curve);
//! - [`race_probability`] — the probability that a sensed event is
//!   race-involved (another process's event within ±Δ) under Poisson
//!   arrivals (experiment E8's borderline-fraction curve);
//! - [`expected_undetectable_rate`] — the rate of truth occurrences
//!   shorter than the detector's resolution, which no single-time-axis
//!   implementation can see.

use psn_sim::time::SimDuration;

/// Probability that an occurrence of ground-truth duration `overlap` is
/// missed by a detector ordering by ε-synchronized readings whose
/// per-process errors are uniform on ±ε/2.
///
/// The observed overlap is `L + δ` with δ = e₁ − e₂ triangular on [−ε, ε];
/// a false negative needs `δ ≤ −L`:
///
/// ```text
/// P(FN) = (1 − L/ε)² / 2   for L < ε,   0 otherwise.
/// ```
pub fn fn_probability_synced(overlap: SimDuration, epsilon: SimDuration) -> f64 {
    let eps = epsilon.as_secs_f64();
    if eps <= 0.0 {
        return 0.0;
    }
    let r = overlap.as_secs_f64() / eps;
    if r >= 1.0 {
        0.0
    } else {
        (1.0 - r).powi(2) / 2.0
    }
}

/// Probability that a sensed event has at least one *other-process* event
/// within ±`delta`, for Poisson world events at total rate
/// `event_rate_hz` spread uniformly over `n` processes:
///
/// ```text
/// P(race) = 1 − exp(−2 Δ λ (n−1)/n)
/// ```
///
/// This is the fraction of detections the vector-strobe detector should
/// place in the borderline bin — the curve experiment E8 measures.
pub fn race_probability(event_rate_hz: f64, n: usize, delta: SimDuration) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let other_rate = event_rate_hz * (n as f64 - 1.0) / n as f64;
    1.0 - (-2.0 * delta.as_secs_f64() * other_rate).exp()
}

/// For truth occurrences whose durations are exponential with the given
/// mean, the fraction shorter than the detector resolution `resolution`
/// (2ε for synced physical clocks, ≈Δ for strobes): occurrences in this
/// tail are fundamentally race-prone.
pub fn expected_undetectable_rate(mean_duration: SimDuration, resolution: SimDuration) -> f64 {
    let m = mean_duration.as_secs_f64();
    if m <= 0.0 {
        return 1.0;
    }
    1.0 - (-resolution.as_secs_f64() / m).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::rng::RngFactory;

    #[test]
    fn fn_probability_shape() {
        let eps = SimDuration::from_millis(20);
        assert!((fn_probability_synced(SimDuration::ZERO, eps) - 0.5).abs() < 1e-12);
        assert_eq!(fn_probability_synced(eps, eps), 0.0);
        assert_eq!(fn_probability_synced(SimDuration::from_secs(1), eps), 0.0);
        let half = fn_probability_synced(SimDuration::from_millis(10), eps);
        assert!((half - 0.125).abs() < 1e-12, "(1-0.5)^2/2");
        // Monotone decreasing.
        let mut prev = 1.0;
        for ms in [0u64, 2, 5, 10, 15, 19, 20] {
            let p = fn_probability_synced(SimDuration::from_millis(ms), eps);
            assert!(p <= prev);
            prev = p;
        }
        assert_eq!(fn_probability_synced(SimDuration::from_millis(1), SimDuration::ZERO), 0.0);
    }

    #[test]
    fn fn_probability_matches_monte_carlo() {
        // Direct Monte Carlo of the abstract model: δ = e1 − e2 uniform
        // pair; FN iff L + δ ≤ 0.
        let mut rng = RngFactory::new(9).stream(0);
        let eps = 0.02f64;
        for &r in &[0.1f64, 0.25, 0.5, 0.75] {
            let l = r * eps;
            let n = 200_000;
            let hits = (0..n)
                .filter(|_| {
                    let e1 = rng.uniform_f64(-eps / 2.0, eps / 2.0);
                    let e2 = rng.uniform_f64(-eps / 2.0, eps / 2.0);
                    l + e1 - e2 <= 0.0
                })
                .count();
            let mc = hits as f64 / n as f64;
            let analytic = fn_probability_synced(
                SimDuration::from_secs_f64(l),
                SimDuration::from_secs_f64(eps),
            );
            assert!((mc - analytic).abs() < 0.01, "r={r}: mc {mc} vs analytic {analytic}");
        }
    }

    #[test]
    fn fn_probability_matches_e1_simulation() {
        // The full simulated pipeline (E1's setup) should track the
        // analytic curve.
        use crate::detect::{detect_occurrences, Discipline};
        use psn_core::{run_execution, ClockConfig, ExecutionConfig};
        use psn_sim::time::SimTime;

        let epsilon = SimDuration::from_millis(20);
        {
            let &ratio = &0.25f64;
            let overlap = epsilon.mul_f64(ratio);
            let trials = 120;
            let fn_count = (0..trials)
                .filter(|&seed| {
                    let base = SimTime::from_secs(1);
                    let s = crate::analytic::tests::two_pulse(
                        base,
                        base + SimDuration::from_millis(200) + overlap,
                        base + SimDuration::from_millis(200),
                        base + SimDuration::from_millis(500),
                    );
                    let cfg = ExecutionConfig {
                        clocks: ClockConfig { epsilon, ..Default::default() },
                        seed,
                        ..Default::default()
                    };
                    let trace = run_execution(&s, &cfg);
                    let pred = crate::spec::Predicate::Relational(
                        crate::spec::Expr::var(psn_world::AttrKey::new(0, 0))
                            .and(crate::spec::Expr::var(psn_world::AttrKey::new(1, 0))),
                    );
                    detect_occurrences(
                        &trace,
                        &pred,
                        &s.timeline.initial_state(),
                        Discipline::SyncedPhysical,
                    )
                    .is_empty()
                })
                .count();
            let measured = fn_count as f64 / trials as f64;
            let predicted = fn_probability_synced(overlap, epsilon);
            assert!(
                (measured - predicted).abs() < 0.12,
                "ratio {ratio}: measured {measured} vs predicted {predicted}"
            );
        }
    }

    /// Shared two-pulse builder (duplicated from psn-bench's common to
    /// avoid a dependency cycle).
    pub(crate) fn two_pulse(
        a_on: psn_sim::time::SimTime,
        a_off: psn_sim::time::SimTime,
        b_on: psn_sim::time::SimTime,
        b_off: psn_sim::time::SimTime,
    ) -> psn_world::Scenario {
        use psn_world::{AttrKey, AttrValue, ObjectSpec, Timeline, WorldEvent};
        let objects = vec![
            ObjectSpec {
                id: 0,
                name: "A".into(),
                attrs: vec![("v".into(), AttrValue::Bool(false))],
            },
            ObjectSpec {
                id: 1,
                name: "B".into(),
                attrs: vec![("v".into(), AttrValue::Bool(false))],
            },
        ];
        let ev = |id: usize, at, obj, v| WorldEvent {
            id,
            at,
            key: AttrKey::new(obj, 0),
            value: AttrValue::Bool(v),
            caused_by: vec![],
        };
        psn_world::Scenario {
            name: "two-pulse".into(),
            timeline: Timeline::new(
                objects,
                vec![
                    ev(0, a_on, 0, true),
                    ev(1, a_off, 0, false),
                    ev(2, b_on, 1, true),
                    ev(3, b_off, 1, false),
                ],
            ),
            sensing: psn_world::SensorAssignment {
                watches: vec![vec![AttrKey::new(0, 0)], vec![AttrKey::new(1, 0)]],
            },
        }
    }

    #[test]
    fn race_probability_shape() {
        let delta = SimDuration::from_millis(500);
        assert_eq!(race_probability(10.0, 1, delta), 0.0, "one process never races");
        assert_eq!(race_probability(0.0, 8, delta), 0.0, "no events, no races");
        assert!(race_probability(100.0, 8, SimDuration::from_secs(10)) > 0.999);
        // Monotone in rate and Δ.
        let p1 = race_probability(1.0, 4, delta);
        let p2 = race_probability(2.0, 4, delta);
        assert!(p2 > p1);
        let pd = race_probability(1.0, 4, SimDuration::from_secs(1));
        assert!(pd > p1);
    }

    #[test]
    fn race_probability_matches_poisson_monte_carlo() {
        // Sample Poisson event times over a window; measure the fraction
        // with another process's event within ±Δ.
        let mut rng = RngFactory::new(4).stream(0);
        let rate = 2.0f64; // total events/s
        let n = 4usize;
        let delta = 0.5f64;
        let horizon = 50_000.0f64;
        // Generate events: (time, process).
        let mut events: Vec<(f64, usize)> = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(1.0 / rate);
            if t > horizon {
                break;
            }
            events.push((t, rng.index(n)));
        }
        let mut raced = 0usize;
        for (i, &(ti, pi)) in events.iter().enumerate() {
            let mut hit = false;
            for (j, &(tj, pj)) in events.iter().enumerate() {
                if i != j && pi != pj && (ti - tj).abs() <= delta {
                    hit = true;
                    break;
                }
            }
            raced += usize::from(hit);
        }
        let mc = raced as f64 / events.len() as f64;
        let analytic = race_probability(rate, n, SimDuration::from_secs_f64(delta));
        assert!((mc - analytic).abs() < 0.02, "mc {mc} vs analytic {analytic}");
    }

    #[test]
    fn undetectable_tail() {
        let mean = SimDuration::from_secs(10);
        assert_eq!(expected_undetectable_rate(mean, SimDuration::ZERO), 0.0);
        let p = expected_undetectable_rate(mean, SimDuration::from_secs(1));
        assert!((p - (1.0 - (-0.1f64).exp())).abs() < 1e-12);
        assert!(expected_undetectable_rate(SimDuration::ZERO, mean) == 1.0);
    }
}
