//! One-call `Possibly` / `Definitely` status of a predicate over a trace.
//!
//! The Cooper–Marzullo modalities (§3.3) come in two shapes here:
//! conjunctive predicates go through the interval-overlap machinery of
//! [`crate::causal`] (strobe vector stamps, Garg–Waldecker advancement),
//! while relational predicates — which need a single reconstructed global
//! state — are swept in scalar-strobe order, a total order under which
//! every detected occurrence is both possible and definite (no concurrency
//! remains to disagree about). [`modal_status`] dispatches on the
//! predicate's shape so a caller (notably `psn-serve`'s `status` query)
//! need not care which algorithm applies.

use serde::{Deserialize, Serialize};

use psn_core::ExecutionTrace;
use psn_world::WorldState;

use crate::causal::{detect_conjunctive, StampFamily};
use crate::detect::{detect_occurrences, Discipline};
use crate::spec::Predicate;

/// Modal verdict counts for one predicate over one (partial or complete)
/// observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModalStatus {
    /// Occurrences for which `Possibly(φ)` holds.
    pub possibly: usize,
    /// Occurrences for which `Definitely(φ)` holds (always ≤ `possibly`).
    pub definitely: usize,
    /// True when the latest occurrence is still open at the end of the
    /// observation — the predicate is (possibly) holding *now*.
    pub holding_now: bool,
}

/// Compute the modal status of `predicate` over `trace`.
///
/// Conjunctive predicates are detected under
/// [`StampFamily::StrobeVector`] — the paper's construction that makes
/// `Definitely` attainable for pure observers. Relational predicates are
/// swept under [`Discipline::ScalarStrobe`]; the scalar order is total, so
/// each occurrence counts as both possible and definite. An empty
/// conjunctive predicate (no conjuncts) is vacuous: zero occurrences,
/// rather than the panic `detect_conjunctive` reserves for programmer
/// error.
pub fn modal_status(
    trace: &ExecutionTrace,
    predicate: &Predicate,
    initial: &WorldState,
) -> ModalStatus {
    match predicate {
        Predicate::Conjunctive(conjuncts) => {
            if conjuncts.is_empty() {
                return ModalStatus { possibly: 0, definitely: 0, holding_now: false };
            }
            let occ = detect_conjunctive(trace, conjuncts, initial, StampFamily::StrobeVector);
            ModalStatus {
                possibly: occ.len(),
                definitely: occ.iter().filter(|o| o.definitely).count(),
                holding_now: occ.last().is_some_and(|o| o.truth_end.is_none()),
            }
        }
        Predicate::Relational(_) => {
            let det = detect_occurrences(trace, predicate, initial, Discipline::ScalarStrobe);
            ModalStatus {
                possibly: det.len(),
                definitely: det.len(),
                holding_now: det.last().is_some_and(|d| d.end.is_none()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Conjunct, Expr};
    use psn_core::{run_execution, ExecutionConfig};
    use psn_sim::delay::DelayModel;
    use psn_sim::time::{SimDuration, SimTime};
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};
    use psn_world::AttrKey;

    fn scenario() -> psn_world::Scenario {
        exhibition::generate(
            &ExhibitionParams {
                doors: 2,
                arrival_rate_hz: 3.0,
                mean_stay: SimDuration::from_secs(60),
                duration: SimTime::from_secs(600),
                capacity: 100,
            },
            23,
        )
    }

    fn busy_conjuncts(k: i64) -> Vec<Conjunct> {
        (0..2)
            .map(|d| Conjunct {
                process: d,
                expr: Expr::var(AttrKey::new(d, 0))
                    .sub(Expr::var(AttrKey::new(d, 1)))
                    .gt(Expr::int(k)),
            })
            .collect()
    }

    #[test]
    fn relational_status_mirrors_the_scalar_sweep() {
        let s = scenario();
        let trace = run_execution(&s, &ExecutionConfig::default());
        let pred = Predicate::occupancy_over(2, 100);
        let init = s.timeline.initial_state();
        let status = modal_status(&trace, &pred, &init);
        let det = detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe);
        assert_eq!(status.possibly, det.len());
        assert_eq!(status.definitely, det.len(), "a total order admits no ambiguity");
        assert_eq!(status.holding_now, det.last().is_some_and(|d| d.end.is_none()));
        assert!(status.possibly > 0, "the fixture must actually fire");
    }

    #[test]
    fn conjunctive_status_counts_possibly_and_definitely() {
        let s = scenario();
        let trace = run_execution(
            &s,
            &ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() },
        );
        let pred = Predicate::Conjunctive(busy_conjuncts(3));
        let status = modal_status(&trace, &pred, &s.timeline.initial_state());
        assert!(status.possibly > 0);
        assert!(status.definitely > 0, "Δ=0 strobes make Definitely attainable");
        assert!(status.definitely <= status.possibly);
    }

    #[test]
    fn empty_conjunctive_predicate_is_vacuous_not_a_panic() {
        let s = scenario();
        let trace = run_execution(&s, &ExecutionConfig::default());
        let status =
            modal_status(&trace, &Predicate::Conjunctive(Vec::new()), &s.timeline.initial_state());
        assert_eq!(
            status,
            ModalStatus { possibly: 0, definitely: 0, holding_now: false },
            "wire input must never reach detect_conjunctive's assert"
        );
    }

    #[test]
    fn holding_now_reflects_a_trailing_open_interval() {
        // A predicate true from deployment that never goes false: the
        // single occurrence stays open through the end of the trace.
        let s = scenario();
        let trace = run_execution(&s, &ExecutionConfig::default());
        let always = Predicate::Relational(Expr::int(1).gt(Expr::int(0)));
        let status = modal_status(&trace, &always, &s.timeline.initial_state());
        assert_eq!((status.possibly, status.definitely), (1, 1));
        assert!(status.holding_now);
        let never = Predicate::Relational(Expr::int(0).gt(Expr::int(1)));
        let none = modal_status(&trace, &never, &s.timeline.initial_state());
        assert_eq!(none, ModalStatus { possibly: 0, definitely: 0, holding_now: false });
    }
}
