//! # psn-predicates — specification and detection of global predicates
//!
//! The paper's detection problem (§3.3): detect **each occurrence** of a
//! predicate φ on sensed world attributes under the *Instantaneously*
//! modality, with Δ-bounded asynchronous messages, using either the single
//! time axis (scalar clocks) or the multiple time axis (vector clocks).
//!
//! - [`spec`] — the predicate language: conjunctive and relational
//!   predicates over world attributes (§3.1.2);
//! - [`detect`] — the sweep detectors: one skeleton, six clock disciplines
//!   (oracle / ε-synced physical / unsynced physical / arrival / scalar
//!   strobe / vector strobe with the borderline bin);
//! - [`causal`] — `Possibly` / `Definitely` detection of conjunctive
//!   predicates over vector-stamped intervals (Cooper–Marzullo modalities,
//!   Garg–Waldecker advancement), under causal or strobe stamps;
//! - [`accuracy`] — FP/FN scoring against ground truth with tolerance and
//!   the borderline policy (§5's "err on the safe side");
//! - [`metrics`] — detector instrumentation (occurrences emitted,
//!   borderline-bin size, detection latency vs ground truth) recorded into
//!   a [`psn_sim::metrics::Metrics`] registry without changing output;
//! - [`stream`] — the streaming `Possibly`/`Definitely` detector: O(window)
//!   memory via the incremental antichain frontier and Δ-bound GC, exact
//!   [`modal::modal_status`] answers at any prefix.

#![warn(missing_docs)]

pub mod accuracy;
pub mod analytic;
pub mod causal;
pub mod detect;
pub mod metrics;
pub mod modal;
pub mod online;
pub mod spec;
pub mod stream;
pub mod timing;

pub use accuracy::{detection_matches, score, AccuracyReport, BorderlinePolicy};
pub use analytic::{expected_undetectable_rate, fn_probability_synced, race_probability};
pub use causal::{detect_conjunctive, CausalOccurrence, StampFamily};
pub use detect::{
    detect_occurrences, detect_occurrences_instrumented, detect_occurrences_traced, Detection,
    Discipline,
};
pub use metrics::DetectorMetrics;
pub use modal::{modal_status, ModalStatus};
pub use online::{OnlineDetector, OnlineStatus};
pub use spec::{Conjunct, Expr, Predicate};
pub use stream::{modal_status_streaming, stream_packing, StreamingModal};
pub use timing::{detect_timing, match_timing, TimingMatch, TimingSpec};
