//! Relative timing relations between predicate occurrences
//! (paper §3.1.1.a.ii).
//!
//! "Some attempts have been made at specifying such constraints for
//! real-world observation … Examples are: X before Y, or X overlaps Y, or
//! X before Y by real-time greater than 5 seconds. An example from secure
//! banking is \[22\]: a biometric key is presented remotely after a password
//! is entered across the network."
//!
//! A [`TimingSpec`] relates the occurrence intervals of two sub-predicates
//! X and Y. Detection works over any clock discipline: the occurrences of
//! X and Y are detected with the sweep detector, then the pairwise
//! relation is checked on the resulting intervals (in the coordinates the
//! detector attributed — for strobe disciplines that means edges may be
//! displaced by up to Δ, so specs should use margins larger than Δ, the
//! same Δ-bounded-accuracy argument the paper makes for *Instantaneously*).

use serde::{Deserialize, Serialize};

use psn_core::ExecutionTrace;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::WorldState;

use crate::detect::{detect_occurrences, Detection, Discipline};
use crate::spec::Predicate;

/// A relative-timing relation between occurrences of X and occurrences of Y.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimingSpec {
    /// Some occurrence of X ends before some occurrence of Y starts, with a
    /// gap of at least `min_gap` (use `ZERO` for plain "X before Y").
    BeforeBy {
        /// Minimum gap between X's end and Y's start.
        min_gap: SimDuration,
    },
    /// Some occurrence of X ends before some occurrence of Y starts, with a
    /// gap of at most `max_gap` — the secure-banking pattern: "the
    /// biometric key is presented (Y) after the password (X), within the
    /// session window".
    FollowedWithin {
        /// Maximum allowed gap between X's end and Y's start.
        max_gap: SimDuration,
    },
    /// Some occurrence of X overlaps some occurrence of Y in time.
    Overlaps,
}

/// One matched (X occurrence, Y occurrence) pair satisfying the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingMatch {
    /// Start of the matched X occurrence.
    pub x_start: SimTime,
    /// End of the matched X occurrence (horizon if open).
    pub x_end: SimTime,
    /// Start of the matched Y occurrence.
    pub y_start: SimTime,
    /// End of the matched Y occurrence (horizon if open).
    pub y_end: SimTime,
    /// True if either constituent detection was race-involved (borderline).
    pub borderline: bool,
}

fn closed(d: &Detection, horizon: SimTime) -> (SimTime, SimTime) {
    (d.start, d.end.unwrap_or(horizon))
}

/// Evaluate `spec` over two detected occurrence lists.
pub fn match_timing(
    xs: &[Detection],
    ys: &[Detection],
    spec: &TimingSpec,
    horizon: SimTime,
) -> Vec<TimingMatch> {
    let mut out = Vec::new();
    for x in xs {
        let (xs_, xe) = closed(x, horizon);
        for y in ys {
            let (ys_, ye) = closed(y, horizon);
            let ok = match *spec {
                TimingSpec::BeforeBy { min_gap } => {
                    ys_ >= xe && ys_.saturating_since(xe) >= min_gap
                }
                TimingSpec::FollowedWithin { max_gap } => {
                    ys_ >= xe && ys_.saturating_since(xe) <= max_gap
                }
                TimingSpec::Overlaps => xs_ < ye && ys_ < xe,
            };
            if ok {
                out.push(TimingMatch {
                    x_start: xs_,
                    x_end: xe,
                    y_start: ys_,
                    y_end: ye,
                    borderline: x.borderline || y.borderline,
                });
            }
        }
    }
    out
}

/// Detect occurrences of X and Y in `trace` under `discipline` and match
/// them against `spec` — the full §3.1.1.a.ii pipeline.
#[allow(clippy::too_many_arguments)]
pub fn detect_timing(
    trace: &ExecutionTrace,
    x: &Predicate,
    y: &Predicate,
    spec: &TimingSpec,
    initial: &WorldState,
    discipline: Discipline,
    horizon: SimTime,
) -> Vec<TimingMatch> {
    let xs = detect_occurrences(trace, x, initial, discipline);
    let ys = detect_occurrences(trace, y, initial, discipline);
    match_timing(&xs, &ys, spec, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(start_ms: u64, end_ms: u64) -> Detection {
        Detection {
            start: SimTime::from_millis(start_ms),
            end: Some(SimTime::from_millis(end_ms)),
            borderline: false,
        }
    }

    const H: SimTime = SimTime(10_000_000_000);

    #[test]
    fn before_by_requires_gap() {
        let xs = [det(100, 200)];
        let ys = [det(260, 300)];
        let strict = TimingSpec::BeforeBy { min_gap: SimDuration::from_millis(50) };
        assert_eq!(match_timing(&xs, &ys, &strict, H).len(), 1);
        let stricter = TimingSpec::BeforeBy { min_gap: SimDuration::from_millis(100) };
        assert!(match_timing(&xs, &ys, &stricter, H).is_empty());
    }

    #[test]
    fn before_rejects_overlap() {
        let xs = [det(100, 300)];
        let ys = [det(200, 400)];
        let spec = TimingSpec::BeforeBy { min_gap: SimDuration::ZERO };
        assert!(match_timing(&xs, &ys, &spec, H).is_empty());
        assert_eq!(match_timing(&xs, &ys, &TimingSpec::Overlaps, H).len(), 1);
    }

    #[test]
    fn followed_within_window() {
        // The secure-banking pattern: password (X) then biometric (Y)
        // within the session window.
        let password = [det(1000, 1100)];
        let biometric_ok = [det(1500, 1600)];
        let biometric_late = [det(9000, 9100)];
        let spec = TimingSpec::FollowedWithin { max_gap: SimDuration::from_secs(1) };
        assert_eq!(match_timing(&password, &biometric_ok, &spec, H).len(), 1);
        assert!(match_timing(&password, &biometric_late, &spec, H).is_empty());
    }

    #[test]
    fn every_pair_is_matched() {
        let xs = [det(0, 100), det(1000, 1100)];
        let ys = [det(200, 300), det(1200, 1300)];
        let spec = TimingSpec::BeforeBy { min_gap: SimDuration::ZERO };
        // X1 precedes both Ys; X2 precedes Y2: 3 matches.
        assert_eq!(match_timing(&xs, &ys, &spec, H).len(), 3);
    }

    #[test]
    fn open_intervals_extend_to_horizon() {
        let xs = [Detection { start: SimTime::from_millis(0), end: None, borderline: false }];
        let ys = [det(500, 600)];
        // X never ends: it cannot be "before" Y…
        let spec = TimingSpec::BeforeBy { min_gap: SimDuration::ZERO };
        assert!(match_timing(&xs, &ys, &spec, H).is_empty());
        // …but it overlaps Y.
        assert_eq!(match_timing(&xs, &ys, &TimingSpec::Overlaps, H).len(), 1);
    }

    #[test]
    fn borderline_propagates() {
        let xs = [Detection {
            start: SimTime::from_millis(0),
            end: Some(SimTime::from_millis(10)),
            borderline: true,
        }];
        let ys = [det(20, 30)];
        let m = match_timing(&xs, &ys, &TimingSpec::BeforeBy { min_gap: SimDuration::ZERO }, H);
        assert!(m[0].borderline);
    }

    #[test]
    fn end_to_end_on_a_trace() {
        use psn_core::{run_execution, ExecutionConfig};
        use psn_sim::delay::DelayModel;
        use psn_world::scenarios::exhibition::{self, ExhibitionParams};

        // X = "door 0 has seen ≥ 5 entries", Y = "door 1 has seen ≥ 5
        // entries": X and Y each rise once; match "Y follows X or X
        // follows Y" — the pair must be orderable one way.
        let s = exhibition::generate(
            &ExhibitionParams {
                doors: 2,
                arrival_rate_hz: 2.0,
                mean_stay: SimDuration::from_secs(600),
                duration: SimTime::from_secs(120),
                capacity: 1000,
            },
            5,
        );
        let cfg = ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() };
        let trace = run_execution(&s, &cfg);
        let x = Predicate::Relational(
            crate::spec::Expr::var(psn_world::AttrKey::new(0, 0)).ge(crate::spec::Expr::int(5)),
        );
        let y = Predicate::Relational(
            crate::spec::Expr::var(psn_world::AttrKey::new(1, 0)).ge(crate::spec::Expr::int(5)),
        );
        let init = s.timeline.initial_state();
        let h = SimTime::from_secs(120);
        let spec = TimingSpec::Overlaps;
        let m = detect_timing(&trace, &x, &y, &spec, &init, Discipline::VectorStrobe, h);
        // Both rise and never fall: open intervals overlap at the horizon.
        assert_eq!(m.len(), 1);
    }
}
