//! Scoring detections against ground truth.
//!
//! The paper quantifies detector quality in terms of **false negatives**
//! (a true occurrence missed) and **false positives** (a detection with no
//! true occurrence), with races — events closer together than the
//! detector's resolution (2ε for synced physical clocks, Δ for strobes) —
//! as the error source. The §5 scenario adds the **borderline bin**: the
//! consensus vector-strobe detector flags race-involved detections, and the
//! application chooses the policy ("to err on the safe side, such entries
//! can be treated as positives").

use serde::{Deserialize, Serialize};

use psn_sim::time::{SimDuration, SimTime};
use psn_world::TruthInterval;

use crate::detect::Detection;

/// What to do with borderline-flagged detections before scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BorderlinePolicy {
    /// Count them as detections (the §5 "err on the safe side" choice).
    AsPositive,
    /// Drop them.
    AsNegative,
}

/// Detection quality against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Truth occurrences matched by at least one detection.
    pub true_positives: usize,
    /// Detections matching no truth occurrence.
    pub false_positives: usize,
    /// Truth occurrences matched by no detection.
    pub false_negatives: usize,
    /// Number of borderline-flagged detections (before the policy applied).
    pub borderline: usize,
    /// Borderline detections that matched no truth occurrence (the FPs the
    /// borderline bin caught).
    pub borderline_false_positives: usize,
}

impl AccuracyReport {
    /// TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let d = self.true_positives + self.false_positives;
        if d == 0 {
            1.0
        } else {
            self.true_positives as f64 / d as f64
        }
    }

    /// TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        let d = self.true_positives + self.false_negatives;
        if d == 0 {
            1.0
        } else {
            self.true_positives as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Does `d` overlap truth interval `t` once `t` is expanded by
/// `tolerance` on both sides? Races within the detector's resolution
/// shift edges by up to Δ or 2ε, so a detection within tolerance of a
/// truth interval counts. Point detections (start == end) count via `<=`.
fn overlaps(d: &Detection, t: &TruthInterval, horizon: SimTime, tolerance: SimDuration) -> bool {
    let d_start = d.start;
    let d_end = d.end.unwrap_or(horizon);
    let t_start = SimTime::from_nanos(t.start.as_nanos().saturating_sub(tolerance.as_nanos()));
    let t_end = t.end.unwrap_or(horizon).saturating_add(tolerance);
    d_start <= t_end && t_start <= d_end
}

/// Does `d` match *any* truth occurrence within `tolerance`? The same
/// overlap rule [`score`] applies per detection, exposed for invariant
/// checks (the chaos soak asserts every unmatched detection is near an
/// injected fault).
pub fn detection_matches(
    d: &Detection,
    truth: &[TruthInterval],
    horizon: SimTime,
    tolerance: SimDuration,
) -> bool {
    truth.iter().any(|t| overlaps(d, t, horizon, tolerance))
}

/// Match `detections` against `truth` with a symmetric time `tolerance`
/// (races within the detector's resolution shift edges by up to Δ or 2ε —
/// a detection within tolerance of a truth interval counts).
pub fn score(
    detections: &[Detection],
    truth: &[TruthInterval],
    horizon: SimTime,
    tolerance: SimDuration,
    policy: BorderlinePolicy,
) -> AccuracyReport {
    let borderline = detections.iter().filter(|d| d.borderline).count();
    let effective: Vec<&Detection> = detections
        .iter()
        .filter(|d| match policy {
            BorderlinePolicy::AsPositive => true,
            BorderlinePolicy::AsNegative => !d.borderline,
        })
        .collect();

    let overlaps =
        |d: &Detection, t: &TruthInterval| -> bool { overlaps(d, t, horizon, tolerance) };

    let mut matched_truth = vec![false; truth.len()];
    let mut fp = 0usize;
    let mut borderline_fp = 0usize;
    for d in &effective {
        let mut any = false;
        for (i, t) in truth.iter().enumerate() {
            if overlaps(d, t) {
                matched_truth[i] = true;
                any = true;
            }
        }
        if !any {
            fp += 1;
            if d.borderline {
                borderline_fp += 1;
            }
        }
    }
    // Also count borderline FPs among dropped detections (so AsNegative
    // still reports what the bin caught).
    if matches!(policy, BorderlinePolicy::AsNegative) {
        for d in detections.iter().filter(|d| d.borderline) {
            if !truth.iter().any(|t| overlaps(d, t)) {
                borderline_fp += 1;
            }
        }
    }
    let tp = matched_truth.iter().filter(|&&m| m).count();
    let fn_ = truth.len() - tp;
    AccuracyReport {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        borderline,
        borderline_false_positives: borderline_fp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(start_ms: u64, end_ms: Option<u64>) -> TruthInterval {
        TruthInterval {
            start: SimTime::from_millis(start_ms),
            end: end_ms.map(SimTime::from_millis),
        }
    }

    fn d(start_ms: u64, end_ms: Option<u64>, borderline: bool) -> Detection {
        Detection {
            start: SimTime::from_millis(start_ms),
            end: end_ms.map(SimTime::from_millis),
            borderline,
        }
    }

    const H: SimTime = SimTime(3_600_000_000_000);
    const TOL: SimDuration = SimDuration(100_000_000); // 100ms

    #[test]
    fn exact_match_scores_perfectly() {
        let truth = [t(100, Some(200)), t(500, Some(700))];
        let det = [d(100, Some(200), false), d(500, Some(700), false)];
        let r = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!((r.true_positives, r.false_positives, r.false_negatives), (2, 0, 0));
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 1.0);
    }

    #[test]
    fn miss_is_false_negative() {
        let truth = [t(100, Some(200)), t(5000, Some(6000))];
        let det = [d(100, Some(200), false)];
        let r = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r.false_negatives, 1);
        assert!((r.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spurious_detection_is_false_positive() {
        let truth = [t(100, Some(200))];
        let det = [d(100, Some(200), false), d(9000, Some(9100), false)];
        let r = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r.false_positives, 1);
        assert!((r.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tolerance_allows_shifted_edges() {
        let truth = [t(1000, Some(1200))];
        // Detection shifted by 80ms < 100ms tolerance.
        let det = [d(1280, Some(1300), false)];
        let r = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r.true_positives, 1);
        // Shifted by more than the tolerance: miss.
        let det2 = [d(1500, Some(1600), false)];
        let r2 = score(&det2, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r2.true_positives, 0);
        assert_eq!(r2.false_positives, 1);
    }

    #[test]
    fn borderline_policy_switches_counting() {
        let truth = [t(100, Some(200))];
        // A borderline FP far from any truth.
        let det = [d(100, Some(200), false), d(9000, Some(9000), true)];
        let pos = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(pos.false_positives, 1);
        assert_eq!(pos.borderline, 1);
        assert_eq!(pos.borderline_false_positives, 1, "the bin caught it");
        let neg = score(&det, &truth, H, TOL, BorderlinePolicy::AsNegative);
        assert_eq!(neg.false_positives, 0, "dropped before scoring");
        assert_eq!(neg.borderline_false_positives, 1, "still reported as caught");
    }

    #[test]
    fn borderline_true_detection_survives_aspositive() {
        let truth = [t(100, Some(200))];
        let det = [d(150, Some(150), true)];
        let pos = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(pos.true_positives, 1);
        let neg = score(&det, &truth, H, TOL, BorderlinePolicy::AsNegative);
        assert_eq!(neg.false_negatives, 1, "dropping the borderline loses the occurrence");
    }

    #[test]
    fn open_intervals_extend_to_horizon() {
        let truth = [t(100, None)];
        let det = [d(500_000, None, false)];
        let r = score(&det, &truth, H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r.true_positives, 1);
    }

    #[test]
    fn empty_inputs() {
        let r = score(&[], &[], H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r.true_positives, 0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        let r2 = score(&[], &[t(1, Some(2))], H, TOL, BorderlinePolicy::AsPositive);
        assert_eq!(r2.false_negatives, 1);
        assert_eq!(r2.recall(), 0.0);
    }
}
