//! Predicate specification (paper §3.1.2).
//!
//! Two predicate classes matter for observing world-plane executions:
//!
//! - **conjunctive** — φ = ⋀ᵢ φᵢ where each conjunct is locally evaluable
//!   at one process (e.g. `xᵢ = 5 ∧ yⱼ > 7`);
//! - **relational** — an arbitrary expression over system-wide variables
//!   (e.g. the §5 occupancy predicate `Σᵢ (xᵢ − yᵢ) > 200`).
//!
//! Both are built from a small typed expression AST over world attributes,
//! evaluable against *any* variable source: the ground-truth
//! [`WorldState`], or the root's reconstructed observation map.

use serde::{Deserialize, Serialize};

use psn_clocks::ProcessId;
use psn_world::{AttrKey, AttrValue, WorldState};

/// A typed expression over world attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal.
    Lit(AttrValue),
    /// A variable: the current value of one attribute.
    Var(AttrKey),
    /// Arithmetic.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Sum of many terms (Σ — the paper's occupancy predicate shape).
    Sum(Vec<Expr>),
    /// Strictly greater.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater or equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Strictly less.
    Lt(Box<Expr>, Box<Expr>),
    /// Numeric equality (exact for ints/bools, epsilon-free for floats).
    Eq(Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// A variable reference.
    pub fn var(key: AttrKey) -> Expr {
        Expr::Var(key)
    }
    /// An integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(AttrValue::Int(v))
    }
    /// A float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(AttrValue::Float(v))
    }
    /// A boolean literal.
    pub fn boolean(v: bool) -> Expr {
        Expr::Lit(AttrValue::Bool(v))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(rhs))
    }
    /// `self ≥ rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Ge(Box::new(self), Box::new(rhs))
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(rhs))
    }
    /// `self = rhs`.
    pub fn eq_expr(self, rhs: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(rhs))
    }
    /// `self ∧ rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    /// `self ∨ rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    /// `¬self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self − rhs`.
    #[allow(clippy::should_implement_trait)] // by-value builder DSL, not arithmetic on &Expr
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
    /// `self × rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Numeric evaluation (booleans coerce to 0/1).
    pub fn eval_num(&self, read: &dyn Fn(AttrKey) -> AttrValue) -> f64 {
        match self {
            Expr::Lit(v) => v.as_float(),
            Expr::Var(k) => read(*k).as_float(),
            Expr::Add(a, b) => a.eval_num(read) + b.eval_num(read),
            Expr::Sub(a, b) => a.eval_num(read) - b.eval_num(read),
            Expr::Mul(a, b) => a.eval_num(read) * b.eval_num(read),
            Expr::Sum(xs) => xs.iter().map(|x| x.eval_num(read)).sum(),
            // Comparisons/logic coerce to 0/1 when used numerically.
            other => {
                if other.eval_bool(read) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Boolean evaluation (numbers are true iff nonzero).
    pub fn eval_bool(&self, read: &dyn Fn(AttrKey) -> AttrValue) -> bool {
        match self {
            Expr::Lit(v) => v.as_bool(),
            Expr::Var(k) => read(*k).as_bool(),
            Expr::Gt(a, b) => a.eval_num(read) > b.eval_num(read),
            Expr::Ge(a, b) => a.eval_num(read) >= b.eval_num(read),
            Expr::Lt(a, b) => a.eval_num(read) < b.eval_num(read),
            Expr::Eq(a, b) => a.eval_num(read) == b.eval_num(read),
            Expr::And(a, b) => a.eval_bool(read) && b.eval_bool(read),
            Expr::Or(a, b) => a.eval_bool(read) || b.eval_bool(read),
            Expr::Not(a) => !a.eval_bool(read),
            other => other.eval_num(read) != 0.0,
        }
    }

    /// All variables mentioned.
    pub fn variables(&self) -> Vec<AttrKey> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<AttrKey>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(k) => out.push(*k),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::Lt(a, b)
            | Expr::Eq(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) => a.collect_vars(out),
            Expr::Sum(xs) => {
                for x in xs {
                    x.collect_vars(out);
                }
            }
        }
    }
}

/// One locally evaluable conjunct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conjunct {
    /// The process that can evaluate this conjunct from its own sensed
    /// variables.
    pub process: ProcessId,
    /// The local expression.
    pub expr: Expr,
}

/// A predicate, classified per the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// φ = ⋀ᵢ φᵢ with each φᵢ local to one process.
    Conjunctive(Vec<Conjunct>),
    /// An arbitrary expression over system-wide variables.
    Relational(Expr),
}

impl Predicate {
    /// Evaluate against any variable source.
    pub fn eval(&self, read: &dyn Fn(AttrKey) -> AttrValue) -> bool {
        match self {
            Predicate::Conjunctive(cs) => cs.iter().all(|c| c.expr.eval_bool(read)),
            Predicate::Relational(e) => e.eval_bool(read),
        }
    }

    /// Evaluate against the ground-truth world state (missing attributes
    /// default to Int(0), matching the root's ignorance before the first
    /// report).
    pub fn eval_state(&self, state: &WorldState) -> bool {
        self.eval(&|k| state.get(k).unwrap_or(AttrValue::Int(0)))
    }

    /// All variables mentioned.
    pub fn variables(&self) -> Vec<AttrKey> {
        let mut out = match self {
            Predicate::Conjunctive(cs) => {
                cs.iter().flat_map(|c| c.expr.variables()).collect::<Vec<_>>()
            }
            Predicate::Relational(e) => e.variables(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The §5 occupancy predicate: Σ_d (x_d − y_d) > capacity, with door d
    /// watched by process d, x at attr 0 and y at attr 1.
    pub fn occupancy_over(doors: usize, capacity: i64) -> Predicate {
        Predicate::Relational(
            Expr::Sum(
                (0..doors)
                    .map(|d| Expr::var(AttrKey::new(d, 0)).sub(Expr::var(AttrKey::new(d, 1))))
                    .collect(),
            )
            .gt(Expr::int(capacity)),
        )
    }

    /// The §3.1 smart-office conjunctive predicate: motion in `room` ∧
    /// temp > `threshold`, both sensed by process `room`.
    pub fn hot_and_occupied(room: usize, threshold: f64) -> Predicate {
        Predicate::Conjunctive(vec![Conjunct {
            process: room,
            expr: Expr::var(AttrKey::new(room, 1))
                .and(Expr::var(AttrKey::new(room, 0)).gt(Expr::float(threshold))),
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(pairs: &[(AttrKey, AttrValue)]) -> impl Fn(AttrKey) -> AttrValue + '_ {
        move |k| {
            pairs.iter().find(|(key, _)| *key == k).map(|(_, v)| *v).unwrap_or(AttrValue::Int(0))
        }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let k = AttrKey::new(0, 0);
        let vars = [(k, AttrValue::Int(7))];
        let read = reader(&vars);
        assert!((Expr::var(k).add(Expr::int(3)).eval_num(&read) - 10.0).abs() < 1e-12);
        assert!(Expr::var(k).gt(Expr::int(5)).eval_bool(&read));
        assert!(!Expr::var(k).lt(Expr::int(5)).eval_bool(&read));
        assert!(Expr::var(k).eq_expr(Expr::int(7)).eval_bool(&read));
        assert!(Expr::var(k).ge(Expr::int(7)).eval_bool(&read));
        assert!((Expr::var(k).mul(Expr::int(2)).eval_num(&read) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn boolean_logic() {
        let a = AttrKey::new(0, 0);
        let b = AttrKey::new(1, 0);
        let vars = [(a, AttrValue::Bool(true)), (b, AttrValue::Bool(false))];
        let read = reader(&vars);
        assert!(Expr::var(a).and(Expr::var(b).negate()).eval_bool(&read));
        assert!(Expr::var(a).or(Expr::var(b)).eval_bool(&read));
        assert!(!Expr::var(b).eval_bool(&read));
        assert!(Expr::boolean(true).eval_bool(&read));
    }

    #[test]
    fn comparisons_coerce_numerically() {
        let read = reader(&[]);
        // (1 > 0) used as a number is 1.
        assert_eq!(Expr::int(1).gt(Expr::int(0)).eval_num(&read), 1.0);
        assert_eq!(Expr::int(0).gt(Expr::int(1)).eval_num(&read), 0.0);
        // A number used as a bool is nonzero.
        assert!(Expr::int(5).eval_bool(&read));
        assert!(!Expr::int(0).eval_bool(&read));
    }

    #[test]
    fn variables_are_collected_and_deduped() {
        let k0 = AttrKey::new(0, 0);
        let k1 = AttrKey::new(1, 0);
        let e = Expr::var(k0).add(Expr::var(k1)).gt(Expr::var(k0));
        assert_eq!(e.variables(), vec![k0, k1]);
    }

    #[test]
    fn occupancy_predicate_matches_manual_sum() {
        let p = Predicate::occupancy_over(2, 5);
        let vars = [
            (AttrKey::new(0, 0), AttrValue::Int(4)), // x0
            (AttrKey::new(0, 1), AttrValue::Int(1)), // y0
            (AttrKey::new(1, 0), AttrValue::Int(3)), // x1
            (AttrKey::new(1, 1), AttrValue::Int(0)), // y1
        ];
        let read = reader(&vars);
        assert!(p.eval(&read), "occupancy 6 > 5");
        let vars2 = [
            (AttrKey::new(0, 0), AttrValue::Int(4)),
            (AttrKey::new(0, 1), AttrValue::Int(2)),
            (AttrKey::new(1, 0), AttrValue::Int(3)),
            (AttrKey::new(1, 1), AttrValue::Int(0)),
        ];
        assert!(!p.eval(&reader(&vars2)), "occupancy 5 is not > 5");
    }

    #[test]
    fn conjunctive_needs_all_conjuncts() {
        let p = Predicate::Conjunctive(vec![
            Conjunct { process: 0, expr: Expr::var(AttrKey::new(0, 0)).gt(Expr::int(1)) },
            Conjunct { process: 1, expr: Expr::var(AttrKey::new(1, 0)).gt(Expr::int(1)) },
        ]);
        let both =
            [(AttrKey::new(0, 0), AttrValue::Int(2)), (AttrKey::new(1, 0), AttrValue::Int(2))];
        let one =
            [(AttrKey::new(0, 0), AttrValue::Int(2)), (AttrKey::new(1, 0), AttrValue::Int(0))];
        assert!(p.eval(&reader(&both)));
        assert!(!p.eval(&reader(&one)));
    }

    #[test]
    fn eval_state_defaults_missing_to_zero() {
        let p = Predicate::Relational(Expr::var(AttrKey::new(9, 9)).eq_expr(Expr::int(0)));
        let state = WorldState::default();
        assert!(p.eval_state(&state));
    }

    #[test]
    fn hot_and_occupied_shape() {
        let p = Predicate::hot_and_occupied(2, 30.0);
        let hot_occ = [
            (AttrKey::new(2, 0), AttrValue::Float(31.0)),
            (AttrKey::new(2, 1), AttrValue::Bool(true)),
        ];
        let hot_empty = [
            (AttrKey::new(2, 0), AttrValue::Float(31.0)),
            (AttrKey::new(2, 1), AttrValue::Bool(false)),
        ];
        assert!(p.eval(&reader(&hot_occ)));
        assert!(!p.eval(&reader(&hot_empty)));
        assert_eq!(p.variables().len(), 2);
    }
}
