//! Detector instrumentation.
//!
//! [`DetectorMetrics`] bundles pre-registered handles into a
//! [`psn_sim::metrics::Metrics`] registry for the detection layer:
//!
//! - counter `detector.occurrences` — occurrences emitted;
//! - counter `detector.borderline` — the borderline-bin size (detections
//!   flagged as race-involved by the vector-strobe discipline);
//! - timer `detector.latency_ns` — per-occurrence detection latency vs
//!   ground truth: the gap between the rising edge's ground-truth time and
//!   the root-local arrival of the report that let the detector see it;
//! - gauge `detector.buffer_depth` — the online detector's hold-back
//!   buffer occupancy (high-water tracked).
//!
//! Recording is observational only; instrumented and plain detection
//! produce identical output (the workspace-root determinism test covers
//! this end to end).

use psn_sim::metrics::{Counter, Gauge, Metrics, Timer};
use psn_sim::time::SimTime;

use crate::detect::Detection;

/// Pre-registered detector metric handles. Clone freely; clones share the
/// same underlying cells.
#[derive(Clone)]
pub struct DetectorMetrics {
    /// Occurrences emitted (closed or still-open at end of stream).
    pub occurrences: Counter,
    /// Borderline-bin size: occurrences involved in a race.
    pub borderline: Counter,
    /// Detection latency vs ground truth, in nanoseconds.
    pub latency: Timer,
    /// Online hold-back buffer occupancy.
    pub buffer_depth: Gauge,
}

impl DetectorMetrics {
    /// Register detector metrics in `metrics`. The latency histogram
    /// covers [0, 10s) in 100ms bins; the exact moments are unbounded.
    pub fn attach(metrics: &Metrics) -> Self {
        DetectorMetrics {
            occurrences: metrics.counter("detector.occurrences"),
            borderline: metrics.counter("detector.borderline"),
            latency: metrics.timer_with_range("detector.latency_ns", 0.0, 1e10, 100),
            buffer_depth: metrics.gauge("detector.buffer_depth"),
        }
    }

    /// Inert handles for uninstrumented detection.
    pub fn disabled() -> Self {
        DetectorMetrics::attach(&Metrics::disabled())
    }

    /// Record one emitted occurrence. `seen_at` is the root-local arrival
    /// time of the report that exposed the rising edge (None for
    /// occurrences already true at deployment, which have no latency).
    pub fn on_occurrence(&self, d: &Detection, seen_at: Option<SimTime>) {
        self.occurrences.inc();
        if d.borderline {
            self.borderline.inc();
        }
        if let Some(at) = seen_at {
            let lat = at.as_nanos().saturating_sub(d.start.as_nanos());
            self.latency.record(lat as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_and_borderline_and_latency() {
        let m = Metrics::new();
        let dm = DetectorMetrics::attach(&m);
        let d1 = Detection {
            start: SimTime::from_millis(100),
            end: Some(SimTime::from_millis(200)),
            borderline: false,
        };
        let d2 = Detection { borderline: true, ..d1 };
        dm.on_occurrence(&d1, Some(SimTime::from_millis(150)));
        dm.on_occurrence(&d2, None);
        let snap = m.snapshot();
        assert_eq!(snap.counter("detector.occurrences"), Some(2));
        assert_eq!(snap.counter("detector.borderline"), Some(1));
        let lat = snap.timer("detector.latency_ns").unwrap();
        assert_eq!(lat.count, 1, "deployment-time occurrences have no latency");
        assert!((lat.mean - 50e6).abs() < 1e-6, "50ms latency in ns");
    }
}
