//! Property-based tests for the predicate layer.

use proptest::prelude::*;

use psn_core::{run_execution, ExecutionConfig};
use psn_predicates::{
    detect_occurrences, modal_status, modal_status_streaming, score, BorderlinePolicy, Conjunct,
    Detection, Discipline, Expr, Predicate, StreamingModal,
};
use psn_sim::delay::DelayModel;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::{truth_intervals, AttrKey, AttrValue};

// ---------------------------------------------------------------------------
// Expression semantics
// ---------------------------------------------------------------------------

fn reader(vals: Vec<i64>) -> impl Fn(AttrKey) -> AttrValue {
    move |k: AttrKey| AttrValue::Int(vals.get(k.object).copied().unwrap_or(0))
}

proptest! {
    /// De Morgan: ¬(a ∧ b) ≡ ¬a ∨ ¬b over random assignments.
    #[test]
    fn de_morgan(vals in proptest::collection::vec(-5i64..5, 2)) {
        let read = reader(vals);
        let a = || Expr::var(AttrKey::new(0, 0)).gt(Expr::int(0));
        let b = || Expr::var(AttrKey::new(1, 0)).gt(Expr::int(0));
        let lhs = a().and(b()).negate();
        let rhs = a().negate().or(b().negate());
        prop_assert_eq!(lhs.eval_bool(&read), rhs.eval_bool(&read));
    }

    /// Comparison trichotomy: exactly one of <, =, > holds numerically.
    #[test]
    fn comparison_trichotomy(x in -100i64..100, y in -100i64..100) {
        let read = reader(vec![x, y]);
        let vx = || Expr::var(AttrKey::new(0, 0));
        let vy = || Expr::var(AttrKey::new(1, 0));
        let lt = vx().lt(vy()).eval_bool(&read);
        let eq = vx().eq_expr(vy()).eval_bool(&read);
        let gt = vx().gt(vy()).eval_bool(&read);
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
    }

    /// Sum distributes over evaluation: eval(Σ eᵢ) = Σ eval(eᵢ).
    #[test]
    fn sum_is_componentwise(vals in proptest::collection::vec(-50i64..50, 1..6)) {
        let n = vals.len();
        let read = reader(vals.clone());
        let sum = Expr::Sum((0..n).map(|i| Expr::var(AttrKey::new(i, 0))).collect());
        let expect: f64 = vals.iter().map(|&v| v as f64).sum();
        prop_assert!((sum.eval_num(&read) - expect).abs() < 1e-9);
    }

    /// Arithmetic identities: a − a = 0, a + 0 = a, a·1 = a.
    #[test]
    fn arithmetic_identities(x in -1000i64..1000) {
        let read = reader(vec![x]);
        let v = || Expr::var(AttrKey::new(0, 0));
        prop_assert_eq!(v().sub(v()).eval_num(&read), 0.0);
        prop_assert_eq!(v().add(Expr::int(0)).eval_num(&read), x as f64);
        prop_assert_eq!(v().mul(Expr::int(1)).eval_num(&read), x as f64);
    }
}

// ---------------------------------------------------------------------------
// Detection semantics on real executions
// ---------------------------------------------------------------------------

fn small_params(rate: f64) -> ExhibitionParams {
    ExhibitionParams {
        doors: 3,
        arrival_rate_hz: rate,
        mean_stay: SimDuration::from_secs(30),
        duration: SimTime::from_secs(200),
        capacity: 25,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The oracle discipline reproduces ground truth exactly, for any
    /// scenario seed and execution seed.
    #[test]
    fn oracle_equals_truth(seed in 0u64..500, exec_seed in 0u64..500) {
        let s = exhibition::generate(&small_params(2.0), seed);
        let pred = Predicate::occupancy_over(3, 25);
        let cfg = ExecutionConfig { seed: exec_seed, ..Default::default() };
        let trace = run_execution(&s, &cfg);
        let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        prop_assert_eq!(det.len(), truth.len());
        for (d, t) in det.iter().zip(&truth) {
            prop_assert_eq!(d.start, t.start);
            prop_assert_eq!(d.end, t.end);
        }
    }

    /// At Δ = 0 with per-event strobes, both strobe disciplines equal the
    /// oracle (paper §4.2.3 item 5) — property-tested across seeds.
    #[test]
    fn strobes_equal_oracle_at_delta_zero(seed in 0u64..500) {
        let s = exhibition::generate(&small_params(3.0), seed);
        let pred = Predicate::occupancy_over(3, 25);
        let cfg = ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() };
        let trace = run_execution(&s, &cfg);
        let init = s.timeline.initial_state();
        let strip = |v: Vec<Detection>| -> Vec<(SimTime, Option<SimTime>)> {
            v.into_iter().map(|d| (d.start, d.end)).collect()
        };
        let oracle = strip(detect_occurrences(&trace, &pred, &init, Discipline::Oracle));
        let scalar = strip(detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe));
        let vector = strip(detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe));
        prop_assert_eq!(&scalar, &oracle);
        prop_assert_eq!(&vector, &oracle);
    }

    /// Scoring invariants: TP + FN = |truth|; TP ≤ detections;
    /// AsNegative never has more detections matched than AsPositive.
    #[test]
    fn score_accounting_invariants(seed in 0u64..300, delta_ms in 0u64..2000) {
        let s = exhibition::generate(&small_params(3.0), seed);
        let pred = Predicate::occupancy_over(3, 25);
        let cfg = ExecutionConfig {
            delay: if delta_ms == 0 { DelayModel::Synchronous } else {
                DelayModel::delta(SimDuration::from_millis(delta_ms))
            },
            seed,
            ..Default::default()
        };
        let trace = run_execution(&s, &cfg);
        let det = detect_occurrences(
            &trace, &pred, &s.timeline.initial_state(), Discipline::VectorStrobe,
        );
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        let horizon = SimTime::from_secs(200);
        let tol = SimDuration::from_millis(2 * delta_ms + 100);
        let plus = score(&det, &truth, horizon, tol, BorderlinePolicy::AsPositive);
        let minus = score(&det, &truth, horizon, tol, BorderlinePolicy::AsNegative);
        prop_assert_eq!(plus.true_positives + plus.false_negatives, truth.len());
        prop_assert_eq!(minus.true_positives + minus.false_negatives, truth.len());
        prop_assert!(plus.true_positives >= minus.true_positives,
            "dropping borderline detections cannot gain TPs");
        prop_assert!(plus.recall() >= minus.recall() - 1e-12);
        prop_assert!(plus.precision() >= 0.0 && plus.precision() <= 1.0);
        prop_assert!(plus.f1() >= 0.0 && plus.f1() <= 1.0);
    }

    /// Streaming ≡ offline: the streaming detector fed one report at a
    /// time, in chunks (with interleaved `status()` probes), and via the
    /// sealed-trace adapter all agree with the offline [`modal_status`]
    /// sweep — counts *and* `holding_now` — across random exhibition
    /// traces, both predicate shapes, and shard counts {1, 4}.
    #[test]
    fn streaming_matches_offline_modal_status(
        seed in 0u64..400,
        delta_ms in 1u64..600,
        shards_of_four in 0u8..2,
        chunk in 1usize..97,
    ) {
        let s = exhibition::generate(&small_params(3.0), seed);
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
            seed,
            shards: if shards_of_four == 1 { 4 } else { 1 },
            ..Default::default()
        };
        let trace = run_execution(&s, &cfg);
        let init = s.timeline.initial_state();
        // hold_back ≥ 2Δ keeps strobe-key release order intact; the margin
        // absorbs same-instant ties at the watermark.
        let hold_back = SimDuration::from_millis(2 * delta_ms + 1);
        let conjunctive = Predicate::Conjunctive(
            (0..2)
                .map(|d| Conjunct {
                    process: d,
                    expr: Expr::var(AttrKey::new(d, 0))
                        .sub(Expr::var(AttrKey::new(d, 1)))
                        .gt(Expr::int(1)),
                })
                .collect(),
        );
        for pred in [Predicate::occupancy_over(3, 25), conjunctive] {
            let offline = modal_status(&trace, &pred, &init);

            // Sealed-trace adapter: unconditionally bit-identical.
            prop_assert_eq!(modal_status_streaming(&trace, &pred, &init), offline.clone());

            // One report at a time.
            let mut one = StreamingModal::new(&pred, &init, trace.n, hold_back);
            for r in &trace.log.reports {
                one.offer(r);
            }
            prop_assert_eq!(one.late_reports(), 0, "2Δ hold-back must suffice");
            prop_assert_eq!(one.seal(), offline.clone());

            // Chunked, probing status() between chunks (the probe must not
            // perturb the final verdict — it clones before sealing).
            let mut chunked = StreamingModal::new(&pred, &init, trace.n, hold_back);
            for batch in trace.log.reports.chunks(chunk) {
                for r in batch {
                    chunked.offer(r);
                }
                let probe = chunked.status();
                prop_assert!(probe.possibly >= probe.definitely);
            }
            prop_assert_eq!(chunked.seal(), offline.clone());
        }
    }

    /// Detections are time-ordered and non-overlapping per discipline
    /// (excluding zero-length borderline blips, which may interleave).
    #[test]
    fn detections_are_ordered(seed in 0u64..300) {
        let s = exhibition::generate(&small_params(4.0), seed);
        let pred = Predicate::occupancy_over(3, 25);
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(400)),
            seed,
            ..Default::default()
        };
        let trace = run_execution(&s, &cfg);
        for disc in [Discipline::Oracle, Discipline::SyncedPhysical, Discipline::Arrival] {
            let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), disc);
            for w in det.windows(2) {
                let end0 = w[0].end.expect("only last open");
                // Edges are attributed in truth coordinates which can be
                // locally reordered by up to the discipline's error; the
                // *sweep* order is monotone, so starts are non-decreasing
                // within tolerance for the oracle at least.
                if disc == Discipline::Oracle {
                    prop_assert!(end0 <= w[1].start);
                }
            }
        }
    }
}
