//! # psn-serve — the live detection service
//!
//! The paper's execution model (§2.2) is *on-line*: reports stream into
//! the root while predicate verdicts must be available continuously, not
//! after a batch run ends. This crate turns the repository's deterministic
//! engine into a long-running service:
//!
//! - [`wire`] — a length-prefixed JSON frame protocol over TCP: ingest
//!   sense events, advance the watermark, query the causal frontier,
//!   register predicates and read their `Possibly`/`Definitely` + online
//!   status, page through the report stream, snapshot, shut down;
//! - [`session`] — the single-threaded state machine behind the protocol:
//!   a [`psn_core::live::LiveExecution`] fed by a channel provider plus
//!   named [`psn_predicates::OnlineDetector`]s, with whole-session
//!   snapshot/restore built on deterministic journal replay;
//! - [`server`] — connection fan-in: reader threads decode frames and
//!   funnel them through one command channel to the service thread, so no
//!   wire input — malformed or otherwise — can panic or wedge the engine;
//! - [`http`] — an optional Prometheus-text `GET /metrics` endpoint
//!   (`--metrics-listen`) that snapshots the session's `Arc`-shared
//!   metrics and telemetry registries without touching the command
//!   channel.
//!
//! The `psn-serve` binary wraps this into a CLI (see `--help`); its
//! `--smoke` mode runs a scripted ingest-detect-snapshot-restore cycle
//! against a real socket and exits nonzero on any mismatch, which is what
//! CI's serve-smoke job executes.

#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod session;
pub mod wire;

pub use http::{prometheus_text, serve_metrics, HttpHandle};
pub use server::{clamp_subscription, serve, ServerHandle};
pub use session::{ServeConfig, ServeSession, ServeSnapshot, MAX_SLICE};
pub use wire::{read_frame, write_frame, ErrorCode, Request, Response, WireError, MAX_FRAME};
