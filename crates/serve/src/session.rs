//! The serving session: one live execution plus named streaming detectors.
//!
//! [`ServeSession`] is single-threaded by design — the server funnels every
//! request through one command channel, so the session needs no internal
//! locking and every request observes a consistent engine state. It owns:
//!
//! - a [`LiveExecution`] fed by a [`ChannelProvider`] (the ingest path),
//! - a set of **named detectors**: for each `Watch`ed predicate, a
//!   streaming [`OnlineDetector`] plus a [`StreamingModal`] kept current
//!   as reports arrive — modal (`Possibly`/`Definitely`) status is
//!   answered from the bounded live frontier in O(window), never by
//!   re-sweeping the whole trace,
//! - the ingest journal that makes [`ServeSnapshot`] possible.
//!
//! Every validation failure is a typed [`Response::Error`]; nothing a
//! client sends can panic the session (the engine boundary itself returns
//! [`psn_sim::engine::EngineError`] rather than asserting).

use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};

use serde::{Deserialize, Serialize};

use psn_core::live::{LiveExecution, LiveSnapshot, LoggedEvent, RestoreError};
use psn_core::root::NoActuation;
use psn_core::{ExecutionConfig, NetMsg};
use psn_predicates::{OnlineDetector, Predicate, StreamingModal};
use psn_sim::engine::EngineError;
use psn_sim::metrics::Metrics;
use psn_sim::provider::{ChannelProvider, ExternalEvent};
use psn_sim::telemetry::Telemetry;
use psn_sim::time::SimDuration;
use psn_world::WorldState;

use crate::wire::{ErrorCode, Request, Response};

/// Server-side cap on one `TraceSlice` reply.
pub const MAX_SLICE: usize = 1024;

/// Configuration of a serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of sensor processes (the root is process `n`).
    pub n: usize,
    /// The execution configuration (delay/loss/clocks/faults/seed…).
    pub exec: ExecutionConfig,
    /// Hold-back window for the streaming detectors (use ≥ 2Δ).
    pub hold_back: SimDuration,
    /// Deployment-time observed world state for detector initialisation.
    pub initial: WorldState,
    /// Where `Snapshot` requests persist to (`None`: not persisted).
    pub snapshot_path: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults for `n` sensors: the default execution config (Δ = 100 ms)
    /// with a 2Δ hold-back, an empty initial state, no snapshot path.
    pub fn new(n: usize) -> Self {
        ServeConfig {
            n,
            exec: ExecutionConfig::default(),
            hold_back: SimDuration::from_millis(200),
            initial: WorldState::default(),
            snapshot_path: None,
        }
    }
}

/// A restartable capture of a whole serving session: the live engine
/// snapshot plus everything needed to rebuild the detectors (which are
/// deterministic functions of the report stream, so only their
/// *definitions* need storing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// The engine state (config, watermark, ingest journal).
    pub live: LiveSnapshot,
    /// Events ingested but not yet due at the watermark (still queued in
    /// the ingest channel): without these, a snapshot taken between
    /// `Ingest` and `Advance` would silently drop accepted events.
    pub pending: Vec<LoggedEvent>,
    /// The watched predicates, in registration order.
    pub watches: Vec<(String, Predicate)>,
    /// The detectors' hold-back window.
    pub hold_back: SimDuration,
    /// The deployment-time world state.
    pub initial: WorldState,
}

impl ServeSnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
    }
}

/// One watched predicate: the report-stream online detector (edge counts,
/// lag) and the streaming modal detector (Possibly/Definitely from the
/// bounded frontier), plus the exported memory gauges.
struct NamedDetector {
    name: String,
    predicate: Predicate,
    online: OnlineDetector,
    modal: StreamingModal,
    mem_gauge: psn_sim::metrics::Gauge,
    width_gauge: psn_sim::metrics::Gauge,
}

/// The server-side state machine: applies [`Request`]s, produces
/// [`Response`]s.
pub struct ServeSession {
    live: LiveExecution,
    ingest_tx: Sender<ExternalEvent<NetMsg>>,
    detectors: Vec<NamedDetector>,
    /// Ingested events not yet due at the watermark (mirrors the channel
    /// provider's buffer, so snapshots can capture them).
    pending: Vec<LoggedEvent>,
    /// Reports already offered to every detector.
    report_cursor: usize,
    next_world_event: usize,
    hold_back: SimDuration,
    initial: WorldState,
    snapshot_path: Option<PathBuf>,
    /// The session's metrics registry, shared with the live engine.
    /// Clones are cheap `Arc` handles; the HTTP exposition listener holds
    /// one and snapshots it without going through the command channel.
    metrics: Metrics,
    /// The phase-scoped wall-clock telemetry registry (same sharing).
    telemetry: Telemetry,
}

impl ServeSession {
    /// A fresh session under `cfg`.
    pub fn new(cfg: ServeConfig) -> Self {
        let (tx, rx) = mpsc::channel();
        let metrics = Metrics::new();
        let telemetry = Telemetry::new();
        let mut live = LiveExecution::new_full(
            cfg.n,
            cfg.exec,
            Box::new(NoActuation),
            &metrics,
            Box::new(ChannelProvider::new(rx)),
        );
        live.set_telemetry(&telemetry);
        ServeSession {
            live,
            ingest_tx: tx,
            detectors: Vec::new(),
            pending: Vec::new(),
            report_cursor: 0,
            next_world_event: 0,
            hold_back: cfg.hold_back,
            initial: cfg.initial,
            snapshot_path: cfg.snapshot_path,
            metrics,
            telemetry,
        }
    }

    /// Rebuild a session from a snapshot: the engine replays its journal
    /// deterministically, then each watched detector is rebuilt by
    /// replaying the restored report stream — frontier, log, and
    /// per-predicate status all match the captured session exactly.
    pub fn restore(
        snap: ServeSnapshot,
        snapshot_path: Option<PathBuf>,
    ) -> Result<Self, RestoreError> {
        let (tx, rx) = mpsc::channel();
        let metrics = Metrics::new();
        let telemetry = Telemetry::new();
        let mut live = snap.live.restore_full(
            Box::new(ChannelProvider::new(rx)),
            Box::new(NoActuation),
            &metrics,
        )?;
        live.set_telemetry(&telemetry);
        let next_world_event = live
            .journal()
            .iter()
            .chain(snap.pending.iter())
            .filter_map(|e| match &e.msg {
                NetMsg::WorldSense { world_event, .. } => Some(world_event + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        // Re-queue the not-yet-due ingests, in their original order.
        for e in &snap.pending {
            let ev = ExternalEvent { at: e.at, to: e.to, from: e.from, msg: e.msg.clone() };
            tx.send(ev).expect("the session holds the receiver");
        }
        let mut session = ServeSession {
            live,
            ingest_tx: tx,
            detectors: Vec::new(),
            pending: snap.pending,
            report_cursor: 0,
            next_world_event,
            hold_back: snap.hold_back,
            initial: snap.initial,
            snapshot_path,
            metrics,
            telemetry,
        };
        for (name, predicate) in snap.watches {
            session.add_watch(name, predicate);
        }
        session.pump_detectors();
        Ok(session)
    }

    /// The session's live engine (read-only).
    pub fn live(&self) -> &LiveExecution {
        &self.live
    }

    /// A handle to the session's metrics registry. Snapshotting through a
    /// clone is thread-safe and does not go through the command channel —
    /// this is what the `--metrics-listen` HTTP exposition listener holds.
    pub fn metrics_registry(&self) -> Metrics {
        self.metrics.clone()
    }

    /// A handle to the session's telemetry registry (same sharing rules
    /// as [`metrics_registry`](Self::metrics_registry)).
    pub fn telemetry_registry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    fn add_watch(&mut self, name: String, predicate: Predicate) {
        let mut online = OnlineDetector::new(predicate.clone(), &self.initial, self.hold_back);
        let mut modal =
            StreamingModal::new(&predicate, &self.initial, self.live.n(), self.hold_back);
        // Catch a late registration up with the stream seen so far.
        self.live.with_log(|l| {
            for r in &l.reports[..self.report_cursor.min(l.reports.len())] {
                online.offer(r);
                modal.offer(r);
            }
        });
        let mem_gauge = self.metrics.gauge(&format!("detector.{name}.mem_high_water_cuts"));
        let width_gauge = self.metrics.gauge(&format!("detector.{name}.frontier_width"));
        mem_gauge.set(modal.mem_high_water_cuts());
        width_gauge.set(modal.frontier_width() as u64);
        self.detectors.retain(|d| d.name != name);
        self.detectors.push(NamedDetector {
            name,
            predicate,
            online,
            modal,
            mem_gauge,
            width_gauge,
        });
    }

    /// Feed reports that arrived since the last pump to every detector —
    /// zero-copy out of the shared log, timed as the `detector` telemetry
    /// phase, with the per-detector memory gauges refreshed after.
    fn pump_detectors(&mut self) {
        let tel = self.telemetry.coordinator();
        let t0 = tel.start();
        let detectors = &mut self.detectors;
        let seen = self.live.visit_new_reports(self.report_cursor, |r| {
            for d in detectors.iter_mut() {
                d.online.offer(r);
                d.modal.offer(r);
            }
        });
        self.report_cursor += seen;
        for d in &self.detectors {
            d.mem_gauge.set(d.modal.mem_high_water_cuts());
            d.width_gauge.set(d.modal.frontier_width() as u64);
        }
        tel.record(psn_sim::telemetry::Phase::Detector, t0);
    }

    fn engine_error(e: EngineError) -> Response {
        let code = match e {
            EngineError::TimeRegression { .. } => ErrorCode::TimeRegression,
            EngineError::UnknownActor { .. } => ErrorCode::UnknownProcess,
            _ => ErrorCode::Internal,
        };
        Response::Error { code, message: e.to_string() }
    }

    /// Apply one request. Never panics on any input; errors are typed
    /// responses and leave the session unchanged.
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Ingest { at, process, key, value } => {
                if process >= self.live.n() {
                    return Response::Error {
                        code: ErrorCode::UnknownProcess,
                        message: format!(
                            "process {process} out of range (this session has {} sensors)",
                            self.live.n()
                        ),
                    };
                }
                if at < self.live.watermark() {
                    return Response::Error {
                        code: ErrorCode::TimeRegression,
                        message: format!(
                            "cannot ingest at {at:?}: the watermark has passed {:?}",
                            self.live.watermark()
                        ),
                    };
                }
                let world_event = self.next_world_event;
                self.next_world_event += 1;
                let msg = NetMsg::WorldSense { key, value, world_event };
                let ev = ExternalEvent { at, to: process, from: process, msg: msg.clone() };
                match self.ingest_tx.send(ev) {
                    Ok(()) => {
                        self.pending.push(LoggedEvent { at, to: process, from: process, msg });
                        Response::Ingested { world_event: world_event as u64 }
                    }
                    Err(_) => Response::Error {
                        code: ErrorCode::Internal,
                        message: "ingest channel closed".into(),
                    },
                }
            }
            Request::Advance { to } => {
                let before = self.report_cursor;
                match self.live.advance_to(to) {
                    Ok(now) => {
                        // Everything strictly before the watermark has been
                        // polled out of the channel and journalled by the
                        // engine; only the rest is still pending.
                        let watermark = self.live.watermark();
                        self.pending.retain(|e| e.at >= watermark);
                        self.pump_detectors();
                        Response::Advanced {
                            now,
                            watermark: self.live.watermark(),
                            new_reports: self.report_cursor - before,
                        }
                    }
                    Err(e) => Self::engine_error(e),
                }
            }
            Request::Frontier => {
                let (reports, events) = self.live.with_log(|l| (l.reports.len(), l.events.len()));
                Response::Frontier {
                    watermark: self.live.watermark(),
                    vector: self.live.frontier(),
                    reports,
                    events,
                    rejected: self.live.rejected(),
                }
            }
            Request::Watch { name, predicate } => {
                self.add_watch(name.clone(), predicate);
                Response::Watching { name, watched: self.detectors.len() }
            }
            Request::Status { name } => {
                let Some(d) = self.detectors.iter().find(|d| d.name == name) else {
                    return Response::Error {
                        code: ErrorCode::UnknownPredicate,
                        message: format!("no predicate named {name:?} is watched"),
                    };
                };
                // The modal verdict comes from the streaming detector's
                // bounded frontier — O(window), never a whole-trace sweep.
                let tel = self.telemetry.coordinator();
                let t0 = tel.start();
                let modal = d.modal.status();
                tel.record(psn_sim::telemetry::Phase::Detector, t0);
                Response::Status {
                    name,
                    online: d.online.status(),
                    modal,
                    mem_high_water_cuts: d.modal.mem_high_water_cuts(),
                    frontier_width: d.modal.frontier_width(),
                }
            }
            Request::Metrics => Response::Metrics {
                metrics: self.metrics.snapshot(),
                telemetry: self.telemetry.snapshot(),
            },
            // Subscriptions are a connection-level protocol: the reader
            // acknowledges and paces the push frames itself (see
            // `server::connection`). Reaching the session — e.g. via the
            // in-process `ServerHandle::request` path — they just return
            // the ack with the server's clamping applied.
            Request::SubscribeMetrics { interval_ms, count } => {
                let (interval_ms, count) = crate::server::clamp_subscription(interval_ms, count);
                Response::Subscribed { stream: "metrics".into(), count, interval_ms }
            }
            Request::SubscribeTrace { interval_ms, count, .. } => {
                let (interval_ms, count) = crate::server::clamp_subscription(interval_ms, count);
                Response::Subscribed { stream: "trace".into(), count, interval_ms }
            }
            Request::TraceSlice { from, limit } => self.live.with_log(|l| {
                let total = l.reports.len();
                let from = from.min(total);
                let to = from.saturating_add(limit.min(MAX_SLICE)).min(total);
                Response::TraceSlice { from, total, reports: l.reports[from..to].to_vec() }
            }),
            Request::Snapshot => {
                let snap = self.snapshot();
                let json = snap.to_json();
                let bytes = json.len();
                match &self.snapshot_path {
                    Some(path) => match std::fs::write(path, json) {
                        Ok(()) => {
                            Response::Snapshot { path: Some(path.display().to_string()), bytes }
                        }
                        Err(e) => Response::Error {
                            code: ErrorCode::Internal,
                            message: format!("snapshot write failed: {e}"),
                        },
                    },
                    None => Response::Snapshot { path: None, bytes },
                }
            }
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// Capture the whole session (engine + watch definitions).
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            live: self.live.snapshot(),
            pending: self.pending.clone(),
            watches: self
                .detectors
                .iter()
                .map(|d| (d.name.clone(), d.predicate.clone()))
                .collect(),
            hold_back: self.hold_back,
            initial: self.initial.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::time::SimTime;
    use psn_world::{AttrKey, AttrValue};

    fn ingest(s: &mut ServeSession, ms: u64, p: usize, attr: usize, v: i64) -> Response {
        s.handle(Request::Ingest {
            at: SimTime::from_millis(ms),
            process: p,
            key: AttrKey::new(p, attr),
            value: AttrValue::Int(v),
        })
    }

    /// Drive entries (attr 0) through two doors so occupancy_over(2, 3)
    /// rises at 4 inside and falls when exits (attr 1) catch up.
    fn scripted_session() -> ServeSession {
        let mut s = ServeSession::new(ServeConfig::new(2));
        let w = s.handle(Request::Watch {
            name: "occ".into(),
            predicate: Predicate::occupancy_over(2, 3),
        });
        assert!(matches!(w, Response::Watching { watched: 1, .. }));
        for (i, (p, attr, v)) in [
            (0, 0, 1), // 1 in
            (1, 0, 1), // 2 in
            (0, 0, 2), // 3 in
            (1, 0, 2), // 4 in — predicate rises
            (0, 1, 2), // 2 out — predicate falls
            (1, 1, 2), // all out
        ]
        .into_iter()
        .enumerate()
        {
            let r = ingest(&mut s, 1000 * (i as u64 + 1), p, attr, v);
            assert!(matches!(r, Response::Ingested { .. }), "event {i}: {r:?}");
        }
        s
    }

    #[test]
    fn ingest_advance_status_detects_the_occurrence() {
        let mut s = scripted_session();
        let r = s.handle(Request::Advance { to: SimTime::from_secs(30) });
        let Response::Advanced { watermark, new_reports, .. } = r else {
            panic!("unexpected: {r:?}")
        };
        assert_eq!(watermark, SimTime::from_secs(30));
        assert_eq!(new_reports, 6, "every sense reported on a lossless mesh");

        let r = s.handle(Request::Status { name: "occ".into() });
        let Response::Status { online, modal, .. } = r else { panic!("unexpected: {r:?}") };
        assert_eq!(online.occurrences, 1, "rise at 4 inside, fall at 2");
        assert!(!online.holds);
        assert_eq!((modal.possibly, modal.definitely), (1, 1));
        assert!(!modal.holding_now);
    }

    #[test]
    fn frontier_grows_with_the_root_knowledge() {
        let mut s = scripted_session();
        let Response::Frontier { vector, reports, .. } = s.handle(Request::Frontier) else {
            panic!()
        };
        assert_eq!(reports, 0);
        assert_eq!(vector, psn_clocks::VectorStamp::zero(3));
        s.handle(Request::Advance { to: SimTime::from_secs(30) });
        let Response::Frontier { vector, reports, rejected, .. } = s.handle(Request::Frontier)
        else {
            panic!()
        };
        assert_eq!(reports, 6);
        assert_eq!(rejected, 0);
        assert!(vector[0] >= 1 && vector[1] >= 1, "root heard from both sensors: {vector:?}");
    }

    #[test]
    fn boundary_violations_are_typed_errors_not_panics() {
        let mut s = scripted_session();
        let r = ingest(&mut s, 1000, 99, 0, 1);
        assert!(matches!(r, Response::Error { code: ErrorCode::UnknownProcess, .. }), "{r:?}");
        s.handle(Request::Advance { to: SimTime::from_secs(10) });
        let r = ingest(&mut s, 1000, 0, 0, 1);
        assert!(matches!(r, Response::Error { code: ErrorCode::TimeRegression, .. }), "{r:?}");
        let r = s.handle(Request::Advance { to: SimTime::from_secs(5) });
        assert!(matches!(r, Response::Error { code: ErrorCode::TimeRegression, .. }), "{r:?}");
        let r = s.handle(Request::Status { name: "nope".into() });
        assert!(matches!(r, Response::Error { code: ErrorCode::UnknownPredicate, .. }), "{r:?}");
        // The session is still healthy.
        assert!(matches!(s.handle(Request::Ping), Response::Pong));
        let r = ingest(&mut s, 20_000, 0, 0, 9);
        assert!(matches!(r, Response::Ingested { .. }));
    }

    #[test]
    fn trace_slice_pages_through_reports() {
        let mut s = scripted_session();
        s.handle(Request::Advance { to: SimTime::from_secs(30) });
        let Response::TraceSlice { from, total, reports } =
            s.handle(Request::TraceSlice { from: 2, limit: 3 })
        else {
            panic!()
        };
        assert_eq!((from, total, reports.len()), (2, 6, 3));
        let Response::TraceSlice { reports: tail, .. } =
            s.handle(Request::TraceSlice { from: 5, limit: 100 })
        else {
            panic!()
        };
        assert_eq!(tail.len(), 1);
        let Response::TraceSlice { reports: none, .. } =
            s.handle(Request::TraceSlice { from: 99, limit: 10 })
        else {
            panic!()
        };
        assert!(none.is_empty(), "out-of-range from clamps to empty, no panic");
    }

    #[test]
    fn snapshot_kill_restore_preserves_frontier_and_status() {
        let mut s = scripted_session();
        s.handle(Request::Advance { to: SimTime::from_secs(4) }); // mid-script
        let snap = s.snapshot();
        let json = snap.to_json();

        // Continue the original to completion.
        s.handle(Request::Advance { to: SimTime::from_secs(30) });
        let want_frontier = s.live().frontier();
        let Response::Status { online: want_online, modal: want_modal, .. } =
            s.handle(Request::Status { name: "occ".into() })
        else {
            panic!()
        };
        drop(s);

        // Restore: the journal replays the delivered prefix, the pending
        // list re-queues the ingested-but-not-yet-due tail — nothing needs
        // re-sending.
        let snap = ServeSnapshot::from_json(&json).expect("roundtrip");
        assert_eq!(snap.pending.len(), 3, "events at 4/5/6 s were not yet due at the 4 s cut");
        let mut r = ServeSession::restore(snap, None).expect("restore");
        assert_eq!(r.live().watermark(), SimTime::from_secs(4));
        r.handle(Request::Advance { to: SimTime::from_secs(30) });
        assert_eq!(r.live().frontier(), want_frontier, "no causal frontier state lost");
        let Response::Status { online, modal, .. } =
            r.handle(Request::Status { name: "occ".into() })
        else {
            panic!()
        };
        assert_eq!(online, want_online, "per-predicate streaming status identical");
        assert_eq!(modal, want_modal);
    }
}
