//! The live detection service CLI.
//!
//! ```text
//! psn-serve [--port N] [--sensors N] [--delta-ms N] [--seed N]
//!           [--hold-back-ms N] [--snapshot PATH] [--restore PATH]
//!           [--metrics-listen PORT]
//! psn-serve --smoke [--metrics-listen PORT]
//! ```
//!
//! Serves the length-prefixed JSON wire protocol (see the `psn_serve`
//! crate docs) on `127.0.0.1`. `--port 0` (the default) binds an
//! ephemeral port and prints `listening on 127.0.0.1:PORT` so scripts can
//! scrape it. `--metrics-listen PORT` additionally serves a Prometheus
//! text `GET /metrics` endpoint on `127.0.0.1:PORT` (again, 0 binds an
//! ephemeral port, printed as `metrics on 127.0.0.1:PORT`). `--restore`
//! resumes from a snapshot written by an earlier `Snapshot` request;
//! `--smoke` runs a scripted ingest → detect → snapshot → kill → restore
//! cycle against a real socket — including HTTP probes of the metrics
//! endpoint when `--metrics-listen` is given — and exits nonzero on any
//! mismatch (CI's serve-smoke and telemetry-smoke jobs).

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use psn_serve::wire;
use psn_serve::{serve, Request, Response, ServeConfig, ServeSession, ServeSnapshot};
use psn_sim::delay::DelayModel;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::{AttrKey, AttrValue};

struct Options {
    port: u16,
    sensors: usize,
    delta_ms: u64,
    seed: u64,
    hold_back_ms: u64,
    snapshot: Option<PathBuf>,
    restore: Option<PathBuf>,
    smoke: bool,
    metrics_listen: Option<u16>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            port: 0,
            sensors: 4,
            delta_ms: 100,
            seed: 0,
            hold_back_ms: 200,
            snapshot: None,
            restore: None,
            smoke: false,
            metrics_listen: None,
        }
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => o.port = value(a, &mut it)?.parse().map_err(|e| format!("--port: {e}"))?,
            "--sensors" => {
                o.sensors = value(a, &mut it)?.parse().map_err(|e| format!("--sensors: {e}"))?;
                if o.sensors == 0 {
                    return Err("--sensors must be at least 1".into());
                }
            }
            "--delta-ms" => {
                o.delta_ms = value(a, &mut it)?.parse().map_err(|e| format!("--delta-ms: {e}"))?
            }
            "--seed" => o.seed = value(a, &mut it)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--hold-back-ms" => {
                o.hold_back_ms =
                    value(a, &mut it)?.parse().map_err(|e| format!("--hold-back-ms: {e}"))?
            }
            "--snapshot" => o.snapshot = Some(PathBuf::from(value(a, &mut it)?)),
            "--restore" => o.restore = Some(PathBuf::from(value(a, &mut it)?)),
            "--smoke" => o.smoke = true,
            "--metrics-listen" => {
                o.metrics_listen =
                    Some(value(a, &mut it)?.parse().map_err(|e| format!("--metrics-listen: {e}"))?)
            }
            "--help" | "-h" => {
                println!(
                    "usage: psn-serve [--port N] [--sensors N] [--delta-ms N] [--seed N]\n\
                     \x20                [--hold-back-ms N] [--snapshot PATH] [--restore PATH]\n\
                     \x20                [--metrics-listen PORT]\n\
                     \x20      psn-serve --smoke [--metrics-listen PORT]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(o)
}

fn config(o: &Options) -> ServeConfig {
    let mut cfg = ServeConfig::new(o.sensors);
    cfg.exec.delay = DelayModel::delta(SimDuration::from_millis(o.delta_ms));
    cfg.exec.seed = o.seed;
    cfg.hold_back = SimDuration::from_millis(o.hold_back_ms);
    cfg.snapshot_path = o.snapshot.clone();
    cfg
}

fn run_server(o: &Options) -> Result<(), String> {
    let session = match &o.restore {
        Some(path) => {
            let snap = ServeSnapshot::load(path).map_err(|e| format!("--restore {path:?}: {e}"))?;
            let s = ServeSession::restore(snap, o.snapshot.clone())
                .map_err(|e| format!("--restore {path:?}: {e}"))?;
            eprintln!(
                "restored session: watermark {:?}, {} journalled events",
                s.live().watermark(),
                s.live().journal().len()
            );
            s
        }
        None => ServeSession::new(config(o)),
    };
    let listener = TcpListener::bind(("127.0.0.1", o.port)).map_err(|e| format!("bind: {e}"))?;
    let http = match o.metrics_listen {
        Some(port) => {
            let (m, t) = (session.metrics_registry(), session.telemetry_registry());
            let l =
                TcpListener::bind(("127.0.0.1", port)).map_err(|e| format!("bind metrics: {e}"))?;
            let h = psn_serve::serve_metrics(l, m, t);
            println!("metrics on {}", h.addr());
            Some(h)
        }
        None => None,
    };
    let handle = serve(listener, session).map_err(|e| format!("serve: {e}"))?;
    println!("listening on {}", handle.addr());
    handle.wait();
    if let Some(h) = http {
        h.stop();
    }
    Ok(())
}

// --- smoke mode -----------------------------------------------------------

fn roundtrip(c: &mut TcpStream, req: &Request) -> Result<Response, String> {
    wire::write_frame(c, req).map_err(|e| format!("write: {e}"))?;
    wire::read_frame::<Response>(c)
        .map_err(|e| format!("read: {e}"))?
        .ok_or_else(|| "server closed the connection".into())
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        eprintln!("smoke: ok - {what}");
        Ok(())
    } else {
        Err(format!("smoke check failed: {what}"))
    }
}

/// Two doors; entries on attr 0, exits on attr 1; occupancy_over(2, 3)
/// rises at the fourth entry and falls when exits catch up.
const SCRIPT: &[(u64, usize, usize, i64)] = &[
    (1, 0, 0, 1),
    (2, 1, 0, 1),
    (3, 0, 0, 2),
    (4, 1, 0, 2), // 4 inside: predicate rises
    (5, 0, 1, 2), // 2 inside: predicate falls
    (6, 1, 1, 2),
];

/// Send a raw request to the HTTP metrics endpoint and read the whole
/// response (status line + headers + body).
fn http_exchange(addr: std::net::SocketAddr, request: &[u8]) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut s = TcpStream::connect(addr).map_err(|e| format!("http connect: {e}"))?;
    s.write_all(request).map_err(|e| format!("http write: {e}"))?;
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    s.read_to_string(&mut out).map_err(|e| format!("http read: {e}"))?;
    Ok(out)
}

/// Exercise the Prometheus endpoint while the serve session is live: a
/// valid scrape must return engine counters, and malformed requests must
/// cost only their own connection.
fn smoke_http(addr: std::net::SocketAddr) -> Result<(), String> {
    let resp = http_exchange(addr, b"GET /metrics HTTP/1.0\r\n\r\n")?;
    check(resp.starts_with("HTTP/1.0 200 OK"), "metrics endpoint answers 200")?;
    check(resp.contains("psn_engine_events"), "scrape exposes engine counters")?;
    check(resp.contains("psn_telemetry_phase_ns"), "scrape exposes telemetry phases")?;
    let resp = http_exchange(addr, b"\x01\x02 not even close to http\r\n\r\n")?;
    check(resp.starts_with("HTTP/1.0 400"), "malformed HTTP request answered 400")?;
    let resp = http_exchange(addr, b"GET /metrics HTTP/1.0\r\n\r\n")?;
    check(resp.starts_with("HTTP/1.0 200 OK"), "endpoint survives malformed request")?;
    Ok(())
}

fn smoke(metrics_listen: Option<u16>) -> Result<(), String> {
    let snap_path =
        std::env::temp_dir().join(format!("psn-serve-smoke-{}.json", std::process::id()));
    let mut o = Options { sensors: 2, snapshot: Some(snap_path.clone()), ..Default::default() };

    // Phase 1: serve, ingest the script over the wire, detect, snapshot.
    let session = ServeSession::new(config(&o));
    let http = match metrics_listen {
        Some(port) => {
            let (m, t) = (session.metrics_registry(), session.telemetry_registry());
            let l =
                TcpListener::bind(("127.0.0.1", port)).map_err(|e| format!("bind metrics: {e}"))?;
            let h = psn_serve::serve_metrics(l, m, t);
            eprintln!("smoke: metrics on {}", h.addr());
            Some(h)
        }
        None => None,
    };
    let h = serve(TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?, session)
        .map_err(|e| format!("serve: {e}"))?;
    let addr = h.addr();
    eprintln!("smoke: phase 1 serving on {addr}");
    let mut c = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = c.set_nodelay(true);

    check(roundtrip(&mut c, &Request::Ping)? == Response::Pong, "ping")?;
    let watch = Request::Watch {
        name: "occ".into(),
        predicate: psn_predicates::Predicate::occupancy_over(2, 3),
    };
    check(matches!(roundtrip(&mut c, &watch)?, Response::Watching { .. }), "watch registered")?;
    for &(sec, p, attr, v) in SCRIPT {
        let r = roundtrip(
            &mut c,
            &Request::Ingest {
                at: SimTime::from_secs(sec),
                process: p,
                key: AttrKey::new(p, attr),
                value: AttrValue::Int(v),
            },
        )?;
        check(matches!(r, Response::Ingested { .. }), "event ingested")?;
    }
    let r = roundtrip(&mut c, &Request::Advance { to: SimTime::from_secs(30) })?;
    check(
        matches!(r, Response::Advanced { new_reports: 6, .. }),
        "advance delivered all six reports",
    )?;
    let r = roundtrip(&mut c, &Request::Status { name: "occ".into() })?;
    let Response::Status { online, modal, .. } = r else {
        return Err(format!("status: {r:?}"));
    };
    check(online.occurrences == 1, "online detector saw the occurrence")?;
    check(modal.possibly == 1 && modal.definitely == 1, "modal verdict Possibly=Definitely=1")?;
    let r = roundtrip(&mut c, &Request::Frontier)?;
    let Response::Frontier { vector: frontier_before, reports: reports_before, .. } = r else {
        return Err(format!("frontier: {r:?}"));
    };
    check(reports_before == 6, "frontier counts six reports")?;

    // With --metrics-listen, scrape the Prometheus endpoint while the
    // session is live and prove malformed HTTP can't take it down.
    if let Some(http) = &http {
        smoke_http(http.addr())?;
    }

    // Malformed input must yield a typed error, not kill anything.
    use std::io::Write as _;
    let garbage = b"}{ definitely not json";
    let mut frame = Vec::new();
    frame.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
    frame.extend_from_slice(garbage);
    c.write_all(&frame).map_err(|e| format!("write garbage: {e}"))?;
    let r =
        wire::read_frame::<Response>(&mut c).map_err(|e| format!("read: {e}"))?.ok_or("closed")?;
    check(matches!(r, Response::Error { .. }), "malformed frame answered with a typed error")?;
    check(roundtrip(&mut c, &Request::Ping)? == Response::Pong, "connection survives garbage")?;

    let r = roundtrip(&mut c, &Request::Snapshot)?;
    check(matches!(r, Response::Snapshot { path: Some(_), .. }), "snapshot written")?;
    check(
        roundtrip(&mut c, &Request::Shutdown)? == Response::ShuttingDown,
        "clean shutdown acknowledged",
    )?;
    drop(c);
    check(h.wait().is_some(), "phase 1 session recovered")?;
    if let Some(http) = http {
        http.stop();
    }

    // Phase 2: restore from the snapshot, verify nothing was lost, and
    // keep serving live.
    o.restore = Some(snap_path.clone());
    let snap = ServeSnapshot::load(&snap_path).map_err(|e| format!("load snapshot: {e}"))?;
    let session = ServeSession::restore(snap, None).map_err(|e| format!("restore: {e}"))?;
    let h = serve(TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?, session)
        .map_err(|e| format!("serve: {e}"))?;
    eprintln!("smoke: phase 2 restored on {}", h.addr());
    let mut c = TcpStream::connect(h.addr()).map_err(|e| format!("connect: {e}"))?;
    let _ = c.set_nodelay(true);

    let r = roundtrip(&mut c, &Request::Frontier)?;
    let Response::Frontier { vector, reports, .. } = r else {
        return Err(format!("frontier: {r:?}"));
    };
    check(reports == reports_before, "restored report count identical")?;
    check(vector == frontier_before, "restored causal frontier identical")?;
    let r = roundtrip(&mut c, &Request::Status { name: "occ".into() })?;
    let Response::Status { online: online2, modal: modal2, .. } = r else {
        return Err(format!("status: {r:?}"));
    };
    check(online2 == online, "restored online status identical")?;
    check(modal2 == modal, "restored modal status identical")?;

    // The restored server is live: new ingest past the watermark works.
    let r = roundtrip(
        &mut c,
        &Request::Ingest {
            at: SimTime::from_secs(40),
            process: 0,
            key: AttrKey::new(0, 0),
            value: AttrValue::Int(3),
        },
    )?;
    check(matches!(r, Response::Ingested { .. }), "restored server accepts new events")?;
    let r = roundtrip(&mut c, &Request::Advance { to: SimTime::from_secs(60) })?;
    check(
        matches!(r, Response::Advanced { new_reports: 1, .. }),
        "restored server keeps detecting",
    )?;

    // Phase 3: sustained ingest. The streaming modal detector must keep
    // its live frontier O(window): after thousands of reports its
    // high-water mark stays bounded by the hold-back window, not the
    // trace length.
    const SUSTAINED: u64 = 2000;
    let mut high_mid = 0u64;
    for i in 0..SUSTAINED {
        let at = SimTime::from_millis(61_000 + i * 100);
        let p = (i % 2) as usize;
        let attr = ((i / 2) % 2) as usize;
        let r = roundtrip(
            &mut c,
            &Request::Ingest { at, process: p, key: AttrKey::new(p, attr), value: AttrValue::Int((i % 7) as i64) },
        )?;
        if !matches!(r, Response::Ingested { .. }) {
            return Err(format!("sustained ingest event {i}: {r:?}"));
        }
        if (i + 1) % 500 == 0 {
            // Stay behind the next ingest time (at + 100 ms) so sustained
            // ingest and advancing interleave like a real live feed.
            let r = roundtrip(&mut c, &Request::Advance { to: at + SimDuration::from_millis(50) })?;
            if !matches!(r, Response::Advanced { .. }) {
                return Err(format!("sustained advance at event {i}: {r:?}"));
            }
            if i + 1 == SUSTAINED / 2 {
                let r = roundtrip(&mut c, &Request::Status { name: "occ".into() })?;
                let Response::Status { mem_high_water_cuts, .. } = r else {
                    return Err(format!("status: {r:?}"));
                };
                high_mid = mem_high_water_cuts;
            }
        }
    }
    let r = roundtrip(&mut c, &Request::Status { name: "occ".into() })?;
    let Response::Status { mem_high_water_cuts, frontier_width, .. } = r else {
        return Err(format!("status: {r:?}"));
    };
    eprintln!(
        "smoke: sustained ingest of {SUSTAINED} events: mem_high_water_cuts {high_mid} \
         at the midpoint, {mem_high_water_cuts} at the end (frontier width {frontier_width})"
    );
    check(mem_high_water_cuts > 0, "streaming detector really buffered reports")?;
    check(
        mem_high_water_cuts < SUSTAINED / 10,
        "mem_high_water_cuts bounded by the hold-back window, not the trace",
    )?;
    check(
        mem_high_water_cuts <= high_mid.max(1) * 2,
        "doubling the ingest did not double the high-water mark",
    )?;

    check(roundtrip(&mut c, &Request::Shutdown)? == Response::ShuttingDown, "phase 2 shutdown")?;
    drop(c);
    h.wait();
    let _ = std::fs::remove_file(&snap_path);
    println!("smoke ok");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("psn-serve: {e}");
            std::process::exit(2);
        }
    };
    let result = if opts.smoke { smoke(opts.metrics_listen) } else { run_server(&opts) };
    if let Err(e) = result {
        eprintln!("psn-serve: {e}");
        std::process::exit(1);
    }
}
