//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every frame is a 4-byte little-endian length followed by that many
//! bytes of UTF-8 JSON — one [`Request`] per client frame, one
//! [`Response`] per server frame, strictly request/response on each
//! connection. Frames are capped at [`MAX_FRAME`] bytes; a peer announcing
//! a larger frame is protocol-broken and the connection is dropped (the
//! *server* stays up). Malformed JSON inside a well-framed body gets a
//! typed [`Response::Error`] and the connection continues — no wire input
//! can panic the service.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use psn_clocks::VectorStamp;
use psn_core::ReceivedReport;
use psn_predicates::{ModalStatus, OnlineStatus, Predicate};
use psn_sim::time::SimTime;
use psn_world::{AttrKey, AttrValue};

/// Hard cap on a frame body, in bytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (or hit EOF mid-frame).
    Io(std::io::Error),
    /// The peer announced a frame larger than [`MAX_FRAME`].
    FrameTooLarge {
        /// The announced length.
        len: usize,
    },
    /// The frame body was not UTF-8.
    BadUtf8,
    /// The frame body was not valid JSON for the expected type.
    BadJson(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::BadUtf8 => write!(f, "frame body is not UTF-8"),
            WireError::BadJson(e) => write!(f, "frame body is not a valid message: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// After a [`WireError`], can the connection keep going? True when the
/// offending frame was fully consumed (the stream is still in sync).
pub fn recoverable(e: &WireError) -> bool {
    matches!(e, WireError::BadUtf8 | WireError::BadJson(_))
}

/// Write one frame.
///
/// The length prefix and body go out in a *single* write: split across
/// two writes on an unbuffered `TcpStream`, the 4-byte prefix forms its
/// own segment and Nagle holds the body back until it is acknowledged —
/// a delayed-ACK stall (tens of milliseconds) on every frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("outgoing frame of {} bytes exceeds the cap", bytes.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF at a frame boundary.
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> Result<Option<T>, WireError> {
    let mut len_buf = [0u8; 4];
    // Probe the first byte separately so a peer closing between frames is
    // a clean end-of-stream rather than an error.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(WireError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let s = std::str::from_utf8(&body).map_err(|_| WireError::BadUtf8)?;
    serde_json::from_str(s).map(Some).map_err(|e| WireError::BadJson(format!("{e:?}")))
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Inject a sense event: `process` observes `key = value` at
    /// simulation time `at`. Admissible only for `process < n` and
    /// `at` at or past the current watermark.
    Ingest {
        /// Simulation time of the observation.
        at: SimTime,
        /// The sensing process.
        process: usize,
        /// The observed attribute.
        key: AttrKey,
        /// The observed value.
        value: AttrValue,
    },
    /// Advance the engine to watermark `to`: every ingested event strictly
    /// before `to` is processed, reports propagate, detectors update.
    Advance {
        /// The new watermark.
        to: SimTime,
    },
    /// The causal frontier and session counters.
    Frontier,
    /// Register a named predicate: a streaming detector plus modal
    /// (Possibly/Definitely) queries under this name.
    Watch {
        /// The name later `Status` queries use.
        name: String,
        /// The predicate to watch.
        predicate: Predicate,
    },
    /// Online + modal status of a watched predicate.
    Status {
        /// The name given at `Watch` time.
        name: String,
    },
    /// A slice of the report stream (the causal observation history).
    TraceSlice {
        /// First report index.
        from: usize,
        /// Maximum number of reports to return (server-capped).
        limit: usize,
    },
    /// The session's metrics and telemetry registries, snapshotted now:
    /// engine counters/gauges/timers plus the phase-scoped wall-clock
    /// telemetry (per-shard busy / barrier-wait / …).
    Metrics,
    /// Subscribe to periodic [`Response::Metrics`] push frames on this
    /// connection: after the [`Response::Subscribed`] ack, the server
    /// writes one `Metrics` frame every `interval_ms` until `count`
    /// frames have been pushed (both server-clamped). The connection is
    /// dedicated to the stream until it completes; other requests on it
    /// wait.
    SubscribeMetrics {
        /// Push period in milliseconds (clamped to ≥ 10).
        interval_ms: u64,
        /// Number of frames to push (clamped to ≤ 10 000).
        count: u32,
    },
    /// Subscribe to the report stream: after the [`Response::Subscribed`]
    /// ack, the server pushes a [`Response::TraceSlice`] every
    /// `interval_ms` containing the reports that arrived since the last
    /// push (starting at index `from`), until `count` frames have been
    /// pushed. Empty slices are pushed too — the cadence is the contract.
    SubscribeTrace {
        /// First report index to stream from.
        from: usize,
        /// Push period in milliseconds (clamped to ≥ 10).
        interval_ms: u64,
        /// Number of frames to push (clamped to ≤ 10 000).
        count: u32,
    },
    /// Write a snapshot (to the server's configured path).
    Snapshot,
    /// Stop the server.
    Shutdown,
}

/// A typed error category, stable across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request was structurally invalid (unparseable frame, bad
    /// argument).
    BadRequest,
    /// `Ingest` named a process outside `0..n`.
    UnknownProcess,
    /// `Ingest`/`Advance` time lies behind the watermark.
    TimeRegression,
    /// `Status` named a predicate never registered with `Watch`.
    UnknownPredicate,
    /// The server could not complete the request (e.g. snapshot I/O).
    Internal,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to `Ping`.
    Pong,
    /// The event was journalled and will be delivered at its time.
    Ingested {
        /// The ground-truth id assigned to the observation.
        world_event: u64,
    },
    /// The engine advanced.
    Advanced {
        /// The engine clock after stepping (≤ watermark if halted).
        now: SimTime,
        /// The new watermark.
        watermark: SimTime,
        /// Reports newly received at the root during this step.
        new_reports: usize,
    },
    /// The causal frontier: the root's vector-clock knowledge.
    Frontier {
        /// The current watermark.
        watermark: SimTime,
        /// The root's merged vector clock (over n sensors + the root).
        vector: VectorStamp,
        /// Reports received at the root so far.
        reports: usize,
        /// Process events logged so far.
        events: usize,
        /// Ingest events the engine boundary rejected.
        rejected: u64,
    },
    /// The predicate is now watched.
    Watching {
        /// Its name.
        name: String,
        /// Predicates watched in total.
        watched: usize,
    },
    /// Status of a watched predicate.
    Status {
        /// The predicate's name.
        name: String,
        /// Streaming (online) detector status.
        online: OnlineStatus,
        /// Modal verdict counts over the observation so far (computed by
        /// the streaming modal detector — O(window), not a trace re-sweep).
        modal: ModalStatus,
        /// High-water mark of the streaming detector's live frontier
        /// (held-back reports + queued conjunct intervals) — the bounded-
        /// memory guarantee, per detector.
        mem_high_water_cuts: u64,
        /// Current width of the live frontier (held-back reports plus
        /// intervals the advancement still considers).
        frontier_width: usize,
    },
    /// A slice of the report stream.
    TraceSlice {
        /// Index of the first returned report.
        from: usize,
        /// Total reports available.
        total: usize,
        /// The reports.
        reports: Vec<ReceivedReport>,
    },
    /// Metrics + telemetry snapshot (reply to [`Request::Metrics`], and
    /// the push frame of a `SubscribeMetrics` stream).
    Metrics {
        /// The session's metrics registry (engine + exec counters,
        /// gauges, timers), snapshotted at reply time.
        metrics: psn_sim::metrics::MetricsSnapshot,
        /// The phase-scoped wall-clock telemetry snapshot (per-shard
        /// busy / barrier-wait / ring-exchange, coordinator drain, log
        /// histograms).
        telemetry: psn_sim::telemetry::TelemetrySnapshot,
    },
    /// A subscription was accepted; push frames follow on this connection.
    Subscribed {
        /// `"metrics"` or `"trace"`.
        stream: String,
        /// Frames the server will push (after clamping).
        count: u32,
        /// Push period in milliseconds (after clamping).
        interval_ms: u64,
    },
    /// A snapshot was written.
    Snapshot {
        /// Where it was written (`None` if the server has no snapshot
        /// path configured — the snapshot was not persisted).
        path: Option<String>,
        /// Serialized size in bytes.
        bytes: usize,
    },
    /// The server is stopping; this is the last frame on every connection.
    ShuttingDown,
    /// The request failed; the session is unchanged.
    Error {
        /// The error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Ingest {
                at: SimTime::from_millis(1500),
                process: 2,
                key: AttrKey::new(2, 0),
                value: AttrValue::Int(7),
            },
            Request::Advance { to: SimTime::from_secs(10) },
            Request::Frontier,
            Request::Watch { name: "occ".into(), predicate: Predicate::occupancy_over(2, 3) },
            Request::Status { name: "occ".into() },
            Request::TraceSlice { from: 3, limit: 10 },
            Request::Metrics,
            Request::SubscribeMetrics { interval_ms: 50, count: 3 },
            Request::SubscribeTrace { from: 0, interval_ms: 50, count: 3 },
            Request::Snapshot,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut cursor = &buf[..];
        for r in &reqs {
            let got: Request = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(&got, r);
        }
        let done: Option<Request> = read_frame(&mut cursor).unwrap();
        assert!(done.is_none(), "clean EOF at the frame boundary");
    }

    #[test]
    fn status_response_roundtrips_with_memory_fields() {
        let resp = Response::Status {
            name: "occ".into(),
            online: OnlineStatus {
                holds: true,
                open_since: Some(SimTime::from_secs(2)),
                occurrences: 3,
                buffered: 1,
                late_reports: 0,
            },
            modal: ModalStatus { possibly: 3, definitely: 2, holding_now: true },
            mem_high_water_cuts: 17,
            frontier_width: 4,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        let got: Response = read_frame(&mut &buf[..]).unwrap().expect("frame present");
        assert_eq!(got, resp);
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading_them() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        buf.extend_from_slice(b"garbage");
        let err = read_frame::<Request>(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
        assert!(!recoverable(&err), "the body was not consumed: stream is desynced");
    }

    #[test]
    fn bad_json_is_a_recoverable_typed_error() {
        let mut buf = Vec::new();
        let body = b"{not json";
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(body);
        let err = read_frame::<Request>(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::BadJson(_)));
        assert!(recoverable(&err), "the frame was fully consumed");
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        let err = read_frame::<Request>(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::Io(_)));
    }
}
