//! The TCP server: connection fan-in to a single-threaded session.
//!
//! One **service thread** owns the [`ServeSession`] and applies requests
//! strictly in arrival order off an internal command channel — the session
//! needs no locks and every reply reflects a consistent engine state. Each
//! accepted connection gets a **reader thread** that decodes frames,
//! forwards `(request, reply-sender)` pairs to the service thread, and
//! writes the replies back. Malformed frames never reach the session:
//! recoverable ones (bad JSON in a well-delimited frame) get a typed
//! [`Response::Error`] and the connection continues; desynchronizing ones
//! (oversized length prefix, truncation) close that connection — the
//! server itself always stays up.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::session::ServeSession;
use crate::wire::{self, ErrorCode, Request, Response};

type Command = (Request, Sender<Response>);

/// Server-side clamps for subscription streams: a push period below
/// [`MIN_PUSH_INTERVAL_MS`] would let one connection monopolise the
/// command channel, and an unbounded count would pin the reader thread
/// forever.
pub const MIN_PUSH_INTERVAL_MS: u64 = 10;
/// Maximum push frames one subscription may request.
pub const MAX_PUSH_COUNT: u32 = 10_000;

/// Apply the server's subscription clamps to a requested
/// `(interval_ms, count)` pair.
pub fn clamp_subscription(interval_ms: u64, count: u32) -> (u64, u32) {
    (interval_ms.max(MIN_PUSH_INTERVAL_MS), count.min(MAX_PUSH_COUNT))
}

/// A running server: address, in-process request path, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    cmd: Sender<Command>,
    stopping: Arc<AtomicBool>,
    service: Option<JoinHandle<ServeSession>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Apply a request in-process (same ordering guarantees as the wire:
    /// it queues behind whatever connections have sent). `None` once the
    /// service thread has stopped.
    pub fn request(&self, req: Request) -> Option<Response> {
        let (tx, rx) = mpsc::channel();
        self.cmd.send((req, tx)).ok()?;
        rx.recv().ok()
    }

    /// Block until a client's `Shutdown` request stops the service, then
    /// reap the threads and return the final session.
    pub fn wait(mut self) -> Option<ServeSession> {
        let session = self.service.take().and_then(|h| h.join().ok());
        self.stopping.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        session
    }

    /// Stop the server and recover the session (e.g. to snapshot it).
    pub fn stop(mut self) -> Option<ServeSession> {
        let _ = self.request(Request::Shutdown);
        let session = self.service.take().and_then(|h| h.join().ok());
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        session
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Release);
    }
}

/// Start serving `session` on `listener`. Returns immediately; the
/// returned handle owns the background threads.
pub fn serve(listener: TcpListener, session: ServeSession) -> std::io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();

    let service_flag = Arc::clone(&stopping);
    let service = std::thread::spawn(move || {
        let mut session = session;
        while let Ok((req, reply)) = cmd_rx.recv() {
            let is_shutdown = matches!(req, Request::Shutdown);
            let resp = session.handle(req);
            let _ = reply.send(resp);
            if is_shutdown {
                service_flag.store(true, Ordering::Release);
                break;
            }
        }
        session
    });

    let accept_flag = Arc::clone(&stopping);
    let accept_tx = cmd_tx.clone();
    let accept = std::thread::spawn(move || {
        while !accept_flag.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let tx = accept_tx.clone();
                    // Reader threads are detached: they exit when their
                    // client disconnects or the service stops answering.
                    std::thread::spawn(move || connection(stream, tx));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });

    Ok(ServerHandle { addr, cmd: cmd_tx, stopping, service: Some(service), accept: Some(accept) })
}

fn connection(stream: TcpStream, tx: Sender<Command>) {
    // The listener is nonblocking; the per-connection protocol loop wants
    // blocking reads.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Frames are small and strictly request/response: waiting for ACKs
    // (Nagle) only adds latency.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match wire::read_frame::<Request>(&mut reader) {
            Ok(Some(req)) => {
                // Subscriptions are served by this reader: ack, then pace
                // push frames by issuing ordinary requests through the
                // command channel — the session stays single-threaded and
                // every pushed snapshot is consistent.
                match req {
                    Request::SubscribeMetrics { interval_ms, count } => {
                        if subscription(&mut writer, &tx, "metrics", interval_ms, count, |_| {
                            Request::Metrics
                        })
                        .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                    Request::SubscribeTrace { from, interval_ms, count } => {
                        // The cursor advances by however many reports each
                        // push returned, so frames never repeat a report.
                        let cursor = std::cell::Cell::new(from);
                        if subscription(&mut writer, &tx, "trace", interval_ms, count, |last| {
                            if let Some(Response::TraceSlice { from, reports, .. }) = last {
                                cursor.set(from + reports.len());
                            }
                            Request::TraceSlice { from: cursor.get(), limit: crate::MAX_SLICE }
                        })
                        .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                    _ => {}
                }
                let (rtx, rrx) = mpsc::channel();
                if tx.send((req, rtx)).is_err() {
                    let _ = wire::write_frame(&mut writer, &Response::ShuttingDown);
                    break;
                }
                let Ok(resp) = rrx.recv() else { break };
                let stopping = matches!(resp, Response::ShuttingDown);
                if wire::write_frame(&mut writer, &resp).is_err() || stopping {
                    break;
                }
            }
            Ok(None) => break, // clean client disconnect
            Err(e) => {
                let resp = Response::Error { code: ErrorCode::BadRequest, message: e.to_string() };
                let recoverable = wire::recoverable(&e);
                if wire::write_frame(&mut writer, &resp).is_err() || !recoverable {
                    break;
                }
            }
        }
    }
}

/// Run one subscription stream on a connection: write the
/// [`Response::Subscribed`] ack, then `count` push frames at
/// `interval_ms` cadence, each produced by sending `next(last_response)`
/// through the command channel. Returns `Err(())` when the connection or
/// the service is gone (the caller closes the connection).
fn subscription(
    writer: &mut BufWriter<TcpStream>,
    tx: &Sender<Command>,
    stream: &str,
    interval_ms: u64,
    count: u32,
    mut next: impl FnMut(Option<&Response>) -> Request,
) -> Result<(), ()> {
    let (interval_ms, count) = clamp_subscription(interval_ms, count);
    let ack = Response::Subscribed { stream: stream.into(), count, interval_ms };
    wire::write_frame(writer, &ack).map_err(|_| ())?;
    let mut last: Option<Response> = None;
    for _ in 0..count {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let req = next(last.as_ref());
        let (rtx, rrx) = mpsc::channel();
        tx.send((req, rtx)).map_err(|_| ())?;
        let resp = rrx.recv().map_err(|_| ())?;
        wire::write_frame(writer, &resp).map_err(|_| ())?;
        last = Some(resp);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ServeConfig;
    use psn_sim::time::SimTime;
    use psn_world::{AttrKey, AttrValue};
    use std::io::Write;

    fn start() -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        serve(listener, ServeSession::new(ServeConfig::new(2))).expect("serve")
    }

    fn connect(h: &ServerHandle) -> TcpStream {
        TcpStream::connect(h.addr()).expect("connect")
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        wire::write_frame(stream, req).expect("write");
        wire::read_frame::<Response>(stream).expect("read").expect("response")
    }

    #[test]
    fn a_full_session_over_the_wire() {
        let h = start();
        let mut c = connect(&h);
        assert_eq!(roundtrip(&mut c, &Request::Ping), Response::Pong);
        for (i, (p, attr, v)) in
            [(0, 0, 2), (1, 0, 2), (0, 1, 2), (1, 1, 2)].into_iter().enumerate()
        {
            let r = roundtrip(
                &mut c,
                &Request::Ingest {
                    at: SimTime::from_secs(i as u64 + 1),
                    process: p,
                    key: AttrKey::new(p, attr),
                    value: AttrValue::Int(v),
                },
            );
            assert!(matches!(r, Response::Ingested { .. }), "{r:?}");
        }
        let r = roundtrip(
            &mut c,
            &Request::Watch { name: "occ".into(), predicate: Predicate::occupancy_over(2, 3) },
        );
        assert!(matches!(r, Response::Watching { .. }));
        let r = roundtrip(&mut c, &Request::Advance { to: SimTime::from_secs(20) });
        assert!(
            matches!(r, Response::Advanced { new_reports: 4, .. }),
            "all four reports in: {r:?}"
        );
        let r = roundtrip(&mut c, &Request::Status { name: "occ".into() });
        let Response::Status { online, modal, .. } = r else { panic!("{r:?}") };
        assert_eq!(online.occurrences, 1, "4 in at t=2s, down to 2 at t=3s");
        assert_eq!(modal.possibly, 1);
        let r = roundtrip(&mut c, &Request::Frontier);
        let Response::Frontier { reports, vector, .. } = r else { panic!("{r:?}") };
        assert_eq!(reports, 4);
        assert!(vector[0] >= 1 && vector[1] >= 1);
        let r = roundtrip(&mut c, &Request::Shutdown);
        assert_eq!(r, Response::ShuttingDown);
        assert!(h.stop().is_some());
    }

    use psn_predicates::Predicate;

    #[test]
    fn malformed_frames_get_typed_errors_and_the_server_survives() {
        let h = start();

        // Fuzz a range of malformed bodies over one connection: every one
        // is answered with a typed error, none kills the server.
        let mut c = connect(&h);
        for garbage in [
            &b"{"[..],
            b"{]",
            b"nonsense",
            b"123e",
            b"{\"Ping\":null,",
            b"\xff\xfe\x00\x80", // not UTF-8
            b"{\"NoSuchRequest\":{}}",
            b"[\"almost\", \"a\", \"request\"]",
            b"{\"Ingest\":{\"at\":\"not a time\"}}",
        ] {
            let mut frame = Vec::new();
            frame.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
            frame.extend_from_slice(garbage);
            c.write_all(&frame).expect("send garbage");
            let r = wire::read_frame::<Response>(&mut c).expect("read").expect("reply");
            assert!(
                matches!(r, Response::Error { code: ErrorCode::BadRequest, .. }),
                "garbage {garbage:?} => {r:?}"
            );
        }
        // The same connection still serves well-formed requests.
        assert_eq!(roundtrip(&mut c, &Request::Ping), Response::Pong);

        // A desynchronizing frame (oversized length) closes only that
        // connection.
        let mut evil = connect(&h);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(b"doom");
        evil.write_all(&frame).expect("send oversized");
        let r = wire::read_frame::<Response>(&mut evil).expect("read").expect("reply");
        assert!(matches!(r, Response::Error { code: ErrorCode::BadRequest, .. }), "{r:?}");
        let eof = wire::read_frame::<Response>(&mut evil).expect("read");
        assert!(eof.is_none(), "desynced connection is closed");

        // Fresh connections still work; the session was never touched.
        let mut c2 = connect(&h);
        assert_eq!(roundtrip(&mut c2, &Request::Ping), Response::Pong);
        let Some(Response::Frontier { reports, rejected, .. }) = h.request(Request::Frontier)
        else {
            panic!()
        };
        assert_eq!((reports, rejected), (0, 0));
        h.stop();
    }

    #[test]
    fn concurrent_clients_interleave_safely() {
        let h = start();
        let addr = h.addr();
        let ingester = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            for i in 0..50u64 {
                let r = roundtrip(
                    &mut c,
                    &Request::Ingest {
                        at: SimTime::from_millis(1000 + i * 10),
                        process: (i % 2) as usize,
                        key: AttrKey::new((i % 2) as usize, 0),
                        value: AttrValue::Int(i as i64),
                    },
                );
                assert!(matches!(r, Response::Ingested { .. }));
            }
        });
        let querier = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            for _ in 0..50 {
                let r = roundtrip(&mut c, &Request::Frontier);
                assert!(matches!(r, Response::Frontier { .. }));
            }
        });
        ingester.join().expect("ingester");
        querier.join().expect("querier");
        let Some(Response::Advanced { new_reports, .. }) =
            h.request(Request::Advance { to: SimTime::from_secs(60) })
        else {
            panic!()
        };
        assert_eq!(new_reports, 50, "every concurrent ingest landed");
        h.stop();
    }

    #[test]
    fn subscribe_metrics_pushes_the_requested_frames() {
        let h = start();
        let mut c = connect(&h);
        // Ask for 3 frames at the fastest cadence; the 1ms interval must
        // come back clamped to the server minimum.
        wire::write_frame(&mut c, &Request::SubscribeMetrics { interval_ms: 1, count: 3 })
            .expect("write");
        let ack = wire::read_frame::<Response>(&mut c).expect("read").expect("ack");
        assert_eq!(
            ack,
            Response::Subscribed {
                stream: "metrics".into(),
                count: 3,
                interval_ms: MIN_PUSH_INTERVAL_MS
            }
        );
        for _ in 0..3 {
            let frame = wire::read_frame::<Response>(&mut c).expect("read").expect("frame");
            assert!(matches!(frame, Response::Metrics { .. }), "{frame:?}");
        }
        // The connection is back in request/response mode afterwards.
        assert_eq!(roundtrip(&mut c, &Request::Ping), Response::Pong);
        h.stop();
    }

    #[test]
    fn subscribe_trace_advances_its_cursor_across_frames() {
        let h = start();
        let mut c = connect(&h);
        for i in 0..4u64 {
            let r = roundtrip(
                &mut c,
                &Request::Ingest {
                    at: SimTime::from_secs(i + 1),
                    process: (i % 2) as usize,
                    key: AttrKey::new((i % 2) as usize, 0),
                    value: AttrValue::Int(i as i64),
                },
            );
            assert!(matches!(r, Response::Ingested { .. }));
        }
        let r = roundtrip(&mut c, &Request::Advance { to: SimTime::from_secs(30) });
        assert!(matches!(r, Response::Advanced { new_reports: 4, .. }), "{r:?}");
        wire::write_frame(&mut c, &Request::SubscribeTrace { from: 0, interval_ms: 1, count: 2 })
            .expect("write");
        let ack = wire::read_frame::<Response>(&mut c).expect("read").expect("ack");
        assert!(matches!(ack, Response::Subscribed { .. }), "{ack:?}");
        let first = wire::read_frame::<Response>(&mut c).expect("read").expect("frame");
        let Response::TraceSlice { from: 0, reports, .. } = &first else { panic!("{first:?}") };
        assert_eq!(reports.len(), 4, "first push delivers everything so far");
        let second = wire::read_frame::<Response>(&mut c).expect("read").expect("frame");
        let Response::TraceSlice { from: 4, reports, .. } = &second else { panic!("{second:?}") };
        assert!(reports.is_empty(), "cursor moved past the consumed reports");
        h.stop();
    }
}
