//! Prometheus-text HTTP exposition for a live serve session.
//!
//! A deliberately tiny, dependency-free HTTP/1.0 listener that answers
//! `GET /metrics` with the [Prometheus text exposition format] rendered
//! from the session's [`Metrics`] and [`Telemetry`] registries. Both
//! registries are `Arc`-shared with the engine, so the listener snapshots
//! them directly — it never touches the service thread's command channel
//! and therefore cannot delay ingest or queries.
//!
//! The parser is defensive by construction: it reads at most
//! `MAX_HEAD` bytes of request head under a short read timeout, answers
//! anything it cannot parse with `400 Bad Request`, and closes the
//! connection after every response (`Connection: close`). A malformed or
//! hostile request can only ever cost its own connection; the accept loop
//! and the serve session are untouched.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use psn_sim::metrics::{Metrics, MetricsSnapshot};
use psn_sim::telemetry::{Telemetry, TelemetrySnapshot};

/// Upper bound on the request head we will buffer before giving up.
const MAX_HEAD: usize = 8 * 1024;

/// Per-connection socket read timeout — a client that connects and goes
/// silent only ties up its own handler thread for this long.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to a running metrics HTTP listener.
pub struct HttpHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl HttpHandle {
    /// Local address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join it. In-flight connection handlers
    /// finish on their own (they are bounded by `READ_TIMEOUT`).
    pub fn stop(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Serve `GET /metrics` from `listener` until the handle is stopped.
///
/// Each accepted connection is handled on a detached thread; handler
/// errors (bad requests, write failures) never propagate to the accept
/// loop.
pub fn serve_metrics(listener: TcpListener, metrics: Metrics, telemetry: Telemetry) -> HttpHandle {
    let addr = listener.local_addr().expect("listener has a local addr");
    listener.set_nonblocking(true).expect("set_nonblocking");
    let stopping = Arc::new(AtomicBool::new(false));
    let stop = stopping.clone();
    let accept = std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let (m, t) = (metrics.clone(), telemetry.clone());
                std::thread::spawn(move || handle_connection(stream, &m, &t));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    });
    HttpHandle { addr, stopping, accept: Some(accept) }
}

/// Read one request head and write one response; always closes after.
fn handle_connection(mut stream: TcpStream, metrics: &Metrics, telemetry: &Telemetry) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let (status, content_type, body) = match read_request_path(&mut stream) {
        Ok(path) if path == "/metrics" => {
            let text = prometheus_text(&metrics.snapshot(), &telemetry.snapshot());
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", text)
        }
        Ok(path) => {
            ("404 Not Found", "text/plain; charset=utf-8", format!("no such path: {path}\n"))
        }
        Err(msg) => ("400 Bad Request", "text/plain; charset=utf-8", format!("{msg}\n")),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Read up to the end of the request head and return the GET path.
///
/// Errors are descriptive strings destined for the 400 body.
fn read_request_path(stream: &mut TcpStream) -> Result<String, String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() >= MAX_HEAD {
            return Err("request head too large".into());
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // client closed; parse what we have
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    let first_line =
        head.split(|&b| b == b'\n').next().ok_or_else(|| "empty request".to_string())?;
    let first_line =
        std::str::from_utf8(first_line).map_err(|_| "request line is not utf-8".to_string())?;
    let mut parts = first_line.split_whitespace();
    let method = parts.next().ok_or_else(|| "empty request".to_string())?;
    let path = parts.next().ok_or_else(|| "missing request path".to_string())?;
    if method != "GET" {
        return Err(format!("unsupported method: {method}"));
    }
    Ok(path.to_string())
}

/// Mangle a dotted metric name into a Prometheus-safe identifier with the
/// `psn_` namespace prefix (`engine.op_barriers` → `psn_engine_op_barriers`).
fn prom_name(name: &str) -> String {
    let mangled: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("psn_{mangled}")
}

/// Render both registries in the Prometheus text exposition format.
///
/// Counters and gauges map directly; timers surface count/mean/max and
/// the tracked quantiles as labelled samples. Telemetry phase totals are
/// exposed per shard (plus a `shard="coordinator"` series) so a scrape
/// sees the same attribution `psn-profile` reports from a JSONL dump.
pub fn prometheus_text(metrics: &MetricsSnapshot, telemetry: &TelemetrySnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in &metrics.counters {
        let name = prom_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &metrics.gauges {
        let name = prom_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
        let _ = writeln!(out, "# TYPE {name}_high gauge");
        let _ = writeln!(out, "{name}_high {}", g.high);
    }
    for t in &metrics.timers {
        let name = prom_name(&t.name);
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}_count {}", t.count);
        let _ = writeln!(out, "{name}_mean {}", t.mean);
        let _ = writeln!(out, "{name}_max {}", t.max);
        for (q, v) in [("0.5", t.p50), ("0.9", t.p90), ("0.99", t.p99)] {
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
        }
    }
    let _ = writeln!(out, "# TYPE psn_telemetry_enabled gauge");
    let _ = writeln!(out, "psn_telemetry_enabled {}", u8::from(telemetry.enabled));
    let _ = writeln!(out, "# TYPE psn_telemetry_runs counter");
    let _ = writeln!(out, "psn_telemetry_runs {}", telemetry.runs);
    let _ = writeln!(out, "# TYPE psn_telemetry_run_wall_ns counter");
    let _ = writeln!(out, "psn_telemetry_run_wall_ns {}", telemetry.run_wall_ns);
    let _ = writeln!(out, "# TYPE psn_telemetry_phase_ns counter");
    let _ = writeln!(out, "# TYPE psn_telemetry_phase_spans counter");
    let mut phase_lines = String::new();
    let mut span_lines = String::new();
    let mut series = |shard: &str, phases: &[psn_sim::telemetry::PhaseSample]| {
        for p in phases {
            if p.count == 0 {
                continue;
            }
            let _ = writeln!(
                phase_lines,
                "psn_telemetry_phase_ns{{shard=\"{shard}\",phase=\"{}\"}} {}",
                p.phase, p.ns
            );
            let _ = writeln!(
                span_lines,
                "psn_telemetry_phase_spans{{shard=\"{shard}\",phase=\"{}\"}} {}",
                p.phase, p.count
            );
        }
    };
    for s in &telemetry.shards {
        series(&s.shard.to_string(), &s.phases);
    }
    series("coordinator", &telemetry.coordinator);
    out.push_str(&phase_lines);
    out.push_str(&span_lines);
    let _ = writeln!(out, "# TYPE psn_telemetry_ring_high_water gauge");
    for s in &telemetry.shards {
        let _ = writeln!(
            out,
            "psn_telemetry_ring_high_water{{shard=\"{}\"}} {}",
            s.shard, s.ring_high_water
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::telemetry::Phase;

    fn scrape(addr: SocketAddr, request: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(request).expect("write request");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    }

    fn listener() -> (HttpHandle, SocketAddr) {
        let metrics = Metrics::new();
        metrics.counter("engine.events").add(42);
        metrics.gauge("serve.ingest_occupancy").set(3);
        let telemetry = Telemetry::new();
        telemetry.shard(0).record_ns(Phase::Busy, 1_000);
        telemetry.coordinator().record_ns(Phase::CoordinatorDrain, 250);
        telemetry.record_run_wall(1_500);
        let tcp = TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = serve_metrics(tcp, metrics, telemetry);
        let addr = handle.addr();
        (handle, addr)
    }

    #[test]
    fn scrape_returns_prometheus_text() {
        let (handle, addr) = listener();
        let resp = scrape(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "got: {resp}");
        assert!(resp.contains("psn_engine_events 42"));
        assert!(resp.contains("psn_serve_ingest_occupancy 3"));
        assert!(resp.contains("psn_telemetry_phase_ns{shard=\"0\",phase=\"busy\"} 1000"));
        assert!(resp.contains(
            "psn_telemetry_phase_ns{shard=\"coordinator\",phase=\"coordinator_drain\"} 250"
        ));
        assert!(resp.contains("psn_telemetry_run_wall_ns 1500"));
        handle.stop();
    }

    #[test]
    fn unknown_path_is_404_and_bad_requests_are_400() {
        let (handle, addr) = listener();
        let resp = scrape(addr, b"GET /nope HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 404"), "got: {resp}");
        let resp = scrape(addr, b"POST /metrics HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 400"), "got: {resp}");
        let resp = scrape(addr, b"\x00\xff garbage\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 400"), "got: {resp}");
        // The listener survived all of the above.
        let resp = scrape(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "got: {resp}");
        handle.stop();
    }

    #[test]
    fn oversized_request_head_is_rejected() {
        let (handle, addr) = listener();
        let mut req = Vec::from(&b"GET /metrics HTTP/1.0\r\n"[..]);
        req.extend(std::iter::repeat_n(b'a', MAX_HEAD + 1024));
        // The server may 400-and-close mid-upload, so the write can hit a
        // broken pipe — that's fine, read whatever response made it out.
        let mut s = TcpStream::connect(addr).expect("connect");
        let _ = s.write_all(&req);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        assert!(resp.is_empty() || resp.starts_with("HTTP/1.0 400"), "got: {resp}");
        let resp = scrape(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "got: {resp}");
        handle.stop();
    }
}
