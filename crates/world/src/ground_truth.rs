//! Ground-truth predicate evaluation over a timeline.
//!
//! The paper's detection problem (§3.3): detect **each occurrence** of a
//! predicate φ on sensed attribute values under the *Instantaneously*
//! modality. Ground truth is computed exactly here: replay the timeline,
//! evaluate φ on the piecewise-constant world state, and emit the maximal
//! intervals in which φ held. Detector outputs are scored against these
//! intervals (false negatives = missed truth intervals, false positives =
//! detections with no overlapping truth interval).

use serde::{Deserialize, Serialize};

use psn_sim::time::{SimDuration, SimTime};

use crate::object::WorldState;
use crate::timeline::Timeline;

/// A maximal interval during which the predicate was true in ground truth.
/// `end == None` means it still held at the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthInterval {
    /// When the predicate became true.
    pub start: SimTime,
    /// When it became false again, if it did.
    pub end: Option<SimTime>,
}

impl TruthInterval {
    /// Length of the interval, treating an open end as extending to `horizon`.
    pub fn duration(&self, horizon: SimTime) -> SimDuration {
        self.end.unwrap_or(horizon).saturating_since(self.start)
    }

    /// Does the instant `t` fall inside this interval?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && self.end.map(|e| t < e).unwrap_or(true)
    }

    /// Does `[a, b)` overlap this interval?
    pub fn overlaps(&self, a: SimTime, b: SimTime) -> bool {
        let end = self.end.unwrap_or(SimTime::MAX);
        self.start < b && a < end
    }
}

/// Exact truth intervals of `pred` over the timeline.
pub fn truth_intervals(
    timeline: &Timeline,
    pred: impl Fn(&WorldState) -> bool,
) -> Vec<TruthInterval> {
    let mut intervals = Vec::new();
    let mut open: Option<SimTime> = None;

    let initial = timeline.initial_state();
    if pred(&initial) {
        open = Some(SimTime::ZERO);
    }
    let mut state = initial;
    for e in &timeline.events {
        state.set(e.key, e.value);
        let holds = pred(&state);
        match (open, holds) {
            (None, true) => open = Some(e.at),
            (Some(start), false) => {
                intervals.push(TruthInterval { start, end: Some(e.at) });
                open = None;
            }
            _ => {}
        }
    }
    if let Some(start) = open {
        intervals.push(TruthInterval { start, end: None });
    }
    intervals
}

/// Total time the predicate held, up to `horizon`.
pub fn truth_duty_cycle(
    timeline: &Timeline,
    pred: impl Fn(&WorldState) -> bool,
    horizon: SimTime,
) -> f64 {
    let total: u64 =
        truth_intervals(timeline, pred).iter().map(|iv| iv.duration(horizon).as_nanos()).sum();
    if horizon == SimTime::ZERO {
        0.0
    } else {
        total as f64 / horizon.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{AttrKey, AttrValue, ObjectSpec};
    use crate::timeline::WorldEvent;

    fn counter_timeline(changes: &[(u64, i64)]) -> Timeline {
        let objects = vec![ObjectSpec {
            id: 0,
            name: "c".into(),
            attrs: vec![("v".into(), AttrValue::Int(0))],
        }];
        let events = changes
            .iter()
            .enumerate()
            .map(|(i, &(ms, v))| WorldEvent {
                id: i,
                at: SimTime::from_millis(ms),
                key: AttrKey::new(0, 0),
                value: AttrValue::Int(v),
                caused_by: vec![],
            })
            .collect();
        Timeline::new(objects, events)
    }

    const K: AttrKey = AttrKey { object: 0, attr: 0 };

    #[test]
    fn single_occurrence() {
        let t = counter_timeline(&[(10, 5), (20, 0)]);
        let ivs = truth_intervals(&t, |s| s.get_int(K) > 3);
        assert_eq!(
            ivs,
            vec![TruthInterval {
                start: SimTime::from_millis(10),
                end: Some(SimTime::from_millis(20))
            }]
        );
    }

    #[test]
    fn multiple_occurrences_are_separate() {
        let t = counter_timeline(&[(10, 5), (20, 0), (30, 9), (40, 1), (50, 7)]);
        let ivs = truth_intervals(&t, |s| s.get_int(K) > 3);
        assert_eq!(ivs.len(), 3, "every occurrence counts — detectors must not 'hang'");
        assert_eq!(ivs[2].start, SimTime::from_millis(50));
        assert_eq!(ivs[2].end, None, "last occurrence still open");
    }

    #[test]
    fn true_from_start() {
        let t = counter_timeline(&[(10, 0)]);
        let ivs = truth_intervals(&t, |s| s.get_int(K) < 1);
        // Initially 0 (<1: true), stays 0 at 10ms: single open interval.
        assert_eq!(ivs, vec![TruthInterval { start: SimTime::ZERO, end: None }]);
    }

    #[test]
    fn never_true() {
        let t = counter_timeline(&[(10, 1), (20, 2)]);
        assert!(truth_intervals(&t, |s| s.get_int(K) > 100).is_empty());
    }

    #[test]
    fn repeated_true_values_do_not_split() {
        let t = counter_timeline(&[(10, 5), (20, 6), (30, 7), (40, 0)]);
        let ivs = truth_intervals(&t, |s| s.get_int(K) > 3);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].end, Some(SimTime::from_millis(40)));
    }

    #[test]
    fn interval_predicates() {
        let iv =
            TruthInterval { start: SimTime::from_millis(10), end: Some(SimTime::from_millis(20)) };
        assert!(iv.contains(SimTime::from_millis(10)));
        assert!(iv.contains(SimTime::from_millis(19)));
        assert!(!iv.contains(SimTime::from_millis(20)), "half-open");
        assert!(iv.overlaps(SimTime::from_millis(15), SimTime::from_millis(25)));
        assert!(!iv.overlaps(SimTime::from_millis(20), SimTime::from_millis(25)));
        assert_eq!(iv.duration(SimTime::from_secs(1)), SimDuration::from_millis(10));
        let open = TruthInterval { start: SimTime::from_millis(10), end: None };
        assert_eq!(open.duration(SimTime::from_millis(25)), SimDuration::from_millis(15));
        assert!(open.contains(SimTime::from_secs(100)));
    }

    #[test]
    fn duty_cycle() {
        let t = counter_timeline(&[(10, 5), (20, 0), (30, 5), (40, 0)]);
        let dc = truth_duty_cycle(&t, |s| s.get_int(K) > 3, SimTime::from_millis(100));
        assert!((dc - 0.2).abs() < 1e-12, "20ms of 100ms, got {dc}");
        assert_eq!(truth_duty_cycle(&t, |s| s.get_int(K) > 3, SimTime::ZERO), 0.0);
    }
}
