//! The world-plane event timeline and its covert-channel causality.
//!
//! A scenario generator produces a [`Timeline`]: the complete ground-truth
//! sequence of attribute changes, each optionally *caused by* earlier
//! events through the world plane's covert channels C (the person walking
//! between doors, the pen handed from Bob to Tom, the wind spreading the
//! fire — paper §2.1 and §4.1). The network plane can sense the events but
//! **cannot observe the causal edges**: detectors never see `caused_by`.
//! The edges exist so experiments can quantify exactly how much of the
//! world's causality the network plane misses.

use serde::{Deserialize, Serialize};

use psn_sim::time::SimTime;

use crate::object::{AttrKey, AttrValue, ObjectSpec, WorldState};

/// Identity of a world event: its index in the timeline.
pub type WorldEventId = usize;

/// One ground-truth attribute change in the world plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldEvent {
    /// Dense id (== index in the timeline).
    pub id: WorldEventId,
    /// Ground-truth time of the change.
    pub at: SimTime,
    /// Which attribute changed.
    pub key: AttrKey,
    /// The new value.
    pub value: AttrValue,
    /// Earlier events that caused this one **through covert channels** —
    /// invisible to the network plane.
    pub caused_by: Vec<WorldEventId>,
}

/// The complete ground truth of one scenario run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// The world objects.
    pub objects: Vec<ObjectSpec>,
    /// Events sorted by time (stable for ties).
    pub events: Vec<WorldEvent>,
}

impl Timeline {
    /// Build a timeline, sorting events by time (stable) and renumbering
    /// ids to match the sorted order. `caused_by` references are remapped.
    pub fn new(objects: Vec<ObjectSpec>, mut events: Vec<WorldEvent>) -> Self {
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| (events[i].at, i));
        let mut remap = vec![0usize; events.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            remap[events[old_id].id] = new_id;
        }
        let mut sorted: Vec<WorldEvent> = order
            .into_iter()
            .map(|i| {
                std::mem::replace(
                    &mut events[i],
                    WorldEvent {
                        id: 0,
                        at: SimTime::ZERO,
                        key: AttrKey::new(0, 0),
                        value: AttrValue::Bool(false),
                        caused_by: Vec::new(),
                    },
                )
            })
            .collect();
        for (new_id, e) in sorted.iter_mut().enumerate() {
            e.id = new_id;
            for c in &mut e.caused_by {
                *c = remap[*c];
            }
            e.caused_by.retain(|&c| c < new_id);
        }
        Timeline { objects, events: sorted }
    }

    /// The initial world state.
    pub fn initial_state(&self) -> WorldState {
        WorldState::initial(&self.objects)
    }

    /// The duration from time zero to the last event.
    pub fn duration(&self) -> SimTime {
        self.events.last().map(|e| e.at).unwrap_or(SimTime::ZERO)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replay the timeline, calling `f(state, event)` with the state
    /// *after* applying each event.
    pub fn replay(&self, mut f: impl FnMut(&WorldState, &WorldEvent)) {
        let mut state = self.initial_state();
        for e in &self.events {
            state.set(e.key, e.value);
            f(&state, e);
        }
    }

    /// The exact world state at time `t` (after all events with `at ≤ t`).
    pub fn state_at(&self, t: SimTime) -> WorldState {
        let mut state = self.initial_state();
        for e in &self.events {
            if e.at > t {
                break;
            }
            state.set(e.key, e.value);
        }
        state
    }

    /// Ground-truth causality through covert channels: is there a causal
    /// path from event `a` to event `b`? (Reflexive: an event reaches
    /// itself.) This is world-plane truth the network plane cannot see.
    pub fn world_causally_precedes(&self, a: WorldEventId, b: WorldEventId) -> bool {
        if a == b {
            return true;
        }
        if a > b {
            return false;
        }
        // Backwards DFS from b through caused_by edges.
        let mut stack = vec![b];
        let mut seen = vec![false; self.events.len()];
        while let Some(e) = stack.pop() {
            if e == a {
                return true;
            }
            if seen[e] {
                continue;
            }
            seen[e] = true;
            for &p in &self.events[e].caused_by {
                if p >= a {
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Fraction of causally-related event pairs — a measure of how much
    /// hidden-channel structure a scenario has.
    pub fn causal_density(&self) -> f64 {
        let n = self.events.len();
        if n < 2 {
            return 0.0;
        }
        let mut related = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.world_causally_precedes(a, b) {
                    related += 1;
                }
            }
        }
        related as f64 / (n * (n - 1) / 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: usize, ms: u64, obj: usize, val: i64, caused_by: Vec<usize>) -> WorldEvent {
        WorldEvent {
            id,
            at: SimTime::from_millis(ms),
            key: AttrKey::new(obj, 0),
            value: AttrValue::Int(val),
            caused_by,
        }
    }

    fn one_object() -> Vec<ObjectSpec> {
        vec![ObjectSpec { id: 0, name: "o".into(), attrs: vec![("a".into(), AttrValue::Int(0))] }]
    }

    #[test]
    fn new_sorts_and_renumbers() {
        let events = vec![
            ev(0, 30, 0, 3, vec![1]), // caused by the event that was id 1
            ev(1, 10, 0, 1, vec![]),
            ev(2, 20, 0, 2, vec![1]),
        ];
        let t = Timeline::new(one_object(), events);
        assert_eq!(t.events[0].at, SimTime::from_millis(10));
        assert_eq!(t.events[2].at, SimTime::from_millis(30));
        // The 30ms event (now id 2) is caused by the 10ms event (now id 0).
        assert_eq!(t.events[2].caused_by, vec![0]);
        assert_eq!(t.events[1].caused_by, vec![0]);
    }

    #[test]
    fn state_at_replays_prefix() {
        let t = Timeline::new(
            one_object(),
            vec![ev(0, 10, 0, 1, vec![]), ev(1, 20, 0, 2, vec![]), ev(2, 30, 0, 3, vec![])],
        );
        assert_eq!(t.state_at(SimTime::from_millis(5)).get_int(AttrKey::new(0, 0)), 0);
        assert_eq!(t.state_at(SimTime::from_millis(20)).get_int(AttrKey::new(0, 0)), 2);
        assert_eq!(t.state_at(SimTime::from_millis(99)).get_int(AttrKey::new(0, 0)), 3);
    }

    #[test]
    fn replay_visits_every_event_in_order() {
        let t = Timeline::new(one_object(), vec![ev(0, 20, 0, 2, vec![]), ev(1, 10, 0, 1, vec![])]);
        let mut seen = Vec::new();
        t.replay(|state, e| {
            seen.push((e.at, state.get_int(e.key)));
        });
        assert_eq!(seen, vec![(SimTime::from_millis(10), 1), (SimTime::from_millis(20), 2)]);
    }

    #[test]
    fn causality_is_transitive_and_directional() {
        let t = Timeline::new(
            one_object(),
            vec![
                ev(0, 10, 0, 1, vec![]),
                ev(1, 20, 0, 2, vec![0]),
                ev(2, 30, 0, 3, vec![1]),
                ev(3, 40, 0, 4, vec![]),
            ],
        );
        assert!(t.world_causally_precedes(0, 2), "transitive through 1");
        assert!(!t.world_causally_precedes(2, 0), "never backwards");
        assert!(!t.world_causally_precedes(0, 3), "no covert path");
        assert!(t.world_causally_precedes(1, 1), "reflexive");
    }

    #[test]
    fn causal_density_bounds() {
        let independent = Timeline::new(
            one_object(),
            vec![ev(0, 1, 0, 1, vec![]), ev(1, 2, 0, 2, vec![]), ev(2, 3, 0, 3, vec![])],
        );
        assert_eq!(independent.causal_density(), 0.0);
        let chain = Timeline::new(
            one_object(),
            vec![ev(0, 1, 0, 1, vec![]), ev(1, 2, 0, 2, vec![0]), ev(2, 3, 0, 3, vec![1])],
        );
        assert_eq!(chain.causal_density(), 1.0);
        assert_eq!(Timeline::new(one_object(), vec![]).causal_density(), 0.0);
    }

    #[test]
    fn ties_keep_stable_order() {
        let t = Timeline::new(one_object(), vec![ev(0, 10, 0, 1, vec![]), ev(1, 10, 0, 2, vec![])]);
        assert_eq!(t.events[0].value, AttrValue::Int(1));
        assert_eq!(t.events[1].value, AttrValue::Int(2));
    }

    #[test]
    fn duration_is_last_event() {
        let t = Timeline::new(one_object(), vec![ev(0, 10, 0, 1, vec![]), ev(1, 99, 0, 2, vec![])]);
        assert_eq!(t.duration(), SimTime::from_millis(99));
        assert_eq!(Timeline::new(one_object(), vec![]).duration(), SimTime::ZERO);
    }
}
