//! # psn-world — the world plane ⟨O, C⟩
//!
//! The paper models a pervasive environment as ⟨P, L, O, C⟩ (§2.1): besides
//! the network plane ⟨P, L⟩, there is a **world plane** of external objects
//! `O` that communicate over covert channels `C` — channels the network
//! plane cannot observe, which is precisely why world-plane causality
//! cannot be tracked and why the partial-order time model fails as a
//! *specification* tool (§4.1).
//!
//! This crate provides:
//!
//! - [`object`] — objects, attributes, and the ground-truth [`object::WorldState`];
//! - [`timeline`] — the event timeline with covert-channel `caused_by`
//!   edges (ground truth invisible to detectors);
//! - [`ground_truth`] — exact truth intervals of any predicate, for scoring
//!   detector accuracy;
//! - [`mobility`] — room-graph walkers and random-waypoint motion;
//! - [`scenarios`] — the paper's application scenarios: exhibition hall
//!   (§5), smart office (§3.1), hospital (§5), and habitat monitoring.

#![warn(missing_docs)]

pub mod ground_truth;
pub mod mobility;
pub mod object;
pub mod scenarios;
pub mod timeline;

pub use ground_truth::{truth_duty_cycle, truth_intervals, TruthInterval};
pub use object::{AttrId, AttrKey, AttrValue, ObjectId, ObjectSpec, WorldState};
pub use scenarios::{Scenario, SensorAssignment};
pub use timeline::{Timeline, WorldEvent, WorldEventId};
