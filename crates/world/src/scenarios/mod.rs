//! Scenario generators.
//!
//! Each generator builds a complete, deterministic world-plane run: the
//! objects, the ground-truth event [`Timeline`] with covert-channel
//! causality, and the [`SensorAssignment`] saying which network-plane
//! process senses which attributes. The four scenarios cover the paper's
//! motivating settings:
//!
//! - [`exhibition`] — the §5 convention-center hall: d doors, RFID entry /
//!   exit counting, occupancy predicate Σ(xᵢ−yᵢ) > capacity;
//! - [`office`] — the smart office of §3.1: room temperatures and motion,
//!   the `motion ∧ temp > 30 °C` rule;
//! - [`hospital`] — the §5 hospital: ward visitor counts, infectious-ward
//!   entry;
//! - [`habitat`] — monitoring "in the wild": rare, slow events where the
//!   paper argues strobe clocks shine (event rate ≪ 1/Δ).

pub mod exhibition;
pub mod habitat;
pub mod hospital;
pub mod office;
pub mod structure;

use serde::{Deserialize, Serialize};

use crate::object::AttrKey;
use crate::timeline::Timeline;

/// Which process senses which world attributes.
///
/// In the paper's model a process records a sense event `n` "whenever a
/// significant change in the value of an attribute of an object is sensed"
/// — this map says who is in range of what. Every attribute is watched by
/// exactly one process in these scenarios (multi-sensor coverage is
/// exercised separately in tests).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorAssignment {
    /// `watches[p]` = the attributes process `p` senses.
    pub watches: Vec<Vec<AttrKey>>,
}

impl SensorAssignment {
    /// The process that senses `key`, if any.
    pub fn process_for(&self, key: AttrKey) -> Option<usize> {
        self.watches.iter().position(|w| w.contains(&key))
    }

    /// Number of sensor processes.
    pub fn num_processes(&self) -> usize {
        self.watches.len()
    }
}

/// A generated scenario: ground truth plus the sensing layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name.
    pub name: String,
    /// The ground-truth world-plane run.
    pub timeline: Timeline,
    /// Which process senses which attribute.
    pub sensing: SensorAssignment,
}

impl Scenario {
    /// Number of sensor processes the scenario expects.
    pub fn num_processes(&self) -> usize {
        self.sensing.num_processes()
    }

    /// Mean world-event rate over the run, in events per second.
    pub fn event_rate_hz(&self) -> f64 {
        let d = self.timeline.duration().as_secs_f64();
        if d == 0.0 {
            0.0
        } else {
            self.timeline.len() as f64 / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_lookup() {
        let a = SensorAssignment {
            watches: vec![vec![AttrKey::new(0, 0), AttrKey::new(0, 1)], vec![AttrKey::new(1, 0)]],
        };
        assert_eq!(a.process_for(AttrKey::new(0, 1)), Some(0));
        assert_eq!(a.process_for(AttrKey::new(1, 0)), Some(1));
        assert_eq!(a.process_for(AttrKey::new(9, 0)), None);
        assert_eq!(a.num_processes(), 2);
    }
}
