//! The smart-office scenario (paper §3.1 example).
//!
//! "Consider a smart office environment where a person enters a room and
//! temp > 30 °C. Temperature can be automatically lowered depending on the
//! rule base." Rooms have a temperature (a clamped random walk, sensed on
//! significant change) and a motion attribute (true while anyone is in the
//! room). People walk a room graph with exponential dwell times.
//!
//! Covert causality: each person's consecutive motion events are chained
//! (`caused_by`): the motion-on in the new room is caused by the same
//! person's last event — the walking person is the hidden channel.

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::mobility::{RoomGraph, RoomWalker};
use crate::object::{AttrKey, AttrValue, ObjectSpec, WorldState};
use crate::timeline::{Timeline, WorldEvent};

use super::{Scenario, SensorAssignment};

/// Attribute index of a room's temperature.
pub const ATTR_TEMP: usize = 0;
/// Attribute index of a room's motion flag.
pub const ATTR_MOTION: usize = 1;
/// Object id of pen `j` in a scenario with `rooms` rooms. On a *pen*
/// object, attribute `r` is "the pen is present in room r", sensed by room
/// r's badge reader — the §4.1 smart-pen whose physical handoff/transport
/// the network plane *can* track (unlike most covert channels).
pub fn pen_object_id(rooms: usize, j: usize) -> usize {
    rooms + j
}

/// Parameters of the smart-office generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfficeParams {
    /// Number of rooms (one sensor process per room).
    pub rooms: usize,
    /// Number of people walking the office.
    pub persons: usize,
    /// Mean dwell time in a room before moving on.
    pub mean_dwell: SimDuration,
    /// How often temperatures take a random-walk step.
    pub temp_step_every: SimDuration,
    /// Standard deviation of one temperature step, °C.
    pub temp_sigma: f64,
    /// A temperature change is sensed once it moves this far from the last
    /// sensed value (the "significant change" threshold of §2.2).
    pub temp_emit_threshold: f64,
    /// Initial temperature of every room, °C.
    pub base_temp: f64,
    /// Number of smart pens (§4.1): pen `j` is carried by person
    /// `j mod persons` and its room presence is tracked by the badge
    /// readers. Ignored if there are no persons.
    pub pens: usize,
    /// Length of the run.
    pub duration: SimTime,
}

impl Default for OfficeParams {
    fn default() -> Self {
        OfficeParams {
            rooms: 4,
            persons: 3,
            mean_dwell: SimDuration::from_secs(120),
            temp_step_every: SimDuration::from_secs(15),
            temp_sigma: 0.6,
            temp_emit_threshold: 0.5,
            base_temp: 26.0,
            pens: 1,
            duration: SimTime::from_secs(3600),
        }
    }
}

/// Generate the scenario deterministically from `params` and `seed`.
pub fn generate(params: &OfficeParams, seed: u64) -> Scenario {
    assert!(params.rooms > 0, "need at least one room");
    let factory = RngFactory::new(seed);
    let graph = RoomGraph::lobby(params.rooms.max(1));

    let n_pens = if params.persons == 0 { 0 } else { params.pens };
    let mut objects: Vec<ObjectSpec> = (0..params.rooms)
        .map(|r| ObjectSpec {
            id: r,
            name: format!("room-{r}"),
            attrs: vec![
                ("temp".into(), AttrValue::Float(params.base_temp)),
                ("motion".into(), AttrValue::Bool(false)),
            ],
        })
        .collect();
    for j in 0..n_pens {
        // Pen attr r = "present in room r"; everyone starts in the lobby.
        objects.push(ObjectSpec {
            id: pen_object_id(params.rooms, j),
            name: format!("pen-{j}"),
            attrs: (0..params.rooms)
                .map(|r| (format!("in-room-{r}"), AttrValue::Bool(r == 0)))
                .collect(),
        });
    }

    let mut events: Vec<WorldEvent> = Vec::new();

    // --- People and motion -------------------------------------------------
    let mut occupancy = vec![0usize; params.rooms];
    // Everyone starts in the lobby (room 0).
    occupancy[0] = params.persons;
    let mut walkers: Vec<RoomWalker> = (0..params.persons)
        .map(|p| {
            let mut rng = factory.labeled_stream(&format!("office.person.{p}"));
            RoomWalker::new(0, params.mean_dwell, &mut rng)
        })
        .collect();
    let mut person_rngs: Vec<_> = (0..params.persons)
        .map(|p| factory.labeled_stream(&format!("office.person.{p}.moves")))
        .collect();
    let mut person_chain: Vec<Option<usize>> = vec![None; params.persons];

    if params.persons > 0 {
        // Initial motion-on in the lobby.
        events.push(WorldEvent {
            id: 0,
            at: SimTime::ZERO,
            key: AttrKey::new(0, ATTR_MOTION),
            value: AttrValue::Bool(true),
            caused_by: vec![],
        });
    }

    loop {
        // The earliest person move within the horizon.
        let next: Option<(SimTime, usize)> = walkers
            .iter()
            .enumerate()
            .map(|(p, w)| (w.next_move, p))
            .filter(|&(t, _)| t <= params.duration)
            .min();
        let Some((t, p)) = next else { break };
        let (old, new) =
            walkers[p].maybe_move(t, &graph, &mut person_rngs[p]).expect("move is due");
        if old == new {
            continue;
        }
        occupancy[old] -= 1;
        occupancy[new] += 1;
        let chain: Vec<usize> = person_chain[p].into_iter().collect();
        let mut latest = person_chain[p];
        if occupancy[old] == 0 {
            let id = events.len();
            events.push(WorldEvent {
                id,
                at: t,
                key: AttrKey::new(old, ATTR_MOTION),
                value: AttrValue::Bool(false),
                caused_by: chain.clone(),
            });
            latest = Some(id);
        }
        if occupancy[new] == 1 {
            let id = events.len();
            let caused_by = latest.into_iter().collect();
            events.push(WorldEvent {
                id,
                at: t,
                key: AttrKey::new(new, ATTR_MOTION),
                value: AttrValue::Bool(true),
                caused_by,
            });
            latest = Some(id);
        }
        person_chain[p] = latest;

        // Pens carried by this person move with them (§4.1: the pen's
        // transport is a covert channel through the person, but the badge
        // readers sense both ends).
        for j in 0..n_pens {
            if j % params.persons != p {
                continue;
            }
            let pen = pen_object_id(params.rooms, j);
            let leave_cause: Vec<usize> = person_chain[p].into_iter().collect();
            let leave_id = events.len();
            events.push(WorldEvent {
                id: leave_id,
                at: t,
                key: AttrKey::new(pen, old),
                value: AttrValue::Bool(false),
                caused_by: leave_cause,
            });
            events.push(WorldEvent {
                id: leave_id + 1,
                at: t,
                key: AttrKey::new(pen, new),
                value: AttrValue::Bool(true),
                caused_by: vec![leave_id],
            });
        }
    }

    // --- Temperatures -------------------------------------------------------
    for r in 0..params.rooms {
        let mut rng = factory.labeled_stream(&format!("office.temp.{r}"));
        let mut actual = params.base_temp;
        let mut last_emitted = params.base_temp;
        let mut t = SimTime::ZERO;
        loop {
            t += params.temp_step_every;
            if t > params.duration {
                break;
            }
            actual = (actual + rng.normal(0.0, params.temp_sigma)).clamp(10.0, 45.0);
            if (actual - last_emitted).abs() >= params.temp_emit_threshold {
                last_emitted = actual;
                events.push(WorldEvent {
                    id: events.len(),
                    at: t,
                    key: AttrKey::new(r, ATTR_TEMP),
                    value: AttrValue::Float(actual),
                    caused_by: vec![],
                });
            }
        }
    }

    let sensing = SensorAssignment {
        watches: (0..params.rooms)
            .map(|r| {
                let mut w = vec![AttrKey::new(r, ATTR_TEMP), AttrKey::new(r, ATTR_MOTION)];
                // Room r's badge reader senses each pen's presence in r.
                for j in 0..n_pens {
                    w.push(AttrKey::new(pen_object_id(params.rooms, j), r));
                }
                w
            })
            .collect(),
    };

    Scenario {
        name: format!("smart-office(rooms={}, persons={})", params.rooms, params.persons),
        timeline: Timeline::new(objects, events),
        sensing,
    }
}

/// The §3.1 conjunctive predicate: motion in `room` and its temperature
/// above `threshold` °C.
pub fn hot_and_occupied(room: usize, threshold: f64) -> impl Fn(&WorldState) -> bool {
    move |state| {
        state.get_bool(AttrKey::new(room, ATTR_MOTION))
            && state.get_float(AttrKey::new(room, ATTR_TEMP)) > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::truth_intervals;

    fn small() -> OfficeParams {
        OfficeParams {
            rooms: 3,
            persons: 2,
            mean_dwell: SimDuration::from_secs(60),
            temp_step_every: SimDuration::from_secs(10),
            temp_sigma: 0.8,
            temp_emit_threshold: 0.5,
            base_temp: 27.0,
            pens: 1,
            duration: SimTime::from_secs(1800),
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small(), 5);
        let b = generate(&small(), 5);
        assert_eq!(a.timeline.events, b.timeline.events);
    }

    #[test]
    fn motion_tracks_occupancy_invariant() {
        // Replaying the timeline, the motion flag of each room must always
        // equal "some walker is in the room" — verified indirectly: motion
        // can only flip, never repeat a value.
        let s = generate(&small(), 8);
        let mut motion = [false; 3];
        for e in &s.timeline.events {
            if e.key.object < 3 && e.key.attr == ATTR_MOTION {
                let new = e.value.as_bool();
                assert_ne!(motion[e.key.object], new, "motion event must flip the flag");
                motion[e.key.object] = new;
            }
        }
    }

    #[test]
    fn person_chains_are_causal() {
        let s = generate(&small(), 8);
        for e in &s.timeline.events {
            for &c in &e.caused_by {
                assert!(c < e.id);
                assert!(s.timeline.events[c].at <= e.at);
                let cause = &s.timeline.events[c];
                let cause_is_motion = cause.key.object < 3 && cause.key.attr == ATTR_MOTION;
                let cause_is_pen = cause.key.object >= 3;
                assert!(
                    cause_is_motion || cause_is_pen,
                    "covert chains run through motion/pen events, got {:?}",
                    cause.key
                );
            }
        }
        let has_chain = s.timeline.events.iter().any(|e| !e.caused_by.is_empty());
        assert!(has_chain, "people moving must create covert causality");
    }

    #[test]
    fn pen_is_in_exactly_one_room() {
        let s = generate(&small(), 8);
        let pen = pen_object_id(3, 0);
        // At every instant boundary the pen is present in exactly one room.
        let mut pending: Option<(psn_sim::time::SimTime, i32)> = None;
        let mut check = 0;
        s.timeline.replay(|state, e| {
            let count: i32 = (0..3).map(|r| i32::from(state.get_bool(AttrKey::new(pen, r)))).sum();
            if let Some((t, c)) = pending.take() {
                if t != e.at {
                    assert_eq!(c, 1, "pen must be in exactly one room");
                    check += 1;
                }
            }
            pending = Some((e.at, count));
        });
        assert!(check > 0, "invariant actually checked");
    }

    #[test]
    fn pen_follows_its_carrier() {
        // The pen's room must always equal person 0's room: compare the
        // pen presence trail against the motion chain via causality — each
        // pen enter is caused by the matching pen leave at the same time.
        let s = generate(&small(), 8);
        let pen = pen_object_id(3, 0);
        let pen_events: Vec<_> = s.timeline.events.iter().filter(|e| e.key.object == pen).collect();
        assert!(!pen_events.is_empty(), "the carrier moves during 30 minutes");
        for e in &pen_events {
            if e.value.as_bool() {
                // enter: caused by the leave event of the same move
                assert_eq!(e.caused_by.len(), 1);
                let c = &s.timeline.events[e.caused_by[0]];
                assert_eq!(c.key.object, pen);
                assert_eq!(c.at, e.at, "leave/enter form one physical move");
                assert!(!c.value.as_bool());
            }
        }
    }

    #[test]
    fn pens_are_sensed_by_room_readers() {
        let s = generate(&small(), 8);
        let pen = pen_object_id(3, 0);
        for r in 0..3 {
            assert_eq!(
                s.sensing.process_for(AttrKey::new(pen, r)),
                Some(r),
                "room {r}'s badge reader senses the pen"
            );
        }
    }

    #[test]
    fn no_pens_without_persons() {
        let params = OfficeParams { persons: 0, pens: 3, ..small() };
        let s = generate(&params, 1);
        assert!(s.timeline.events.iter().all(|e| e.key.object < 3));
        assert_eq!(s.timeline.objects.len(), 3, "no pen objects created");
    }

    #[test]
    fn temperatures_emit_on_significant_change_only() {
        let s = generate(&small(), 8);
        let mut last = [27.0f64; 3];
        for e in &s.timeline.events {
            if e.key.object < 3 && e.key.attr == ATTR_TEMP {
                let v = e.value.as_float();
                assert!((v - last[e.key.object]).abs() >= 0.5, "insignificant change emitted");
                assert!((10.0..=45.0).contains(&v), "clamped range");
                last[e.key.object] = v;
            }
        }
    }

    #[test]
    fn hot_and_occupied_fires_eventually() {
        // Base temp 29.5 with sigma 1.0: crossing 30 °C while occupied is
        // essentially certain over half an hour.
        let params = OfficeParams { base_temp: 29.5, temp_sigma: 1.0, ..small() };
        let s = generate(&params, 21);
        let any =
            (0..3).any(|r| !truth_intervals(&s.timeline, hot_and_occupied(r, 30.0)).is_empty());
        assert!(any, "the conjunctive predicate should hold at some point");
    }

    #[test]
    fn sensing_covers_rooms() {
        let s = generate(&small(), 3);
        assert_eq!(s.num_processes(), 3);
        assert_eq!(s.sensing.process_for(AttrKey::new(2, ATTR_TEMP)), Some(2));
    }

    #[test]
    fn zero_persons_has_no_motion_events() {
        let params = OfficeParams { persons: 0, ..small() };
        let s = generate(&params, 1);
        assert!(s.timeline.events.iter().all(|e| e.key.attr == ATTR_TEMP));
    }
}
