//! The habitat-monitoring scenario ("in the wild", paper §3.3 / §6).
//!
//! The paper's core argument for strobe clocks: "in the wild, remote
//! terrain, nature monitoring, events are often rare, compared to Δ", and
//! physically synchronized clocks "may not be affordable (in terms of
//! energy consumption)". This generator produces exactly that regime:
//! a handful of monitoring stations along a corridor (a valley, a river),
//! a few animals with embedded tags wandering slowly between station
//! ranges, and very low event rates. Each station tracks how many tagged
//! animals are currently in its range.

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::mobility::{RoomGraph, RoomWalker};
use crate::object::{AttrKey, AttrValue, ObjectSpec, WorldState};
use crate::timeline::{Timeline, WorldEvent};

use super::{Scenario, SensorAssignment};

/// Attribute index of a station's animal count.
pub const ATTR_PRESENT: usize = 0;

/// Parameters of the habitat generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HabitatParams {
    /// Number of monitoring stations (arranged in a corridor).
    pub stations: usize,
    /// Number of tagged animals.
    pub animals: usize,
    /// Mean time an animal spends in one station's range.
    pub mean_dwell: SimDuration,
    /// Length of the run.
    pub duration: SimTime,
}

impl Default for HabitatParams {
    fn default() -> Self {
        HabitatParams {
            stations: 6,
            animals: 3,
            mean_dwell: SimDuration::from_secs(1200), // 20 minutes: rare events
            duration: SimTime::from_secs(86_400),     // a day in the wild
        }
    }
}

/// Generate the scenario deterministically from `params` and `seed`.
pub fn generate(params: &HabitatParams, seed: u64) -> Scenario {
    assert!(params.stations > 1, "need at least two stations");
    let factory = RngFactory::new(seed);
    let graph = RoomGraph::corridor(params.stations);

    let objects: Vec<ObjectSpec> = (0..params.stations)
        .map(|s| ObjectSpec {
            id: s,
            name: format!("station-{s}"),
            attrs: vec![("present".into(), AttrValue::Int(0))],
        })
        .collect();

    let mut present = vec![0i64; params.stations];
    let mut events: Vec<WorldEvent> = Vec::new();
    let mut walkers: Vec<RoomWalker> = (0..params.animals)
        .map(|a| {
            let mut rng = factory.labeled_stream(&format!("habitat.animal.{a}"));
            let start = rng.index(params.stations);
            RoomWalker::new(start, params.mean_dwell, &mut rng)
        })
        .collect();
    // Initial presence events at t=0 so the state reflects the start.
    for w in &walkers {
        present[w.room] += 1;
        events.push(WorldEvent {
            id: events.len(),
            at: SimTime::ZERO,
            key: AttrKey::new(w.room, ATTR_PRESENT),
            value: AttrValue::Int(present[w.room]),
            caused_by: vec![],
        });
    }
    let mut move_rngs: Vec<_> = (0..params.animals)
        .map(|a| factory.labeled_stream(&format!("habitat.animal.{a}.moves")))
        .collect();
    let mut chains: Vec<Option<usize>> = vec![None; params.animals];

    loop {
        let next: Option<(SimTime, usize)> = walkers
            .iter()
            .enumerate()
            .map(|(a, w)| (w.next_move, a))
            .filter(|&(t, _)| t <= params.duration)
            .min();
        let Some((t, a)) = next else { break };
        let (old, new) = walkers[a].maybe_move(t, &graph, &mut move_rngs[a]).expect("due");
        if old == new {
            continue;
        }
        let prev: Vec<usize> = chains[a].into_iter().collect();
        present[old] -= 1;
        let leave_id = events.len();
        events.push(WorldEvent {
            id: leave_id,
            at: t,
            key: AttrKey::new(old, ATTR_PRESENT),
            value: AttrValue::Int(present[old]),
            caused_by: prev,
        });
        present[new] += 1;
        events.push(WorldEvent {
            id: events.len(),
            at: t,
            key: AttrKey::new(new, ATTR_PRESENT),
            value: AttrValue::Int(present[new]),
            caused_by: vec![leave_id],
        });
        chains[a] = Some(events.len() - 1);
    }

    let sensing = SensorAssignment {
        watches: (0..params.stations).map(|s| vec![AttrKey::new(s, ATTR_PRESENT)]).collect(),
    };

    Scenario {
        name: format!("habitat(stations={}, animals={})", params.stations, params.animals),
        timeline: Timeline::new(objects, events),
        sensing,
    }
}

/// Animals have congregated: at least `k` at one station.
pub fn congregation(station: usize, k: i64) -> impl Fn(&WorldState) -> bool {
    move |state| state.get_int(AttrKey::new(station, ATTR_PRESENT)) >= k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HabitatParams {
        HabitatParams {
            stations: 4,
            animals: 2,
            mean_dwell: SimDuration::from_secs(600),
            duration: SimTime::from_secs(43_200),
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small(), 3).timeline.events, generate(&small(), 3).timeline.events);
    }

    #[test]
    fn animals_are_conserved() {
        // Check at instant boundaries only: a leave/enter pair shares one
        // timestamp, so mid-instant the count is transiently short by one.
        let s = generate(&small(), 5);
        let mut pending: Option<(psn_sim::time::SimTime, i64)> = None;
        s.timeline.replay(|state, e| {
            let total: i64 = (0..4).map(|st| state.get_int(AttrKey::new(st, ATTR_PRESENT))).sum();
            if let Some((t, tot)) = pending.take() {
                if t != e.at {
                    assert_eq!(tot, 2);
                }
            }
            pending = Some((e.at, total));
        });
        assert_eq!(pending.expect("events exist").1, 2);
    }

    #[test]
    fn event_rate_is_low() {
        // The defining property of the habitat regime: with 20-minute mean
        // dwells, the event rate is a few per hour, far below 1/Δ for any
        // realistic Δ of hundreds of ms.
        let s = generate(&HabitatParams::default(), 7);
        let rate = s.event_rate_hz();
        assert!(rate < 0.05, "habitat should be quiet, got {rate} ev/s");
        assert!(rate > 0.0005, "but not dead, got {rate} ev/s");
    }

    #[test]
    fn covert_chains_present() {
        let s = generate(&small(), 9);
        assert!(s.timeline.events.iter().any(|e| !e.caused_by.is_empty()));
        assert!(s.timeline.causal_density() > 0.0);
    }

    #[test]
    fn corridor_moves_are_adjacent() {
        // Events of one animal alternate leave/enter at adjacent stations.
        let s = generate(&small(), 11);
        for e in &s.timeline.events {
            for &c in &e.caused_by {
                let from = s.timeline.events[c].key.object;
                let to = e.key.object;
                if s.timeline.events[c].at == e.at {
                    // leave -> enter pair of one hop
                    assert!(
                        from.abs_diff(to) == 1,
                        "corridor hop must be adjacent: {from} -> {to}"
                    );
                }
            }
        }
    }

    #[test]
    fn sensing_one_attr_per_station() {
        let s = generate(&small(), 1);
        assert_eq!(s.num_processes(), 4);
        for st in 0..4 {
            assert_eq!(s.sensing.watches[st], vec![AttrKey::new(st, ATTR_PRESENT)]);
        }
    }
}
