//! The hospital scenario (paper §5).
//!
//! "Consider a hospital where each visitor and patient has a RFID badge …
//! we could monitor the number of visitors in the waiting room. Or when a
//! visitor enters the infectious diseases ward."
//!
//! Wards form a hub-and-spoke graph (ward 0 is the waiting room/lobby).
//! Visitors walk between wards; each ward object tracks its visitor count,
//! and a distinguished *infectious* ward additionally raises an `intrusion`
//! flag while any visitor is inside. Visitor movements are covertly
//! chained, like the office scenario.

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::mobility::{RoomGraph, RoomWalker};
use crate::object::{AttrKey, AttrValue, ObjectSpec, WorldState};
use crate::timeline::{Timeline, WorldEvent};

use super::{Scenario, SensorAssignment};

/// Attribute index of a ward's visitor count.
pub const ATTR_COUNT: usize = 0;
/// Attribute index of a ward's intrusion flag (meaningful on the
/// infectious ward; always false elsewhere).
pub const ATTR_INTRUSION: usize = 1;

/// Parameters of the hospital generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HospitalParams {
    /// Number of wards including the waiting room (ward 0).
    pub wards: usize,
    /// Index of the infectious-diseases ward.
    pub infectious_ward: usize,
    /// Number of visitors.
    pub visitors: usize,
    /// Mean dwell time in a ward.
    pub mean_dwell: SimDuration,
    /// Length of the run.
    pub duration: SimTime,
}

impl Default for HospitalParams {
    fn default() -> Self {
        HospitalParams {
            wards: 5,
            infectious_ward: 4,
            visitors: 6,
            mean_dwell: SimDuration::from_secs(300),
            duration: SimTime::from_secs(7200),
        }
    }
}

/// Generate the scenario deterministically from `params` and `seed`.
pub fn generate(params: &HospitalParams, seed: u64) -> Scenario {
    assert!(params.wards > 1, "need a lobby and at least one ward");
    assert!(params.infectious_ward < params.wards, "infectious ward out of range");
    let factory = RngFactory::new(seed);
    let graph = RoomGraph::lobby(params.wards);

    let objects: Vec<ObjectSpec> = (0..params.wards)
        .map(|w| ObjectSpec {
            id: w,
            name: if w == 0 {
                "waiting-room".into()
            } else if w == params.infectious_ward {
                format!("ward-{w}-infectious")
            } else {
                format!("ward-{w}")
            },
            attrs: vec![
                ("count".into(), AttrValue::Int(if w == 0 { params.visitors as i64 } else { 0 })),
                ("intrusion".into(), AttrValue::Bool(false)),
            ],
        })
        .collect();

    let mut count = vec![0i64; params.wards];
    count[0] = params.visitors as i64;
    let mut events: Vec<WorldEvent> = Vec::new();
    let mut walkers: Vec<RoomWalker> = (0..params.visitors)
        .map(|v| {
            let mut rng = factory.labeled_stream(&format!("hospital.visitor.{v}"));
            RoomWalker::new(0, params.mean_dwell, &mut rng)
        })
        .collect();
    let mut move_rngs: Vec<_> = (0..params.visitors)
        .map(|v| factory.labeled_stream(&format!("hospital.visitor.{v}.moves")))
        .collect();
    let mut chains: Vec<Option<usize>> = vec![None; params.visitors];

    loop {
        let next: Option<(SimTime, usize)> = walkers
            .iter()
            .enumerate()
            .map(|(v, w)| (w.next_move, v))
            .filter(|&(t, _)| t <= params.duration)
            .min();
        let Some((t, v)) = next else { break };
        let (old, new) = walkers[v].maybe_move(t, &graph, &mut move_rngs[v]).expect("due");
        if old == new {
            continue;
        }
        let prev_chain: Vec<usize> = chains[v].into_iter().collect();
        count[old] -= 1;
        let leave_id = events.len();
        events.push(WorldEvent {
            id: leave_id,
            at: t,
            key: AttrKey::new(old, ATTR_COUNT),
            value: AttrValue::Int(count[old]),
            caused_by: prev_chain,
        });
        count[new] += 1;
        let enter_id = events.len();
        events.push(WorldEvent {
            id: enter_id,
            at: t,
            key: AttrKey::new(new, ATTR_COUNT),
            value: AttrValue::Int(count[new]),
            caused_by: vec![leave_id],
        });
        chains[v] = Some(enter_id);

        // Intrusion flag on the infectious ward.
        let iw = params.infectious_ward;
        if old == iw && count[iw] == 0 {
            events.push(WorldEvent {
                id: events.len(),
                at: t,
                key: AttrKey::new(iw, ATTR_INTRUSION),
                value: AttrValue::Bool(false),
                caused_by: vec![leave_id],
            });
        }
        if new == iw && count[iw] == 1 {
            events.push(WorldEvent {
                id: events.len(),
                at: t,
                key: AttrKey::new(iw, ATTR_INTRUSION),
                value: AttrValue::Bool(true),
                caused_by: vec![enter_id],
            });
        }
    }

    let sensing = SensorAssignment {
        watches: (0..params.wards)
            .map(|w| vec![AttrKey::new(w, ATTR_COUNT), AttrKey::new(w, ATTR_INTRUSION)])
            .collect(),
    };

    Scenario {
        name: format!("hospital(wards={}, visitors={})", params.wards, params.visitors),
        timeline: Timeline::new(objects, events),
        sensing,
    }
}

/// The waiting room is overcrowded: more than `limit` visitors in ward 0.
pub fn waiting_room_over(limit: i64) -> impl Fn(&WorldState) -> bool {
    move |state| state.get_int(AttrKey::new(0, ATTR_COUNT)) > limit
}

/// Someone is inside the infectious ward.
pub fn infectious_ward_breached(ward: usize) -> impl Fn(&WorldState) -> bool {
    move |state| state.get_bool(AttrKey::new(ward, ATTR_INTRUSION))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::truth_intervals;

    fn small() -> HospitalParams {
        HospitalParams {
            wards: 4,
            infectious_ward: 3,
            visitors: 5,
            mean_dwell: SimDuration::from_secs(60),
            duration: SimTime::from_secs(3600),
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small(), 2).timeline.events, generate(&small(), 2).timeline.events);
    }

    /// Collect the state at each *instant boundary* (after all events
    /// sharing a timestamp have applied). A leave/enter pair shares one
    /// timestamp, so invariants hold between instants, not between the two
    /// halves of a move.
    fn states_at_boundaries(s: &Scenario) -> Vec<crate::object::WorldState> {
        let mut out = Vec::new();
        let mut pending: Option<(psn_sim::time::SimTime, crate::object::WorldState)> = None;
        s.timeline.replay(|state, e| {
            if let Some((t, st)) = pending.take() {
                if t != e.at {
                    out.push(st);
                }
            }
            pending = Some((e.at, state.clone()));
        });
        if let Some((_, st)) = pending {
            out.push(st);
        }
        out
    }

    #[test]
    fn counts_conserve_visitors() {
        let s = generate(&small(), 4);
        for state in states_at_boundaries(&s) {
            let total: i64 = (0..4).map(|w| state.get_int(AttrKey::new(w, ATTR_COUNT))).sum();
            assert_eq!(total, 5, "visitors are conserved");
            for w in 0..4 {
                assert!(state.get_int(AttrKey::new(w, ATTR_COUNT)) >= 0);
            }
        }
    }

    #[test]
    fn intrusion_tracks_infectious_count() {
        let s = generate(&small(), 4);
        for state in states_at_boundaries(&s) {
            let c = state.get_int(AttrKey::new(3, ATTR_COUNT));
            let flag = state.get_bool(AttrKey::new(3, ATTR_INTRUSION));
            assert_eq!(flag, c > 0, "intrusion flag must mirror occupancy");
        }
    }

    #[test]
    fn breach_predicate_fires() {
        let s = generate(&small(), 6);
        let ivs = truth_intervals(&s.timeline, infectious_ward_breached(3));
        assert!(!ivs.is_empty(), "with 5 wandering visitors the ward gets entered");
    }

    #[test]
    fn waiting_room_starts_full() {
        let s = generate(&small(), 6);
        let ivs = truth_intervals(&s.timeline, waiting_room_over(3));
        assert!(!ivs.is_empty());
        assert_eq!(ivs[0].start, SimTime::ZERO, "all 5 visitors start in the lobby");
    }

    #[test]
    fn enter_caused_by_leave() {
        let s = generate(&small(), 8);
        let mut seen_pair = false;
        for e in &s.timeline.events {
            if e.key.attr == ATTR_COUNT && !e.caused_by.is_empty() {
                let c = &s.timeline.events[e.caused_by[0]];
                assert!(c.at <= e.at);
                seen_pair = true;
            }
        }
        assert!(seen_pair);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn infectious_ward_validated() {
        let params = HospitalParams { infectious_ward: 9, ..small() };
        let _ = generate(&params, 0);
    }
}
