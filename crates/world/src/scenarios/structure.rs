//! Structure-monitoring scenario (paper §3.3: "several environments in the
//! urban setting (such as office, home, and **structure monitoring**)").
//!
//! Vibration sensors along a bridge/building truss. Background events are
//! rare; occasionally a *shock* (a truck, a gust) hits one segment and
//! **propagates through the structure** to neighbouring segments with a
//! short mechanical delay — a textbook covert channel: the causal coupling
//! travels through the steel, invisible to the network plane, producing
//! bursts of near-simultaneous events at different sensors (exactly the
//! race-rich regime where the borderline bin earns its keep).

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::object::{AttrKey, AttrValue, ObjectSpec, WorldState};
use crate::timeline::{Timeline, WorldEvent};

use super::{Scenario, SensorAssignment};

/// Attribute index of a segment's vibration level (0 = calm).
pub const ATTR_VIBRATION: usize = 0;

/// Parameters of the structure-monitoring generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureParams {
    /// Number of instrumented segments (a chain).
    pub segments: usize,
    /// Poisson rate of shocks hitting the structure, per second.
    pub shock_rate_hz: f64,
    /// Mechanical propagation delay between adjacent segments.
    pub coupling_delay: SimDuration,
    /// How many hops a shock propagates in each direction.
    pub coupling_hops: usize,
    /// How long a segment rings before calming down.
    pub ring_down: SimDuration,
    /// Length of the run.
    pub duration: SimTime,
}

impl Default for StructureParams {
    fn default() -> Self {
        StructureParams {
            segments: 8,
            shock_rate_hz: 0.02,
            coupling_delay: SimDuration::from_millis(80),
            coupling_hops: 2,
            ring_down: SimDuration::from_secs(3),
            duration: SimTime::from_secs(3600),
        }
    }
}

/// Generate the scenario deterministically from `params` and `seed`.
pub fn generate(params: &StructureParams, seed: u64) -> Scenario {
    assert!(params.segments > 0, "need at least one segment");
    let factory = RngFactory::new(seed);
    let mut shocks = factory.labeled_stream("structure.shocks");

    let objects: Vec<ObjectSpec> = (0..params.segments)
        .map(|s| ObjectSpec {
            id: s,
            name: format!("segment-{s}"),
            attrs: vec![("vibration".into(), AttrValue::Int(0))],
        })
        .collect();

    // Vibration levels are event-counted: level increments on excitation,
    // decrements on ring-down. Track per-segment level to emit exact
    // values.
    let mut events: Vec<WorldEvent> = Vec::new();
    let mut level = vec![0i64; params.segments];
    // Pending level changes: (time, segment, +1/-1, cause event id or None)
    let mut pending: Vec<(SimTime, usize, i64, Option<usize>)> = Vec::new();

    let mut t = SimTime::ZERO;
    let mean_gap = SimDuration::from_secs_f64(1.0 / params.shock_rate_hz.max(1e-12));
    loop {
        t += shocks.exponential_duration(mean_gap);
        if t > params.duration {
            break;
        }
        let epicentre = shocks.index(params.segments);
        pending.push((t, epicentre, 1, None));
        // The shock rings down later.
        pending.push((t + params.ring_down, epicentre, -1, None));
    }

    // Process pending excitations in time order, spawning propagation to
    // neighbours as each excitation event materializes.
    while !pending.is_empty() {
        pending.sort_by_key(|&(at, seg, delta, _)| (at, seg, -delta));
        let (at, seg, delta, cause) = pending.remove(0);
        if at > params.duration {
            continue;
        }
        level[seg] = (level[seg] + delta).max(0);
        let id = events.len();
        events.push(WorldEvent {
            id,
            at,
            key: AttrKey::new(seg, ATTR_VIBRATION),
            value: AttrValue::Int(level[seg]),
            caused_by: cause.into_iter().collect(),
        });
        // A fresh excitation (not a ring-down) propagates to neighbours
        // through the structure (covert channel), if it is a primary or
        // still within the hop budget. Hop budget is encoded by chaining:
        // primary (cause None) propagates `coupling_hops`; we recompute
        // remaining hops by walking the cause chain.
        if delta > 0 {
            let mut hops_used = 0;
            let mut c = cause;
            while let Some(cid) = c {
                hops_used += 1;
                c = events[cid].caused_by.first().copied();
            }
            if hops_used < params.coupling_hops {
                for nb in [seg.wrapping_sub(1), seg + 1] {
                    if nb < params.segments && nb != seg {
                        let at2 = at + params.coupling_delay;
                        pending.push((at2, nb, 1, Some(id)));
                        pending.push((at2 + params.ring_down, nb, -1, Some(id)));
                    }
                }
            }
        }
    }

    let sensing = SensorAssignment {
        watches: (0..params.segments).map(|s| vec![AttrKey::new(s, ATTR_VIBRATION)]).collect(),
    };

    Scenario {
        name: format!("structure(segments={}, shocks={}/s)", params.segments, params.shock_rate_hz),
        timeline: Timeline::new(objects, events),
        sensing,
    }
}

/// The structural-alarm predicate: at least `k` segments vibrating at once
/// (a propagating shock, as opposed to local noise).
pub fn widespread_vibration(segments: usize, k: usize) -> impl Fn(&WorldState) -> bool {
    move |state| {
        (0..segments).filter(|&s| state.get_int(AttrKey::new(s, ATTR_VIBRATION)) > 0).count() >= k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StructureParams {
        StructureParams {
            segments: 5,
            shock_rate_hz: 0.05,
            coupling_delay: SimDuration::from_millis(100),
            coupling_hops: 2,
            ring_down: SimDuration::from_secs(2),
            duration: SimTime::from_secs(1800),
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small(), 4).timeline.events, generate(&small(), 4).timeline.events);
    }

    #[test]
    fn vibration_levels_never_negative() {
        let s = generate(&small(), 6);
        for e in &s.timeline.events {
            assert!(e.value.as_int() >= 0);
        }
    }

    #[test]
    fn shocks_propagate_to_neighbours() {
        let s = generate(&small(), 6);
        // Some event must be caused by an event at an adjacent segment.
        let propagated = s.timeline.events.iter().any(|e| {
            e.caused_by.iter().any(|&c| {
                let cs = s.timeline.events[c].key.object;
                cs.abs_diff(e.key.object) == 1
            })
        });
        assert!(propagated, "structural coupling must appear in the causal graph");
    }

    #[test]
    fn propagation_respects_coupling_delay() {
        let s = generate(&small(), 6);
        for e in &s.timeline.events {
            for &c in &e.caused_by {
                let gap = e.at.saturating_since(s.timeline.events[c].at);
                assert!(
                    gap == SimDuration::from_millis(100)
                        || gap == SimDuration::from_millis(100) + SimDuration::from_secs(2),
                    "caused events lag by coupling delay (+ring-down), got {gap}"
                );
            }
        }
    }

    #[test]
    fn hop_budget_limits_spread() {
        // With 2 hops, a chain of causes never exceeds length 2.
        let s = generate(&small(), 9);
        for e in &s.timeline.events {
            let mut depth = 0;
            let mut c = e.caused_by.first().copied();
            while let Some(cid) = c {
                depth += 1;
                c = s.timeline.events[cid].caused_by.first().copied();
            }
            assert!(depth <= 2, "hop budget exceeded: {depth}");
        }
    }

    #[test]
    fn widespread_vibration_fires_on_propagating_shocks() {
        let s = generate(&small(), 11);
        let ivs = crate::ground_truth::truth_intervals(&s.timeline, widespread_vibration(5, 3));
        assert!(!ivs.is_empty(), "a shock with 2-hop coupling excites ≥3 segments");
        // And each such episode is short (ring-down bounded).
        for iv in &ivs {
            assert!(
                iv.duration(s.timeline.duration()).as_secs_f64() < 10.0,
                "episodes are transient"
            );
        }
    }

    #[test]
    fn bursty_causal_structure() {
        let s = generate(&small(), 13);
        assert!(s.timeline.causal_density() > 0.0, "covert coupling present");
        // Events cluster: the fraction of events within 500ms of another
        // event at a different segment is high (race-rich regime).
        let evs = &s.timeline.events;
        let clustered = evs
            .iter()
            .filter(|e| {
                evs.iter().any(|f| {
                    f.id != e.id
                        && f.key.object != e.key.object
                        && f.at.as_nanos().abs_diff(e.at.as_nanos()) < 500_000_000
                })
            })
            .count();
        assert!(
            clustered * 2 > evs.len(),
            "most events are in coupled bursts ({clustered}/{})",
            evs.len()
        );
    }
}
