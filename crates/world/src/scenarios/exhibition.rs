//! The exhibition-hall scenario (paper §5).
//!
//! "Consider a big exhibition hall … with d doors for entry-cum-exit and a
//! room capacity of 200 people. At each door, a sensor detects the movement
//! of people in and out … Each sensor is modeled as a process Pᵢ and tracks
//! two variables: xᵢ, the number of people entered through the monitored
//! door, and yᵢ, the number that have left. The global predicate … is
//! φ = Σᵢ (xᵢ − yᵢ) > 200."
//!
//! People arrive as a Poisson process, pick an entry door uniformly, stay
//! an exponential dwell time, and leave through a (possibly different)
//! uniformly chosen door. The **person is the covert channel**: the exit
//! event is `caused_by` the entry event, a causal edge the sensors cannot
//! observe (they see only per-door counter changes).

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::object::{AttrKey, AttrValue, ObjectSpec, WorldState};
use crate::timeline::{Timeline, WorldEvent};

use super::{Scenario, SensorAssignment};

/// Attribute index of xᵢ (entries) on a door object.
pub const ATTR_X: usize = 0;
/// Attribute index of yᵢ (exits) on a door object.
pub const ATTR_Y: usize = 1;

/// Parameters of the exhibition-hall generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExhibitionParams {
    /// Number of doors d (= number of sensor processes).
    pub doors: usize,
    /// Poisson arrival rate, people per second.
    pub arrival_rate_hz: f64,
    /// Mean stay inside the hall.
    pub mean_stay: SimDuration,
    /// Length of the run.
    pub duration: SimTime,
    /// Room capacity for the occupancy predicate (the paper's example
    /// uses 200).
    pub capacity: i64,
}

impl Default for ExhibitionParams {
    fn default() -> Self {
        ExhibitionParams {
            doors: 4,
            arrival_rate_hz: 1.0,
            mean_stay: SimDuration::from_secs(180),
            duration: SimTime::from_secs(1800),
            capacity: 200,
        }
    }
}

/// Generate the scenario deterministically from `params` and `seed`.
pub fn generate(params: &ExhibitionParams, seed: u64) -> Scenario {
    assert!(params.doors > 0, "need at least one door");
    let factory = RngFactory::new(seed);
    let mut arrivals_rng = factory.labeled_stream("exhibition.arrivals");
    let mut doors_rng = factory.labeled_stream("exhibition.doors");
    let mut stay_rng = factory.labeled_stream("exhibition.stay");

    let objects: Vec<ObjectSpec> = (0..params.doors)
        .map(|d| ObjectSpec {
            id: d,
            name: format!("door-{d}"),
            attrs: vec![("x".into(), AttrValue::Int(0)), ("y".into(), AttrValue::Int(0))],
        })
        .collect();

    let mut x = vec![0i64; params.doors];
    let mut y = vec![0i64; params.doors];
    let mut events: Vec<WorldEvent> = Vec::new();
    // Departures pending: (time, exit door, entry event id).
    let mut departures: Vec<(SimTime, usize, usize)> = Vec::new();

    let mut t = SimTime::ZERO;
    let mean_gap = 1.0 / params.arrival_rate_hz.max(1e-12);
    loop {
        t += arrivals_rng.exponential_duration(SimDuration::from_secs_f64(mean_gap));
        if t > params.duration {
            break;
        }
        // Flush departures due before this arrival.
        departures.sort_by_key(|&(at, _, _)| at);
        while let Some(&(at, door, entry_id)) = departures.first() {
            if at > t {
                break;
            }
            departures.remove(0);
            y[door] += 1;
            events.push(WorldEvent {
                id: events.len(),
                at,
                key: AttrKey::new(door, ATTR_Y),
                value: AttrValue::Int(y[door]),
                caused_by: vec![entry_id],
            });
        }
        let door_in = doors_rng.index(params.doors);
        x[door_in] += 1;
        let entry_id = events.len();
        events.push(WorldEvent {
            id: entry_id,
            at: t,
            key: AttrKey::new(door_in, ATTR_X),
            value: AttrValue::Int(x[door_in]),
            caused_by: vec![],
        });
        let leave_at = t + stay_rng.exponential_duration(params.mean_stay);
        if leave_at <= params.duration {
            departures.push((leave_at, doors_rng.index(params.doors), entry_id));
        }
    }
    // Flush remaining departures within the horizon.
    departures.sort_by_key(|&(at, _, _)| at);
    for (at, door, entry_id) in departures {
        if at > params.duration {
            continue;
        }
        y[door] += 1;
        events.push(WorldEvent {
            id: events.len(),
            at,
            key: AttrKey::new(door, ATTR_Y),
            value: AttrValue::Int(y[door]),
            caused_by: vec![entry_id],
        });
    }

    let sensing = SensorAssignment {
        watches: (0..params.doors)
            .map(|d| vec![AttrKey::new(d, ATTR_X), AttrKey::new(d, ATTR_Y)])
            .collect(),
    };

    Scenario {
        name: format!("exhibition-hall(d={}, λ={}/s)", params.doors, params.arrival_rate_hz),
        timeline: Timeline::new(objects, events),
        sensing,
    }
}

/// Current hall occupancy Σᵢ (xᵢ − yᵢ) in a world state.
pub fn occupancy(state: &WorldState, doors: usize) -> i64 {
    (0..doors)
        .map(|d| state.get_int(AttrKey::new(d, ATTR_X)) - state.get_int(AttrKey::new(d, ATTR_Y)))
        .sum()
}

/// The §5 predicate: occupancy strictly above capacity.
pub fn over_capacity(doors: usize, capacity: i64) -> impl Fn(&WorldState) -> bool {
    move |state| occupancy(state, doors) > capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::truth_intervals;

    fn small() -> ExhibitionParams {
        ExhibitionParams {
            doors: 3,
            arrival_rate_hz: 2.0,
            mean_stay: SimDuration::from_secs(30),
            duration: SimTime::from_secs(600),
            capacity: 50,
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&small(), 42);
        let b = generate(&small(), 42);
        assert_eq!(a.timeline.events, b.timeline.events);
        let c = generate(&small(), 43);
        assert_ne!(a.timeline.events, c.timeline.events);
    }

    #[test]
    fn events_sorted_and_within_horizon() {
        let s = generate(&small(), 1);
        let mut last = SimTime::ZERO;
        for e in &s.timeline.events {
            assert!(e.at >= last);
            assert!(e.at <= SimTime::from_secs(600));
            last = e.at;
        }
        assert!(s.timeline.len() > 500, "≈2/s arrivals for 600s plus departures");
    }

    #[test]
    fn occupancy_never_negative_and_counters_monotone() {
        let s = generate(&small(), 7);
        let mut prev = WorldState::initial(&s.timeline.objects);
        s.timeline.replay(|state, e| {
            let occ = occupancy(state, 3);
            assert!(occ >= 0, "occupancy went negative at {}", e.at);
            // Counters are monotone: the new value exceeds the old.
            assert!(e.value.as_int() == prev.get_int(e.key) + 1);
            prev = state.clone();
        });
    }

    #[test]
    fn every_exit_is_caused_by_an_entry() {
        let s = generate(&small(), 9);
        let mut entries = 0;
        let mut exits = 0;
        for e in &s.timeline.events {
            if e.key.attr == ATTR_Y {
                exits += 1;
                assert_eq!(e.caused_by.len(), 1, "exit must have its covert cause");
                let cause = &s.timeline.events[e.caused_by[0]];
                assert_eq!(cause.key.attr, ATTR_X, "cause is an entry");
                assert!(cause.at < e.at, "cause precedes effect");
            } else {
                entries += 1;
                assert!(e.caused_by.is_empty(), "entries are spontaneous");
            }
        }
        assert!(exits <= entries);
        assert!(exits > 0, "some people left during the run");
    }

    #[test]
    fn sensing_assignment_covers_all_doors() {
        let s = generate(&small(), 3);
        assert_eq!(s.num_processes(), 3);
        for d in 0..3 {
            assert_eq!(s.sensing.process_for(AttrKey::new(d, ATTR_X)), Some(d));
            assert_eq!(s.sensing.process_for(AttrKey::new(d, ATTR_Y)), Some(d));
        }
    }

    #[test]
    fn over_capacity_predicate_fires_under_load() {
        // Heavy load: 10/s arriving, staying 60s ⇒ steady state ≈ 600 ≫ 50.
        let params = ExhibitionParams {
            doors: 2,
            arrival_rate_hz: 10.0,
            mean_stay: SimDuration::from_secs(60),
            duration: SimTime::from_secs(300),
            capacity: 50,
        };
        let s = generate(&params, 11);
        let ivs = truth_intervals(&s.timeline, over_capacity(2, 50));
        assert!(!ivs.is_empty(), "the hall must exceed capacity at some point");
    }

    #[test]
    fn light_load_never_exceeds_capacity() {
        let params = ExhibitionParams {
            doors: 2,
            arrival_rate_hz: 0.05,
            mean_stay: SimDuration::from_secs(10),
            duration: SimTime::from_secs(600),
            capacity: 50,
        };
        let s = generate(&params, 11);
        let ivs = truth_intervals(&s.timeline, over_capacity(2, 50));
        assert!(ivs.is_empty(), "≈0.5 expected occupancy cannot reach 50");
    }

    #[test]
    fn event_rate_matches_parameters() {
        let s = generate(&small(), 13);
        // Arrivals 2/s plus roughly equal departures ⇒ ≈4 events/s.
        let rate = s.event_rate_hz();
        assert!((2.5..6.0).contains(&rate), "rate = {rate}");
    }
}
