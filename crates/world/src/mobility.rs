//! Mobility models for world-plane objects.
//!
//! The paper's objects "may be static or mobile (e.g., objects with RFID
//! tags, animals with embedded chips, humans)". Two models cover the
//! scenarios:
//!
//! - [`RoomGraph`] — discrete rooms connected by doors; people transition
//!   along edges (smart office, hospital, exhibition hall);
//! - [`Waypoint`] — continuous 2-D random-waypoint motion (habitat
//!   monitoring, sensing-range studies).

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngStream;
use psn_sim::time::{SimDuration, SimTime};

/// A discrete room-adjacency graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoomGraph {
    /// `adj[r]` = rooms reachable from room `r` in one transition.
    adj: Vec<Vec<usize>>,
}

impl RoomGraph {
    /// A graph from an explicit adjacency list.
    pub fn new(adj: Vec<Vec<usize>>) -> Self {
        for (r, ns) in adj.iter().enumerate() {
            for &n in ns {
                assert!(n < adj.len(), "room {r} links to out-of-range {n}");
            }
        }
        RoomGraph { adj }
    }

    /// A corridor: rooms `0..n` in a line, each connected to its
    /// neighbours.
    pub fn corridor(n: usize) -> Self {
        let adj = (0..n)
            .map(|r| {
                let mut ns = Vec::new();
                if r > 0 {
                    ns.push(r - 1);
                }
                if r + 1 < n {
                    ns.push(r + 1);
                }
                ns
            })
            .collect();
        RoomGraph { adj }
    }

    /// A hub-and-spoke building: room 0 is a lobby connected to all others.
    pub fn lobby(n: usize) -> Self {
        let mut adj = vec![Vec::new(); n];
        for r in 1..n {
            adj[0].push(r);
            adj[r].push(0);
        }
        RoomGraph { adj }
    }

    /// Number of rooms.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if there are no rooms.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Rooms adjacent to `r`.
    pub fn neighbors(&self, r: usize) -> &[usize] {
        &self.adj[r]
    }

    /// One random transition from `r` (stays put if `r` is isolated).
    pub fn step(&self, r: usize, rng: &mut RngStream) -> usize {
        let ns = &self.adj[r];
        if ns.is_empty() {
            r
        } else {
            *rng.choose(ns)
        }
    }
}

/// A person (or animal, or tagged object) walking a room graph: stays in a
/// room for an exponentially-distributed dwell time, then moves to a random
/// adjacent room.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoomWalker {
    /// Current room.
    pub room: usize,
    /// Mean dwell time per room.
    pub mean_dwell: SimDuration,
    /// When the next transition happens.
    pub next_move: SimTime,
}

impl RoomWalker {
    /// A walker starting in `room` at time zero.
    pub fn new(room: usize, mean_dwell: SimDuration, rng: &mut RngStream) -> Self {
        let next_move = SimTime::ZERO + rng.exponential_duration(mean_dwell);
        RoomWalker { room, mean_dwell, next_move }
    }

    /// If `now ≥ next_move`, transition and return `Some((old, new))`.
    pub fn maybe_move(
        &mut self,
        now: SimTime,
        graph: &RoomGraph,
        rng: &mut RngStream,
    ) -> Option<(usize, usize)> {
        if now < self.next_move {
            return None;
        }
        let old = self.room;
        self.room = graph.step(self.room, rng);
        self.next_move = now + rng.exponential_duration(self.mean_dwell);
        Some((old, self.room))
    }
}

/// Continuous random-waypoint motion in a `w × h` rectangle: pick a random
/// destination and speed, walk straight there, repeat.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Waypoint {
    /// Current position.
    pub pos: (f64, f64),
    dest: (f64, f64),
    speed: f64, // units per second
    bounds: (f64, f64),
    speed_range: (f64, f64),
    last_update: SimTime,
}

impl Waypoint {
    /// A walker starting at a random position in the rectangle.
    pub fn new(bounds: (f64, f64), speed_range: (f64, f64), rng: &mut RngStream) -> Self {
        let pos = (rng.uniform_f64(0.0, bounds.0), rng.uniform_f64(0.0, bounds.1));
        let mut w = Waypoint {
            pos,
            dest: pos,
            speed: 0.0,
            bounds,
            speed_range,
            last_update: SimTime::ZERO,
        };
        w.pick_new_dest(rng);
        w
    }

    fn pick_new_dest(&mut self, rng: &mut RngStream) {
        self.dest = (rng.uniform_f64(0.0, self.bounds.0), rng.uniform_f64(0.0, self.bounds.1));
        self.speed = rng.uniform_f64(self.speed_range.0, self.speed_range.1).max(1e-9);
    }

    /// Advance to time `now`, updating the position (and picking new
    /// waypoints as they are reached).
    pub fn advance(&mut self, now: SimTime, rng: &mut RngStream) {
        let mut remaining = now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = now;
        while remaining > 0.0 {
            let (dx, dy) = (self.dest.0 - self.pos.0, self.dest.1 - self.pos.1);
            let dist = (dx * dx + dy * dy).sqrt();
            let time_to_dest = dist / self.speed;
            if time_to_dest > remaining {
                let f = remaining * self.speed / dist;
                self.pos = (self.pos.0 + dx * f, self.pos.1 + dy * f);
                break;
            }
            self.pos = self.dest;
            remaining -= time_to_dest;
            self.pick_new_dest(rng);
        }
    }

    /// Euclidean distance to a point.
    pub fn distance_to(&self, p: (f64, f64)) -> f64 {
        let (dx, dy) = (self.pos.0 - p.0, self.pos.1 - p.1);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::rng::RngFactory;

    fn rng() -> RngStream {
        RngFactory::new(5).stream(0)
    }

    #[test]
    fn corridor_shape() {
        let g = RoomGraph::corridor(4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn lobby_shape() {
        let g = RoomGraph::lobby(4);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn step_stays_on_graph() {
        let g = RoomGraph::corridor(5);
        let mut r = rng();
        let mut room = 2;
        for _ in 0..100 {
            let next = g.step(room, &mut r);
            assert!(g.neighbors(room).contains(&next));
            room = next;
        }
    }

    #[test]
    fn isolated_room_stays_put() {
        let g = RoomGraph::new(vec![vec![]]);
        let mut r = rng();
        assert_eq!(g.step(0, &mut r), 0);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn adjacency_validated() {
        let _ = RoomGraph::new(vec![vec![3]]);
    }

    #[test]
    fn walker_moves_after_dwell() {
        let g = RoomGraph::corridor(3);
        let mut r = rng();
        let mut w = RoomWalker::new(1, SimDuration::from_secs(10), &mut r);
        assert!(w.maybe_move(SimTime::ZERO, &g, &mut r).is_none(), "not yet");
        let move_time = w.next_move;
        let moved = w.maybe_move(move_time, &g, &mut r);
        let (old, new) = moved.expect("must move at next_move");
        assert_eq!(old, 1);
        assert!(new == 0 || new == 2);
        assert!(w.next_move > move_time, "new dwell scheduled");
    }

    #[test]
    fn walker_dwell_times_average_out() {
        let g = RoomGraph::lobby(5);
        let mut r = rng();
        let mean = SimDuration::from_secs(2);
        let mut w = RoomWalker::new(0, mean, &mut r);
        let mut moves = 0;
        let mut t = SimTime::ZERO;
        let horizon = SimTime::from_secs(4000);
        while t < horizon {
            t = w.next_move;
            if w.maybe_move(t, &g, &mut r).is_some() {
                moves += 1;
            }
        }
        // ~4000s / 2s mean dwell ≈ 2000 moves; allow wide tolerance.
        assert!((1700..=2300).contains(&moves), "moves = {moves}");
    }

    #[test]
    fn waypoint_stays_in_bounds() {
        let mut r = rng();
        let mut w = Waypoint::new((100.0, 50.0), (0.5, 2.0), &mut r);
        for s in 1..500 {
            w.advance(SimTime::from_secs(s), &mut r);
            assert!((0.0..=100.0).contains(&w.pos.0), "x = {}", w.pos.0);
            assert!((0.0..=50.0).contains(&w.pos.1), "y = {}", w.pos.1);
        }
    }

    #[test]
    fn waypoint_speed_is_respected() {
        let mut r = rng();
        let mut w = Waypoint::new((1000.0, 1000.0), (1.0, 1.0), &mut r);
        let p0 = w.pos;
        w.advance(SimTime::from_secs(10), &mut r);
        let moved = w.distance_to(p0);
        assert!(moved <= 10.0 + 1e-9, "speed 1 u/s for 10 s moved {moved}");
    }

    #[test]
    fn waypoint_distance() {
        let mut r = rng();
        let mut w = Waypoint::new((10.0, 10.0), (1.0, 1.0), &mut r);
        w.pos = (3.0, 4.0);
        assert!((w.distance_to((0.0, 0.0)) - 5.0).abs() < 1e-12);
    }
}
