//! World-plane objects and their attributes (paper §2.1).
//!
//! `O` is the set of external world objects, "each with a set of
//! attributes, that can be sensed and/or controlled by the sensor/actuator
//! processes". Objects have **no access to any clock** — their events carry
//! ground-truth timestamps only so the simulator can score detectors; no
//! process ever reads them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identity of a world object (dense, per scenario).
pub type ObjectId = usize;

/// Identity of an attribute within an object (dense, per object).
pub type AttrId = usize;

/// A fully qualified attribute: which object, which attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrKey {
    /// The object.
    pub object: ObjectId,
    /// The attribute within that object.
    pub attr: AttrId,
}

impl AttrKey {
    /// Shorthand constructor.
    pub fn new(object: ObjectId, attr: AttrId) -> Self {
        AttrKey { object, attr }
    }
}

/// The value of one attribute at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A boolean attribute (motion detected, door open, …).
    Bool(bool),
    /// An integer attribute (people counted through a door, …).
    Int(i64),
    /// A continuous attribute (temperature, …).
    Float(f64),
}

impl AttrValue {
    /// The value as an integer; booleans map to 0/1, floats truncate.
    pub fn as_int(&self) -> i64 {
        match *self {
            AttrValue::Bool(b) => i64::from(b),
            AttrValue::Int(i) => i,
            AttrValue::Float(f) => f as i64,
        }
    }

    /// The value as a float.
    pub fn as_float(&self) -> f64 {
        match *self {
            AttrValue::Bool(b) => f64::from(u8::from(b)),
            AttrValue::Int(i) => i as f64,
            AttrValue::Float(f) => f,
        }
    }

    /// The value as a boolean; numbers are true iff nonzero.
    pub fn as_bool(&self) -> bool {
        match *self {
            AttrValue::Bool(b) => b,
            AttrValue::Int(i) => i != 0,
            AttrValue::Float(f) => f != 0.0,
        }
    }

    /// Is the change from `self` to `new` *significant* at the given
    /// threshold? The execution model records a sense event only on a
    /// significant change (paper §2.2). Discrete attributes change
    /// significantly on any change; floats when the move exceeds the
    /// threshold.
    pub fn significant_change(&self, new: &AttrValue, float_threshold: f64) -> bool {
        match (self, new) {
            (AttrValue::Float(a), AttrValue::Float(b)) => (a - b).abs() >= float_threshold,
            (a, b) => a != b,
        }
    }
}

/// A static description of one world object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Dense object id.
    pub id: ObjectId,
    /// Human-readable name ("door-3", "room-B-temp", "pen").
    pub name: String,
    /// Attribute names and initial values, indexed by [`AttrId`].
    pub attrs: Vec<(String, AttrValue)>,
}

impl ObjectSpec {
    /// Look up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|(n, _)| n == name)
    }
}

/// The instantaneous ground-truth state of the world plane: every
/// attribute's current value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorldState {
    values: HashMap<AttrKey, AttrValue>,
}

impl WorldState {
    /// The state induced by the objects' initial attribute values.
    pub fn initial(objects: &[ObjectSpec]) -> Self {
        let mut values = HashMap::new();
        for o in objects {
            for (attr, (_, v)) in o.attrs.iter().enumerate() {
                values.insert(AttrKey::new(o.id, attr), *v);
            }
        }
        WorldState { values }
    }

    /// Read an attribute (None if never set).
    pub fn get(&self, key: AttrKey) -> Option<AttrValue> {
        self.values.get(&key).copied()
    }

    /// Read an attribute as an integer, defaulting to 0.
    pub fn get_int(&self, key: AttrKey) -> i64 {
        self.get(key).map(|v| v.as_int()).unwrap_or(0)
    }

    /// Read an attribute as a float, defaulting to 0.0.
    pub fn get_float(&self, key: AttrKey) -> f64 {
        self.get(key).map(|v| v.as_float()).unwrap_or(0.0)
    }

    /// Read an attribute as a boolean, defaulting to false.
    pub fn get_bool(&self, key: AttrKey) -> bool {
        self.get(key).map(|v| v.as_bool()).unwrap_or(false)
    }

    /// Overwrite an attribute, returning the previous value.
    pub fn set(&mut self, key: AttrKey, value: AttrValue) -> Option<AttrValue> {
        self.values.insert(key, value)
    }

    /// Number of attributes tracked.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no attribute was ever set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::Bool(true).as_int(), 1);
        assert_eq!(AttrValue::Int(-3).as_float(), -3.0);
        assert!(AttrValue::Float(0.5).as_bool());
        assert!(!AttrValue::Int(0).as_bool());
        assert_eq!(AttrValue::Float(2.9).as_int(), 2);
    }

    #[test]
    fn significant_change_rules() {
        let t = 0.5;
        assert!(AttrValue::Int(1).significant_change(&AttrValue::Int(2), t));
        assert!(!AttrValue::Int(1).significant_change(&AttrValue::Int(1), t));
        assert!(AttrValue::Bool(false).significant_change(&AttrValue::Bool(true), t));
        assert!(!AttrValue::Float(1.0).significant_change(&AttrValue::Float(1.2), t));
        assert!(AttrValue::Float(1.0).significant_change(&AttrValue::Float(1.6), t));
    }

    #[test]
    fn initial_state_from_objects() {
        let objects = vec![
            ObjectSpec {
                id: 0,
                name: "door-0".into(),
                attrs: vec![("x".into(), AttrValue::Int(0)), ("y".into(), AttrValue::Int(0))],
            },
            ObjectSpec {
                id: 1,
                name: "room".into(),
                attrs: vec![("temp".into(), AttrValue::Float(20.0))],
            },
        ];
        let s = WorldState::initial(&objects);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get_int(AttrKey::new(0, 0)), 0);
        assert_eq!(s.get_float(AttrKey::new(1, 0)), 20.0);
        assert_eq!(objects[0].attr_id("y"), Some(1));
        assert_eq!(objects[1].attr_id("nope"), None);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut s = WorldState::default();
        assert!(s.is_empty());
        let k = AttrKey::new(3, 1);
        assert_eq!(s.set(k, AttrValue::Int(7)), None);
        assert_eq!(s.set(k, AttrValue::Int(9)), Some(AttrValue::Int(7)));
        assert_eq!(s.get_int(k), 9);
        assert_eq!(s.get(AttrKey::new(9, 9)), None);
        assert_eq!(s.get_int(AttrKey::new(9, 9)), 0, "missing defaults to 0");
    }
}
