//! Property-based tests for the world plane.

use proptest::prelude::*;

use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams, ATTR_X};
use psn_world::{
    truth_intervals, AttrKey, AttrValue, ObjectSpec, Timeline, WorldEvent, WorldState,
};

fn arb_events(max: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    proptest::collection::vec((0u64..10_000, -50i64..50), 0..max)
}

fn counter_timeline(changes: &[(u64, i64)]) -> Timeline {
    let objects =
        vec![ObjectSpec { id: 0, name: "c".into(), attrs: vec![("v".into(), AttrValue::Int(0))] }];
    let events = changes
        .iter()
        .enumerate()
        .map(|(i, &(ms, v))| WorldEvent {
            id: i,
            at: SimTime::from_millis(ms),
            key: AttrKey::new(0, 0),
            value: AttrValue::Int(v),
            caused_by: vec![],
        })
        .collect();
    Timeline::new(objects, events)
}

proptest! {
    /// Timeline::new sorts by time and renumbers ids densely.
    #[test]
    fn timeline_is_sorted_and_densely_numbered(changes in arb_events(40)) {
        let t = counter_timeline(&changes);
        for (i, e) in t.events.iter().enumerate() {
            prop_assert_eq!(e.id, i);
            if i > 0 {
                prop_assert!(t.events[i - 1].at <= e.at);
            }
        }
    }

    /// Truth intervals are disjoint, ordered, and only the last may be open.
    #[test]
    fn truth_intervals_are_disjoint_and_ordered(changes in arb_events(40), thresh in -20i64..20) {
        let t = counter_timeline(&changes);
        let ivs = truth_intervals(&t, |s| s.get_int(AttrKey::new(0, 0)) > thresh);
        for (i, iv) in ivs.iter().enumerate() {
            if let Some(end) = iv.end {
                prop_assert!(iv.start <= end);
            } else {
                prop_assert_eq!(i, ivs.len() - 1, "only the last interval may be open");
            }
            if i > 0 {
                let prev_end = ivs[i - 1].end.expect("non-last intervals are closed");
                prop_assert!(prev_end <= iv.start);
            }
        }
    }

    /// The predicate's value at any instant matches interval membership.
    #[test]
    fn truth_intervals_match_pointwise_evaluation(
        changes in arb_events(30),
        probe_ms in 0u64..10_000,
        thresh in -20i64..20,
    ) {
        let t = counter_timeline(&changes);
        let pred = |s: &WorldState| s.get_int(AttrKey::new(0, 0)) > thresh;
        let ivs = truth_intervals(&t, pred);
        let probe = SimTime::from_millis(probe_ms);
        let by_interval = ivs.iter().any(|iv| iv.contains(probe));
        let by_state = pred(&t.state_at(probe));
        prop_assert_eq!(by_interval, by_state);
    }

    /// Exhibition generation invariants hold for arbitrary parameters.
    #[test]
    fn exhibition_invariants(
        doors in 1usize..6,
        rate in 0.1f64..6.0,
        stay_s in 5u64..120,
        seed in 0u64..1000,
    ) {
        let params = ExhibitionParams {
            doors,
            arrival_rate_hz: rate,
            mean_stay: SimDuration::from_secs(stay_s),
            duration: SimTime::from_secs(120),
            capacity: 10,
        };
        let s = exhibition::generate(&params, seed);
        // Counters are monotone non-decreasing and occupancy never negative.
        let mut x = vec![0i64; doors];
        let mut y = vec![0i64; doors];
        for e in &s.timeline.events {
            let v = e.value.as_int();
            if e.key.attr == ATTR_X {
                prop_assert_eq!(v, x[e.key.object] + 1);
                x[e.key.object] = v;
            } else {
                prop_assert_eq!(v, y[e.key.object] + 1);
                y[e.key.object] = v;
            }
            let occ: i64 = (0..doors).map(|d| x[d] - y[d]).sum();
            prop_assert!(occ >= 0, "occupancy negative");
        }
        // Total exits never exceed total entries.
        prop_assert!(y.iter().sum::<i64>() <= x.iter().sum::<i64>());
        // Sensing covers exactly the doors.
        prop_assert_eq!(s.num_processes(), doors);
    }

    /// Generation is a pure function of (params, seed).
    #[test]
    fn exhibition_deterministic(seed in 0u64..500) {
        let params = ExhibitionParams {
            doors: 3,
            arrival_rate_hz: 1.0,
            mean_stay: SimDuration::from_secs(20),
            duration: SimTime::from_secs(60),
            capacity: 10,
        };
        let a = exhibition::generate(&params, seed);
        let b = exhibition::generate(&params, seed);
        prop_assert_eq!(a.timeline.events, b.timeline.events);
    }

    /// World causality is a DAG respecting time order.
    #[test]
    fn covert_causality_respects_time(seed in 0u64..200) {
        let params = ExhibitionParams {
            doors: 2,
            arrival_rate_hz: 2.0,
            mean_stay: SimDuration::from_secs(10),
            duration: SimTime::from_secs(60),
            capacity: 10,
        };
        let s = exhibition::generate(&params, seed);
        for e in &s.timeline.events {
            for &c in &e.caused_by {
                prop_assert!(c < e.id);
                prop_assert!(s.timeline.events[c].at <= e.at);
                prop_assert!(s.timeline.world_causally_precedes(c, e.id));
                prop_assert!(!s.timeline.world_causally_precedes(e.id, c));
            }
        }
    }
}
