//! # psn-faults
//!
//! The **fault plane**: deterministic, seeded fault injection for the
//! pervasive-sensor-network simulator.
//!
//! The implementation lives in [`psn_sim::fault`] (it must sit next to the
//! engine to intercept the transmit path without widening the hot loop);
//! this crate is the stable public face for consumers that want fault
//! scripting without depending on simulator internals. Everything here is
//! a re-export — `psn_faults::FaultScript` *is* `psn_sim::fault::FaultScript`.
//!
//! ## What the plane can do
//!
//! - **Crash / recover** ([`FaultSpec::Crash`]) — a process stops receiving
//!   deliveries and timers; with `recover_after` it restarts and its actor
//!   receives [`FaultEvent::Recover`] to replay its log and re-prime its
//!   clocks (see `psn_core::RecoveryPolicy`).
//! - **Partitions** ([`FaultSpec::Partition`]) — a node set is cut off;
//!   in-flight and crossing messages are dropped or parked per
//!   [`CutPolicy`], and parked messages release in order at heal time.
//! - **Channel faults** ([`FaultSpec::Channel`]) — probabilistic per-message
//!   drop, duplication, reordering, or payload corruption on matching
//!   channels ([`ChannelEffect`]).
//! - **Clock faults** ([`FaultSpec::Clock`]) — drift spikes, resets,
//!   freezes, and ε-sync loss on the physical clock hardware
//!   ([`ClockFaultKind`]).
//!
//! Faults are scheduled by a serializable [`FaultScript`] — written
//! explicitly with [`FaultScript::with`] or generated from a seed with
//! [`FaultScript::generate`] — and the whole faulted run remains a pure
//! function of `(actors, network, script, seed)`: the same inputs replay
//! byte-for-byte. An installed-but-empty script is observationally
//! invisible (bit-identical traces to a run with no plane at all).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use psn_sim::fault::{
    ChannelEffect, ChannelFaultRule, ChaosConfig, ClockFaultKind, CutPolicy, FaultEvent,
    FaultRecordKind, FaultScript, FaultSpec, FaultStats, ScriptedFault,
};

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::time::{SimDuration, SimTime};

    #[test]
    fn reexports_are_the_sim_types() {
        let script: psn_sim::fault::FaultScript = FaultScript::new().with(
            SimTime::from_secs(1),
            FaultSpec::Crash { actor: 0, recover_after: Some(SimDuration::from_secs(2)) },
        );
        assert!(!script.is_empty());
    }

    #[test]
    fn generated_scripts_are_deterministic() {
        let cfg = ChaosConfig::new(vec![0, 1, 2, 3], SimTime::from_secs(100));
        let a = FaultScript::generate(&cfg, 7);
        let b = FaultScript::generate(&cfg, 7);
        assert_eq!(a, b, "same (cfg, seed) ⇒ same script");
        assert!(!a.is_empty());
        let c = FaultScript::generate(&cfg, 8);
        assert_ne!(a, c, "different seed ⇒ different script");
    }
}
