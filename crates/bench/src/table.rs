//! Minimal result tables: markdown for humans, CSV for plotting.

use serde::{Deserialize, Serialize};

/// One experiment output table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id + claim, e.g. "E2 — strobe accuracy vs Δ".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (the paper claim and the
    /// verdict).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as github-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("### {}\n\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let body = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ");
            format!("| {body} |\n")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push_str(&format!(
            "|{}|\n",
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }

    /// Render as CSV (headers + rows; title/notes omitted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = self.headers.iter().map(esc).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("E0 — demo", &["x", "value"]);
        t.row(vec!["1".into(), "short".into()]);
        t.row(vec!["2".into(), "a longer cell".into()]);
        t.note("shape holds");
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a longer cell |"));
        assert!(md.contains("> shape holds"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
