//! JSONL metrics sink for the experiment runner.
//!
//! `experiments --metrics-out <path>` opens a process-wide sink here; each
//! instrumented experiment cell then calls [`emit_cell`] with the
//! [`MetricsSnapshot`] of its run, producing **one JSON line per cell**.
//! The `cell` field is a structured object carrying the human-readable
//! label plus the sweep cell's parameters and seed, so downstream tools
//! can group and join lines without parsing labels:
//!
//! ```json
//! {"experiment":"e7","cell":{"label":"n=4","n":4,"seed":42},"metrics":{"counters":[...],...}}
//! ```
//!
//! When no sink is set (the default, and always in `cargo test`), the whole
//! module is inert: [`is_enabled`] is `false`, experiments run with a
//! disabled [`psn_sim::metrics::Metrics`] registry, and [`emit_cell`] is a
//! no-op — so the flag adds zero cost and zero output when absent.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

use psn_sim::metrics::MetricsSnapshot;
use serde::{Serialize, Value};

/// The sink plus a reusable line buffer: the JSON text of each record is
/// rendered into `line` (whose capacity persists across cells), streamed
/// into the `BufWriter`, and flushed **once per cell** — a cell is the
/// atomic output unit, so readers tailing the file never see a torn line,
/// while the snapshot's many counters/gauges/timers still hit the `File`
/// in one buffered write rather than many small ones.
struct Sink {
    writer: BufWriter<File>,
    line: String,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Open `path` (truncating) as the process-wide metrics sink.
pub fn set_metrics_out(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("metrics sink lock") =
        Some(Sink { writer: BufWriter::new(file), line: String::new() });
    Ok(())
}

/// Is a sink open? Experiments use this to decide whether to pay for a
/// live [`psn_sim::metrics::Metrics`] registry.
pub fn is_enabled() -> bool {
    SINK.lock().expect("metrics sink lock").is_some()
}

/// Build the structured `cell` object for [`emit_cell`]: the label plus
/// each `(name, value)` sweep parameter (the run's seed belongs here too).
pub fn cell_object(label: &str, params: &[(&str, Value)]) -> Value {
    let mut map = Vec::with_capacity(params.len() + 1);
    map.push(("label".to_string(), Value::Str(label.to_string())));
    map.extend(params.iter().map(|(k, v)| (k.to_string(), v.clone())));
    Value::Map(map)
}

/// Append one JSONL record for (`experiment`, `cell`). Build `cell` with
/// [`cell_object`]. No-op without a sink.
pub fn emit_cell(experiment: &str, cell: Value, metrics: &MetricsSnapshot) {
    let mut guard = SINK.lock().expect("metrics sink lock");
    if let Some(sink) = guard.as_mut() {
        // Assemble the record as a borrowing Value tree — no snapshot
        // clone; `to_value` converts the snapshot directly.
        let record = Value::Map(vec![
            ("experiment".to_string(), Value::Str(experiment.to_string())),
            ("cell".to_string(), cell),
            ("metrics".to_string(), metrics.to_value()),
        ]);
        sink.line.clear();
        serde_json::write_value_to(&record, &mut sink.line);
        sink.line.push('\n');
        if let Err(e) =
            sink.writer.write_all(sink.line.as_bytes()).and_then(|()| sink.writer.flush())
        {
            eprintln!("metrics-out: write failed: {e}");
        }
    }
}

/// Flush and close the sink (end of the runner's main loop).
pub fn finish() {
    let mut guard = SINK.lock().expect("metrics sink lock");
    if let Some(mut sink) = guard.take() {
        if let Err(e) = sink.writer.flush() {
            eprintln!("metrics-out: flush failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::metrics::Metrics;

    #[test]
    fn disabled_sink_is_inert_and_enabled_sink_writes_jsonl() {
        // Single test covering both states: the sink is process-global, so
        // ordering within one test avoids cross-test interference.
        assert!(!is_enabled());
        let m = Metrics::new();
        m.counter("x.bytes").add(7);
        let cell1 = || cell_object("n=1", &[("n", Value::UInt(1)), ("seed", Value::UInt(42))]);
        emit_cell("e0", cell1(), &m.snapshot()); // no-op

        let path = std::env::temp_dir().join("psn_metrics_out_test.jsonl");
        let path = path.to_str().expect("utf-8 temp path");
        set_metrics_out(path).expect("open sink");
        assert!(is_enabled());
        emit_cell("e0", cell1(), &m.snapshot());
        emit_cell("e0", cell_object("n=2", &[("n", Value::UInt(2))]), &m.snapshot());
        finish();
        assert!(!is_enabled());

        let text = std::fs::read_to_string(path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one JSON line per cell");
        assert!(lines[0].contains("\"experiment\":\"e0\""));
        assert!(lines[0].contains("\"cell\":{\"label\":\"n=1\",\"n\":1,\"seed\":42}"));
        assert!(lines[0].contains("x.bytes"));
        std::fs::remove_file(path).ok();
    }
}
