//! JSONL telemetry sink for the experiment runners.
//!
//! `--telemetry-out <path>` (on `experiments`, `chaos`, and `baseline`)
//! opens a process-wide sink here; each instrumented cell then calls
//! [`emit_cell`] with both the [`MetricsSnapshot`] and the
//! [`TelemetrySnapshot`] of its run, producing **one JSON line per cell**:
//!
//! ```json
//! {"experiment":"e14","cell":{"label":"n=64 shards=4","shards":4,...},
//!  "metrics":{"counters":[...]},"telemetry":{"shards":[...],...}}
//! ```
//!
//! The format is what `psn-profile` consumes (`psn-profile <path>` for the
//! phase-attribution report, `psn-profile --check <path>` for schema
//! validation). Like [`crate::metrics_out`], the module is fully inert
//! when no sink is set: [`is_enabled`] is `false`, runs use disabled
//! registries, and [`emit_cell`] is a no-op.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

use psn_sim::metrics::MetricsSnapshot;
use psn_sim::telemetry::TelemetrySnapshot;
use serde::{Serialize, Value};

/// Sink with a reusable line buffer; a cell is the atomic output unit
/// (rendered, written, flushed as one line) so tailing readers never see
/// a torn record.
struct Sink {
    writer: BufWriter<File>,
    line: String,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Open `path` (truncating) as the process-wide telemetry sink.
pub fn set_telemetry_out(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("telemetry sink lock") =
        Some(Sink { writer: BufWriter::new(file), line: String::new() });
    Ok(())
}

/// Is a sink open? Experiments use this to decide whether to attach a
/// live [`psn_sim::telemetry::Telemetry`] registry to their runs.
pub fn is_enabled() -> bool {
    SINK.lock().expect("telemetry sink lock").is_some()
}

/// Append one JSONL record for (`experiment`, `cell`). Build `cell` with
/// [`crate::metrics_out::cell_object`]. No-op without a sink.
pub fn emit_cell(
    experiment: &str,
    cell: Value,
    metrics: &MetricsSnapshot,
    telemetry: &TelemetrySnapshot,
) {
    let mut guard = SINK.lock().expect("telemetry sink lock");
    if let Some(sink) = guard.as_mut() {
        let record = Value::Map(vec![
            ("experiment".to_string(), Value::Str(experiment.to_string())),
            ("cell".to_string(), cell),
            ("metrics".to_string(), metrics.to_value()),
            ("telemetry".to_string(), telemetry.to_value()),
        ]);
        sink.line.clear();
        serde_json::write_value_to(&record, &mut sink.line);
        sink.line.push('\n');
        if let Err(e) =
            sink.writer.write_all(sink.line.as_bytes()).and_then(|()| sink.writer.flush())
        {
            eprintln!("telemetry-out: write failed: {e}");
        }
    }
}

/// Flush and close the sink (end of the runner's main loop).
pub fn finish() {
    let mut guard = SINK.lock().expect("telemetry sink lock");
    if let Some(mut sink) = guard.take() {
        if let Err(e) = sink.writer.flush() {
            eprintln!("telemetry-out: flush failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics_out::cell_object;
    use psn_sim::metrics::Metrics;
    use psn_sim::telemetry::{Phase, Telemetry};

    #[test]
    fn disabled_sink_is_inert_and_enabled_sink_writes_jsonl() {
        assert!(!is_enabled());
        let m = Metrics::new();
        m.counter("engine.events").add(9);
        let t = Telemetry::new();
        t.shard(0).record_ns(Phase::Busy, 123);
        t.record_run_wall(456);
        let cell = || cell_object("shards=2", &[("shards", Value::UInt(2))]);
        emit_cell("e14", cell(), &m.snapshot(), &t.snapshot()); // no-op

        let path = std::env::temp_dir().join("psn_telemetry_out_test.jsonl");
        let path = path.to_str().expect("utf-8 temp path");
        set_telemetry_out(path).expect("open sink");
        assert!(is_enabled());
        emit_cell("e14", cell(), &m.snapshot(), &t.snapshot());
        finish();
        assert!(!is_enabled());

        let text = std::fs::read_to_string(path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "one JSON line per cell");
        assert!(lines[0].contains("\"experiment\":\"e14\""));
        assert!(lines[0].contains("\"telemetry\":"));
        assert!(lines[0].contains("\"run_wall_ns\":456"));
        assert!(lines[0].contains("\"phase\":\"busy\""));
        // The record round-trips through the typed snapshot structs.
        std::fs::remove_file(path).ok();
    }
}
