//! `psn-profile` — phase-attribution reports from `--telemetry-out` dumps.
//!
//! ```sh
//! psn-profile <dump.jsonl>            # human-readable report, one section per cell
//! psn-profile --check <dump.jsonl>    # schema + sanity validation, exit nonzero on failure
//! ```
//!
//! The input is the JSONL format written by the `--telemetry-out` flag of
//! `experiments`, `chaos`, and `baseline` (one record per cell, carrying a
//! `MetricsSnapshot` and a `TelemetrySnapshot`). For each cell the report
//! answers the questions the telemetry plane exists for:
//!
//! - **top time sinks** — every shard's phase breakdown, sorted by cost,
//!   with its share of the shard's accounted time;
//! - **barrier-wait share** — what fraction of all shard time was spent
//!   blocked on the coordinator, against the shard count (the strong-
//!   scaling ceiling in one number);
//! - **rollback cost** — optimistic-mode time spent rolling back and
//!   re-running lanes, per `engine.rollbacks` lane re-run;
//! - **ring pressure** — exchange-ring high-water marks per shard next to
//!   the `engine.ring_spills` overflow count (capacity headroom);
//! - **attribution** — how much of the measured run wall the per-shard
//!   phase spans cover (the instrumentation's own completeness check;
//!   ≥95% on a healthy sharded run).
//!
//! `--check` validates every record machine-readably: it must parse, name
//! only known phases, carry an enabled registry with at least one run, and
//! keep per-shard attribution within physical bounds (no shard accounts
//! more span time than 110% of total run wall).

use std::io::Read;

use psn_sim::metrics::MetricsSnapshot;
use psn_sim::telemetry::{Phase, TelemetrySnapshot};
use serde::{Deserialize, Value};

/// One parsed JSONL record.
struct Record {
    experiment: String,
    label: String,
    metrics: MetricsSnapshot,
    telemetry: TelemetrySnapshot,
}

fn parse_record(line_no: usize, line: &str) -> Result<Record, String> {
    let v: Value =
        serde_json::from_str(line).map_err(|e| format!("line {line_no}: not valid JSON: {e}"))?;
    let experiment = v
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing \"experiment\""))?
        .to_string();
    let label = v
        .get("cell")
        .and_then(|c| c.get("label"))
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string();
    let metrics =
        v.get("metrics").ok_or_else(|| format!("line {line_no}: missing \"metrics\"")).and_then(
            |m| MetricsSnapshot::from_value(m).map_err(|e| format!("line {line_no}: metrics: {e}")),
        )?;
    let telemetry = v
        .get("telemetry")
        .ok_or_else(|| format!("line {line_no}: missing \"telemetry\""))
        .and_then(|t| {
            TelemetrySnapshot::from_value(t).map_err(|e| format!("line {line_no}: telemetry: {e}"))
        })?;
    Ok(Record { experiment, label, metrics, telemetry })
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// Fraction of the run wall covered by the instrumentation: the mean
/// per-shard phase sum (each worker loop is wrapped end to end —
/// barrier-wait → busy → ring-exchange — so every active shard
/// individually accounts for the parallel section) plus the coordinator's
/// busy spans (the serial split/merge sections, which never overlap the
/// shards' accounting). ≥95% on a healthy run.
fn attribution_pct(t: &TelemetrySnapshot) -> f64 {
    let active: Vec<u64> = t
        .shards
        .iter()
        .map(|s| s.phases.iter().map(|p| p.ns).sum::<u64>())
        .filter(|&sum| sum > 0)
        .collect();
    if active.is_empty() || t.run_wall_ns == 0 {
        return 0.0;
    }
    let mean = active.iter().sum::<u64>() as f64 / active.len() as f64;
    let serial = t.coordinator_ns(Phase::Busy) as f64;
    ((mean + serial) / t.run_wall_ns as f64) * 100.0
}

fn report(records: &[Record]) {
    for r in records {
        let t = &r.telemetry;
        println!("=== {} — {} ===", r.experiment, r.label);
        println!("run wall: {:.1} ms across {} run(s)", ms(t.run_wall_ns), t.runs);
        let mut active_shards = 0usize;
        for s in &t.shards {
            let total: u64 = s.phases.iter().map(|p| p.ns).sum();
            if total == 0 {
                continue;
            }
            active_shards += 1;
            let mut phases: Vec<_> = s.phases.iter().filter(|p| p.count > 0).collect();
            phases.sort_by_key(|p| std::cmp::Reverse(p.ns));
            let line: Vec<String> = phases
                .iter()
                .map(|p| {
                    format!(
                        "{} {:.1} ms ({:.1}%, {} spans)",
                        p.phase,
                        ms(p.ns),
                        pct(p.ns, total),
                        p.count
                    )
                })
                .collect();
            println!("shard {}: {:.1} ms — {}", s.shard, ms(total), line.join(", "));
        }
        let total_shard: u64 = t.total_shard_ns();
        let barrier: u64 = t
            .shards
            .iter()
            .map(|s| {
                s.phases.iter().find(|p| p.phase == Phase::BarrierWait.name()).map_or(0, |p| p.ns)
            })
            .sum();
        println!(
            "barrier-wait share: {:.1}% of shard time ({} active shard(s))",
            pct(barrier, total_shard),
            active_shards
        );
        let coord: Vec<String> = t
            .coordinator
            .iter()
            .filter(|p| p.count > 0)
            .map(|p| format!("{} {:.1} ms ({} spans)", p.phase, ms(p.ns), p.count))
            .collect();
        if !coord.is_empty() {
            println!("coordinator: {}", coord.join(", "));
        }
        let rollbacks = r.metrics.counter("engine.rollbacks").unwrap_or(0);
        let rollback_ns = t.coordinator_ns(Phase::Rollback) + t.coordinator_ns(Phase::Redo);
        if rollbacks > 0 {
            println!(
                "rollback cost: {:.1} ms over {} lane re-run(s) = {:.2} ms each",
                ms(rollback_ns),
                rollbacks,
                ms(rollback_ns) / rollbacks as f64
            );
        }
        let spills = r.metrics.counter("engine.ring_spills").unwrap_or(0);
        let high_water: Vec<String> = t
            .shards
            .iter()
            .filter(|s| s.ring_high_water > 0)
            .map(|s| format!("shard {} hw {}", s.shard, s.ring_high_water))
            .collect();
        if !high_water.is_empty() || spills > 0 {
            println!(
                "ring pressure: {} — engine.ring_spills = {spills}",
                if high_water.is_empty() {
                    "no ring traffic".to_string()
                } else {
                    high_water.join(", ")
                }
            );
        }
        let windows = r.metrics.counter("engine.windows").unwrap_or(0);
        let op_barriers = r.metrics.counter("engine.op_barriers").unwrap_or(0);
        println!("barriers: {windows} lookahead window(s) + {op_barriers} fault-op sub-barrier(s)");
        println!("attribution: {:.1}% of run wall covered by per-shard phases", attribution_pct(t));
        println!();
    }
}

/// Validate every record; returns the error list (empty = clean).
fn check(records: &[Record]) -> Vec<String> {
    let known: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    let mut errors = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let t = &r.telemetry;
        let at = format!("record {} ({} — {})", i + 1, r.experiment, r.label);
        if !t.enabled {
            errors.push(format!("{at}: telemetry registry was not enabled"));
        }
        if t.runs == 0 {
            errors.push(format!("{at}: zero engine runs recorded"));
        }
        if t.run_wall_ns == 0 {
            errors.push(format!("{at}: zero run wall time"));
        }
        for s in t.shards.iter() {
            for p in &s.phases {
                if !known.contains(&p.phase.as_str()) {
                    errors.push(format!("{at}: shard {} has unknown phase {:?}", s.shard, p.phase));
                }
                let bucket_total: u64 = p.buckets.iter().map(|b| b.count).sum();
                if bucket_total != p.count {
                    errors.push(format!(
                        "{at}: shard {} phase {} histogram counts {} spans but count is {}",
                        s.shard, p.phase, bucket_total, p.count
                    ));
                }
            }
            let sum: u64 = s.phases.iter().map(|p| p.ns).sum();
            // A single shard cannot account for more span time than the
            // whole run took (10% slack for clock jitter on tiny runs).
            if sum as f64 > t.run_wall_ns as f64 * 1.1 {
                errors.push(format!(
                    "{at}: shard {} accounts {:.1} ms but the run wall is only {:.1} ms",
                    s.shard,
                    ms(sum),
                    ms(t.run_wall_ns)
                ));
            }
        }
        for p in t.coordinator.iter() {
            if !known.contains(&p.phase.as_str()) {
                errors.push(format!("{at}: coordinator has unknown phase {:?}", p.phase));
            }
        }
        if r.metrics.counter("engine.events_processed").is_none() {
            errors.push(format!("{at}: metrics snapshot lacks engine.events_processed"));
        }
    }
    errors
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let checking = args.iter().any(|a| a == "--check");
    let path = args.iter().find(|a| !a.starts_with("--"));
    if args.iter().any(|a| a == "--help" || a == "-h") || path.is_none() {
        eprintln!("usage: psn-profile [--check] <telemetry-dump.jsonl>   (use - for stdin)");
        std::process::exit(if path.is_none() && !args.iter().any(|a| a == "--help" || a == "-h") {
            2
        } else {
            0
        });
    }
    let path = path.expect("checked above");
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("psn-profile: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let mut records = Vec::new();
    let mut parse_errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(i + 1, line) {
            Ok(r) => records.push(r),
            Err(e) => parse_errors.push(e),
        }
    }
    if records.is_empty() && parse_errors.is_empty() {
        eprintln!("psn-profile: {path}: no records");
        std::process::exit(1);
    }
    if checking {
        let mut errors = parse_errors;
        errors.extend(check(&records));
        if errors.is_empty() {
            println!("ok: {} record(s) valid", records.len());
        } else {
            for e in &errors {
                eprintln!("psn-profile: {e}");
            }
            eprintln!("psn-profile: {} problem(s) in {path}", errors.len());
            std::process::exit(1);
        }
    } else {
        for e in &parse_errors {
            eprintln!("psn-profile: {e}");
        }
        report(&records);
        if !parse_errors.is_empty() {
            std::process::exit(1);
        }
    }
}
