//! `psn-script` — parse, type-check, and run `.psn` scenario programs.
//!
//! The front door to the scenario language (`psn-lang`): each file on
//! the command line is compiled into a world + execution config +
//! predicates and, unless `--check` is given, run end-to-end through the
//! engine. Per-predicate detections are scored against ground truth and
//! the usual output sinks are available (`--metrics-out`,
//! `--telemetry-out`, `--trace-out`).
//!
//! ```sh
//! cargo run --release -p psn-bench --bin psn-script -- scenarios/exhibition.psn
//! cargo run --release -p psn-bench --bin psn-script -- --check scenarios/*.psn
//! cargo run --release -p psn-bench --bin psn-script -- scenarios/office.psn \
//!     --shards 4 --shard-plan affinity --optimistic --telemetry-out tel.jsonl
//! ```
//!
//! `--check` parses and type-checks without running (a pre-commit lint);
//! diagnostics render compiler-style with the offending line and a caret
//! under the span:
//!
//! ```text
//! error: unknown exhibition field `dors` (known: doors, arrival_rate_hz, …)
//!  --> bad.psn:3:25
//!   |
//! 3 |     world exhibition { dors 3 }
//!   |                        ^^^^
//! ```

use psn_bench::metrics_out::{self, cell_object};
use psn_bench::{telemetry_out, trace_out};
use psn_core::{run_execution_profiled, ShardPlanKind, SpeculationMode};
use psn_lang::{compile, render, CompiledScenario};
use psn_predicates::{
    detect_occurrences, modal_status, score, stream_packing, BorderlinePolicy, StreamingModal,
};
use psn_sim::metrics::Metrics;
use psn_sim::telemetry::Telemetry;
use psn_sim::time::SimDuration;
use psn_world::truth_intervals;
use serde::Value;

const USAGE: &str = "usage: psn-script [--check] [--stream] FILE.psn... \
    [--shards K] [--shard-plan contiguous|interleaved|hash|affinity] [--optimistic] \
    [--metrics-out <path.jsonl>] [--telemetry-out <path.jsonl>] \
    [--trace-out <dir>] [--trace-format chrome|jsonl]\n\
    --check parses and type-checks without running.\n\
    --stream also scores each predicate through the streaming detector \
    (bounded hold-back, Δ-bound GC) and reports its memory high-water.";

/// Live-window depth assumed by the `--check` packing diagnostic: how many
/// un-retired events per involved process the streaming detector is sized
/// for when deciding between the packed-`u64` cut encoding and the hash
/// frontier fallback.
const CHECK_WINDOW_DEPTH: usize = 15;

struct Options {
    check: bool,
    stream: bool,
    files: Vec<String>,
    shards: Option<usize>,
    plan: Option<ShardPlanKind>,
    optimistic: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        std::process::exit(0);
    }
    let mut opts = Options {
        check: false,
        stream: false,
        files: Vec::new(),
        shards: None,
        plan: None,
        optimistic: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--check" => opts.check = true,
            "--stream" => opts.stream = true,
            "--optimistic" => opts.optimistic = true,
            "--shards" => {
                let v = value(&args, &mut i, "--shards");
                opts.shards = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --shards {v}");
                    std::process::exit(2);
                }));
            }
            "--shard-plan" => {
                let v = value(&args, &mut i, "--shard-plan");
                opts.plan = Some(psn_bench::common::parse_shard_plan(&v).unwrap_or_else(|| {
                    eprintln!(
                        "unknown --shard-plan {v} (known: contiguous, interleaved, roundrobin, \
                         hash, affinity)"
                    );
                    std::process::exit(2);
                }));
            }
            "--metrics-out" => {
                let v = value(&args, &mut i, "--metrics-out");
                if let Err(e) = metrics_out::set_metrics_out(&v) {
                    eprintln!("cannot open --metrics-out {v}: {e}");
                    std::process::exit(2);
                }
            }
            "--telemetry-out" => {
                let v = value(&args, &mut i, "--telemetry-out");
                if let Err(e) = telemetry_out::set_telemetry_out(&v) {
                    eprintln!("cannot open --telemetry-out {v}: {e}");
                    std::process::exit(2);
                }
            }
            "--trace-out" => {
                let v = value(&args, &mut i, "--trace-out");
                let format = args
                    .iter()
                    .position(|a| a == "--trace-format")
                    .and_then(|p| args.get(p + 1))
                    .map(|f| {
                        trace_out::TraceFormat::parse(f).unwrap_or_else(|| {
                            eprintln!("unknown --trace-format {f} (known: chrome, jsonl)");
                            std::process::exit(2);
                        })
                    })
                    .unwrap_or(trace_out::TraceFormat::Jsonl);
                if let Err(e) = trace_out::set_trace_out(&v, format) {
                    eprintln!("cannot open --trace-out {v}: {e}");
                    std::process::exit(2);
                }
            }
            "--trace-format" => {
                i += 1; // consumed together with --trace-out
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                std::process::exit(2);
            }
            file => opts.files.push(file.to_string()),
        }
        i += 1;
    }
    if opts.files.is_empty() {
        eprintln!("no .psn files given\n{USAGE}");
        std::process::exit(2);
    }
    opts
}

/// Compile one file, rendering diagnostics on failure.
fn compile_file(path: &str) -> Result<CompiledScenario, ()> {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return Err(());
        }
    };
    match compile(&source) {
        Ok(c) => Ok(c),
        Err(diags) => {
            eprint!("{}", render(&source, path, &diags));
            Err(())
        }
    }
}

fn run_file(path: &str, opts: &Options) -> Result<(), ()> {
    let mut compiled = compile_file(path)?;
    if let Some(shards) = opts.shards {
        compiled.config.shards = shards;
    }
    if let Some(plan) = opts.plan {
        compiled.config.shard_plan = Some(plan);
    }
    if opts.optimistic {
        compiled.config.speculation = Some(SpeculationMode::Optimistic);
    }

    let metrics = Metrics::new();
    let telemetry = Telemetry::new();
    let trace = run_execution_profiled(&compiled.scenario, &compiled.config, &metrics, &telemetry);
    let horizon = trace.ended_at;
    println!(
        "{path}: scenario \"{}\" seed {} n={} shards={} — {} world events, {} sent / {} delivered / {} lost, ended at {:?}",
        compiled.name,
        compiled.seed,
        compiled.scenario.num_processes(),
        compiled.config.shards,
        compiled.scenario.timeline.len(),
        trace.net.messages_sent,
        trace.net.messages_delivered,
        trace.net.messages_lost,
        horizon,
    );

    let initial = compiled.scenario.timeline.initial_state();
    for p in &compiled.predicates {
        let detections = detect_occurrences(&trace, &p.predicate, &initial, compiled.discipline);
        let truth = truth_intervals(&compiled.scenario.timeline, |s| p.predicate.eval_state(s));
        let report = score(
            &detections,
            &truth,
            horizon,
            SimDuration::from_secs(1),
            BorderlinePolicy::AsPositive,
        );
        println!(
            "  predicate \"{}\" [{}]: {} truth / {} detected ({} borderline) — \
             precision {:.3} recall {:.3}",
            p.name,
            compiled.discipline.label(),
            truth.len(),
            detections.len(),
            report.borderline,
            report.precision(),
            report.recall(),
        );

        if opts.stream {
            // Hold reports back for one worst-case delay so strobe keys
            // release in order; an unbounded delay model falls back to the
            // sealed-trace adapter (hold everything, sort at the seal).
            let hold_back = compiled.config.delay.delta_bound().unwrap_or(SimDuration::MAX);
            let mut sm = StreamingModal::new(&p.predicate, &initial, trace.n, hold_back);
            for r in &trace.log.reports {
                sm.offer(r);
            }
            let high = sm.mem_high_water_cuts();
            let width = sm.frontier_width();
            let late = sm.late_reports();
            let streamed = sm.seal();
            let offline = modal_status(&trace, &p.predicate, &initial);
            let agree = streamed == offline;
            println!(
                "    stream: possibly {} definitely {} holding_now {} — \
                 mem_high_water_cuts {high} frontier_width {width} late {late} — \
                 {} offline sweep",
                streamed.possibly,
                streamed.definitely,
                streamed.holding_now,
                if agree { "matches" } else { "DIVERGES from" },
            );
            if !agree && late == 0 {
                eprintln!(
                    "{path}: predicate \"{}\": streaming verdict diverged from the \
                     offline sweep with no late reports — this is a detector bug",
                    p.name,
                );
                return Err(());
            }
        }
    }

    let cell = cell_object(
        &compiled.name,
        &[
            ("file", Value::Str(path.to_string())),
            ("seed", Value::UInt(compiled.seed)),
            ("shards", Value::UInt(compiled.config.shards as u64)),
        ],
    );
    if metrics_out::is_enabled() {
        metrics_out::emit_cell("psn-script", cell.clone(), &metrics.snapshot());
    }
    if telemetry_out::is_enabled() {
        telemetry_out::emit_cell("psn-script", cell, &metrics.snapshot(), &telemetry.snapshot());
    }
    if trace_out::is_enabled() {
        trace_out::emit_cell_trace("psn-script", &compiled.name, &trace.sim, trace.n);
    }
    Ok(())
}

fn main() {
    let opts = parse_args();
    let mut failures = 0usize;
    for path in &opts.files {
        let outcome = if opts.check {
            compile_file(path).map(|c| {
                println!(
                    "{path}: ok — scenario \"{}\", {} processes, {} predicate(s), {} world events",
                    c.name,
                    c.scenario.num_processes(),
                    c.predicates.len(),
                    c.scenario.timeline.len(),
                );
                for p in &c.predicates {
                    let (involved, fits) = stream_packing(&p.predicate, CHECK_WINDOW_DEPTH);
                    if !fits {
                        eprintln!(
                            "{path}: warning: predicate \"{}\" spans {involved} processes — a \
                             {CHECK_WINDOW_DEPTH}-deep live window exceeds the packed 64-bit cut \
                             encoding, so the streaming detector will use the slower hash-set \
                             frontier fallback",
                            p.name,
                        );
                    }
                }
            })
        } else {
            run_file(path, &opts)
        };
        if outcome.is_err() {
            failures += 1;
        }
    }
    metrics_out::finish();
    telemetry_out::finish();
    trace_out::finish();
    if failures > 0 {
        eprintln!("psn-script: {failures}/{} file(s) failed", opts.files.len());
        std::process::exit(1);
    }
}
