//! Chaos soak: seeded, generated fault scripts against a live execution,
//! with system invariants checked on every run.
//!
//! For each seed a [`FaultScript::generate`] schedule (crashes with and
//! without recovery, partitions with drop/park policies, channel
//! drop/duplicate/reorder/corrupt rules, clock faults) is installed over
//! the exhibition scenario, and the run must satisfy:
//!
//! 1. **Determinism** — re-running the same `(scenario, script, seed)`
//!    reproduces the structured trace, net stats, fault stats, and end
//!    time bit for bit.
//! 2. **Message conservation** — every transmission is accounted for:
//!    `sent == delivered + lost + parked_leftover` (duplicates count as
//!    sent; all fault-plane removals count as lost).
//! 3. **Detection confinement** — every non-borderline detection that
//!    matches no ground-truth occurrence lies in the temporal vicinity of
//!    an injected fault or a lost message (the E9/E11–E13 locality
//!    claims, enforced as an invariant instead of a table).
//!
//! Any violation prints the offending seed and the process exits
//! non-zero, so the same binary serves as a CI smoke job (`--quick
//! --seeds 3`) and a longer soak (default 20 seeds).
//!
//! ```sh
//! cargo run --release -p psn-bench --bin chaos                # 20 seeds
//! cargo run --release -p psn-bench --bin chaos -- --seeds 50
//! cargo run --release -p psn-bench --bin chaos -- --quick --seeds 3
//! cargo run --release -p psn-bench --bin chaos -- --quick --seeds 3 --shards 4
//! cargo run --release -p psn-bench --bin chaos -- --quick --seeds 3 --shards 4 \
//!     --optimistic --shard-plan affinity
//! ```
//!
//! With `--shards N` the primary run executes on the sharded engine while
//! the replay leg stays sequential, so invariant 1 sharpens into a
//! sharded-vs-sequential bit-equivalence check under live fault scripts.
//! Sharding needs lookahead, so this mode swaps the pure Δ-bounded delay
//! (minimum 0) for a `[50 ms, 300 ms]` band — same Δ ceiling, nonzero
//! floor. `--optimistic` additionally runs the primary on the Time Warp
//! path and `--shard-plan NAME` picks the actor→shard map; the replay leg
//! always stays sequential-conservative, so the same invariant then proves
//! speculation and planning bit-identical under live fault scripts.

use psn_bench::metrics_out::cell_object;
use psn_bench::telemetry_out;
use psn_core::{
    run_execution, run_execution_profiled, ExecutionConfig, ExecutionTrace, ShardPlanKind,
    SpeculationMode,
};
use psn_predicates::{detect_occurrences, detection_matches, Discipline, Predicate};
use psn_sim::fault::{ChaosConfig, FaultScript};
use psn_sim::metrics::Metrics;
use psn_sim::telemetry::Telemetry;
use psn_sim::time::{SimDuration, SimTime};
use psn_sim::trace_analysis::TraceAnalysis;
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;
use serde::Value;

fn params(quick: bool) -> ExhibitionParams {
    ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(20),
        duration: SimTime::from_secs(if quick { 300 } else { 600 }),
        capacity: 60,
    }
}

fn run_seed(
    seed: u64,
    quick: bool,
    shards: usize,
    plan: ShardPlanKind,
    optimistic: bool,
) -> Result<String, String> {
    let params = params(quick);
    let scenario = exhibition::generate(&params, 9100 + seed);
    let pred = Predicate::occupancy_over(params.doors, params.capacity);
    let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
    let script = FaultScript::generate(
        &ChaosConfig::new((0..params.doors).collect(), params.duration),
        seed,
    );
    let n_faults = script.faults.len();
    let delay = if shards > 1 {
        // Sharded mode needs a nonzero minimum delay (lookahead).
        psn_sim::delay::DelayModel::DeltaBounded {
            min: SimDuration::from_millis(50),
            max: SimDuration::from_millis(300),
        }
    } else {
        psn_sim::delay::DelayModel::delta(SimDuration::from_millis(300))
    };
    let speculation =
        if optimistic { SpeculationMode::Optimistic } else { SpeculationMode::Conservative };
    let cfg = ExecutionConfig {
        delay,
        seed,
        record_sim_trace: true,
        faults: Some(script),
        shards,
        shard_plan: Some(plan),
        speculation: Some(speculation),
        ..Default::default()
    };
    // With a --telemetry-out sink open the primary run is profiled and one
    // JSONL record is emitted per seed; otherwise this is run_execution.
    let trace: ExecutionTrace = if telemetry_out::is_enabled() {
        let metrics = Metrics::new();
        let telemetry = Telemetry::new();
        let trace = run_execution_profiled(&scenario, &cfg, &metrics, &telemetry);
        telemetry_out::emit_cell(
            "chaos",
            cell_object(
                &format!("seed={seed} shards={shards}"),
                &[
                    ("seed", Value::UInt(seed)),
                    ("shards", Value::UInt(shards as u64)),
                    ("optimistic", Value::Bool(optimistic)),
                ],
            ),
            &metrics.snapshot(),
            &telemetry.snapshot(),
        );
        trace
    } else {
        run_execution(&scenario, &cfg)
    };

    // 1. Determinism: same (scenario, script, seed) ⇒ identical run. When
    // the primary run is sharded (and possibly optimistic), the replay runs
    // sequentially-conservatively — the same invariant then proves the
    // sharded/speculative engine bit-identical to the sequential one under
    // this fault script.
    let replay_cfg =
        ExecutionConfig { shards: 1, shard_plan: None, speculation: None, ..cfg.clone() };
    let replay = run_execution(&scenario, &replay_cfg);
    if replay.sim.records() != trace.sim.records() {
        return Err(format!("seed {seed}: replay diverged (structured trace records differ)"));
    }
    if replay.net != trace.net || replay.faults != trace.faults || replay.ended_at != trace.ended_at
    {
        return Err(format!("seed {seed}: replay diverged (stats or end time differ)"));
    }

    // 2. Message conservation. The run quiesces (no heartbeats), so
    // nothing is still in flight at the end; parked messages of a
    // never-healed partition are the only legitimate remainder. World
    // sense events are injected deliveries (they bypass the network and
    // never count as sent), so they join the sent side of the ledger.
    let fs = trace.faults.clone().unwrap_or_default();
    let injected: u64 = scenario
        .timeline
        .events
        .iter()
        .filter(|e| scenario.sensing.process_for(e.key).is_some())
        .count() as u64;
    let accounted = trace.net.messages_delivered + trace.net.messages_lost + fs.parked_leftover;
    if trace.net.messages_sent + injected != accounted {
        return Err(format!(
            "seed {seed}: conservation violated: sent {} + injected {injected} != \
             delivered {} + lost {} + parked {}",
            trace.net.messages_sent,
            trace.net.messages_delivered,
            trace.net.messages_lost,
            fs.parked_leftover,
        ));
    }

    // 3. Detection confinement: a non-borderline detection matching no
    // truth occurrence must sit near an injected fault or a lost message.
    let tol = SimDuration::from_millis(1_000);
    let vicinity = SimDuration::from_secs(15);
    let analysis = TraceAnalysis::build(&trace.sim);
    let det = detect_occurrences(
        &trace,
        &pred,
        &scenario.timeline.initial_state(),
        Discipline::VectorStrobe,
    );
    let mut unexplained = 0usize;
    for d in det.iter().filter(|d| !d.borderline) {
        if detection_matches(d, &truth, params.duration, tol) {
            continue;
        }
        let end = d.end.unwrap_or(trace.ended_at);
        if !analysis.near_any_fault(d.start, end, vicinity)
            && !analysis.near_any_loss(d.start, end, vicinity)
        {
            unexplained += 1;
        }
    }
    if unexplained > 0 {
        return Err(format!(
            "seed {seed}: {unexplained} detection(s) match no truth occurrence and are not \
             near any fault or loss"
        ));
    }

    let spec_note =
        if optimistic { format!(", {} rollbacks", trace.rollbacks) } else { String::new() };
    Ok(format!(
        "seed {seed}: ok — {} faults scripted (crashes {} recoveries {} cuts {} heals {} \
         clock {}), {} msgs ({} lost, {} corrupted, {} duplicated, {} reordered, {} parked), \
         {} detections / {} truth{spec_note}",
        n_faults,
        fs.crashes,
        fs.recoveries,
        fs.cuts,
        fs.heals,
        fs.clock_faults,
        trace.net.messages_sent,
        trace.net.messages_lost,
        fs.corrupted,
        fs.duplicated,
        fs.reordered,
        fs.parked,
        det.len(),
        truth.len(),
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let plan: ShardPlanKind = args
        .iter()
        .position(|a| a == "--shard-plan")
        .and_then(|p| args.get(p + 1))
        .map(|name| match psn_bench::common::parse_shard_plan(name) {
            Some(kind) => kind,
            None => {
                eprintln!(
                    "unknown --shard-plan {name} (known: contiguous, interleaved, \
                     roundrobin, hash, affinity)"
                );
                std::process::exit(1);
            }
        })
        .unwrap_or(ShardPlanKind::Contiguous);
    let optimistic = args.iter().any(|a| a == "--optimistic");
    let telemetry_path: Option<&String> =
        args.iter().position(|a| a == "--telemetry-out").and_then(|p| args.get(p + 1));
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: chaos [--seeds N] [--quick] [--shards K] [--shard-plan NAME] \
             [--optimistic] [--telemetry-out <path.jsonl>]"
        );
        return;
    }
    if let Some(path) = telemetry_path {
        if let Err(e) = telemetry_out::set_telemetry_out(path) {
            eprintln!("cannot open --telemetry-out {path}: {e}");
            std::process::exit(1);
        }
    }
    if shards > 1 {
        let mode = if optimistic { "optimistic" } else { "conservative" };
        println!(
            "chaos: sharded mode ({shards} shards, {mode}, {plan:?} plan; \
             replay leg runs sequentially)"
        );
    }
    let mut failures = 0u64;
    for seed in 0..seeds {
        match run_seed(seed, quick, shards, plan, optimistic) {
            Ok(line) => println!("{line}"),
            Err(line) => {
                eprintln!("VIOLATION {line}");
                failures += 1;
            }
        }
    }
    telemetry_out::finish();
    if failures > 0 {
        eprintln!("chaos: {failures}/{seeds} seed(s) violated an invariant");
        std::process::exit(1);
    }
    println!("chaos: all {seeds} seeded fault scripts clean");
}
