//! Chaos soak: seeded, generated fault scripts against a live execution,
//! with system invariants checked on every run.
//!
//! For each seed a [`FaultScript::generate`] schedule (crashes with and
//! without recovery, partitions with drop/park policies, channel
//! drop/duplicate/reorder/corrupt rules, clock faults) is installed over
//! a scenario, and the run must satisfy:
//!
//! 1. **Determinism** — re-running the same `(scenario, script, seed)`
//!    reproduces the structured trace, net stats, fault stats, and end
//!    time bit for bit.
//! 2. **Message conservation** — every transmission is accounted for:
//!    `sent == delivered + lost + parked_leftover` (duplicates count as
//!    sent; all fault-plane removals count as lost).
//! 3. **Detection confinement** — every non-borderline detection that
//!    matches no ground-truth occurrence lies in the temporal vicinity of
//!    an injected fault or a lost message (the E9/E11–E13 locality
//!    claims, enforced as an invariant instead of a table).
//!
//! Any violation prints the offending run and the process exits
//! non-zero, so the same binary serves as a CI smoke job (`--quick
//! --seeds 3`) and a longer soak (default 20 seeds).
//!
//! ```sh
//! cargo run --release -p psn-bench --bin chaos                # 20 seeds
//! cargo run --release -p psn-bench --bin chaos -- --seeds 50
//! cargo run --release -p psn-bench --bin chaos -- --quick --seeds 3
//! cargo run --release -p psn-bench --bin chaos -- --quick --seeds 3 --shards 4
//! cargo run --release -p psn-bench --bin chaos -- --quick --seeds 3 --shards 4 \
//!     --optimistic --shard-plan affinity
//! cargo run --release -p psn-bench --bin chaos -- --only office,hospital --seeds 5
//! cargo run --release -p psn-bench --bin chaos -- --only scenarios/exhibition.psn
//! cargo run --release -p psn-bench --bin chaos -- --grammar --seeds 20
//! ```
//!
//! The default soak targets the exhibition world. `--only LIST` widens or
//! narrows the target set: a comma- or space-separated list mixing
//! built-in world names (`exhibition`, `office`, `hospital`, `habitat`)
//! and paths to `.psn` scenario programs. Built-ins run once per seed
//! with a freshly generated fault script; `.psn` files run once each,
//! exactly as written (their faults come from the file's own `faults`
//! block and seed). `--grammar` soaks the language itself: each seed
//! draws a random scenario program from the `psn-lang` grammar sampler,
//! compiles it, and checks the same three invariants — coverage of the
//! scenario space instead of one hand-picked world.
//!
//! With `--shards N` the primary run executes on the sharded engine while
//! the replay leg stays sequential, so invariant 1 sharpens into a
//! sharded-vs-sequential bit-equivalence check under live fault scripts.
//! Sharding needs lookahead, so built-in targets swap the pure Δ-bounded
//! delay (minimum 0) for a `[50 ms, 300 ms]` band — same Δ ceiling,
//! nonzero floor (grammar-sampled scenarios always carry a nonzero delay
//! floor for the same reason). `--optimistic` additionally runs the
//! primary on the Time Warp path and `--shard-plan NAME` picks the
//! actor→shard map; the replay leg always stays sequential-conservative,
//! so the same invariant then proves speculation and planning
//! bit-identical under live fault scripts.

use psn_bench::metrics_out::cell_object;
use psn_bench::telemetry_out;
use psn_core::{
    run_execution, run_execution_profiled, ExecutionConfig, ExecutionTrace, ShardPlanKind,
    SpeculationMode,
};
use psn_predicates::{detect_occurrences, detection_matches, Discipline, Expr, Predicate};
use psn_sim::fault::{ChaosConfig, FaultScript};
use psn_sim::metrics::Metrics;
use psn_sim::telemetry::Telemetry;
use psn_sim::time::{SimDuration, SimTime};
use psn_sim::trace_analysis::TraceAnalysis;
use psn_world::scenarios::exhibition::ExhibitionParams;
use psn_world::scenarios::{exhibition, habitat, hospital, office, Scenario};
use psn_world::{truth_intervals, AttrKey};
use serde::Value;

const USAGE: &str = "usage: chaos [--seeds N] [--quick] [--shards K] [--shard-plan NAME] \
     [--optimistic] [--telemetry-out <path.jsonl>] [--only LIST] [--grammar]\n\
     --only LIST  soak specific targets: a comma- or space-separated list of\n\
                  built-in world names (exhibition, office, hospital, habitat)\n\
                  and/or .psn file paths, e.g. `--only office,hospital` or\n\
                  `--only scenarios/exhibition.psn office`. Built-ins run once\n\
                  per seed under a generated fault script; .psn files run once\n\
                  each, exactly as written.\n\
     --grammar    soak grammar-sampled scenarios: each seed draws a random .psn\n\
                  program from the psn-lang sampler, compiles it, and checks\n\
                  the same three invariants.";

/// Everything one soak run needs: a world, an engine configuration (with
/// the fault script already installed), the predicates to monitor, and
/// the horizon for detection matching.
struct SoakCase {
    label: String,
    scenario: Scenario,
    cfg: ExecutionConfig,
    preds: Vec<(String, Predicate)>,
    discipline: Discipline,
    horizon: SimTime,
}

fn params(quick: bool) -> ExhibitionParams {
    ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(20),
        duration: SimTime::from_secs(if quick { 300 } else { 600 }),
        capacity: 60,
    }
}

/// Delay model for built-in targets: sharded mode needs a nonzero
/// minimum delay (lookahead), sequential mode keeps the pure Δ bound.
fn builtin_delay(shards: usize) -> psn_sim::delay::DelayModel {
    if shards > 1 {
        psn_sim::delay::DelayModel::DeltaBounded {
            min: SimDuration::from_millis(50),
            max: SimDuration::from_millis(300),
        }
    } else {
        psn_sim::delay::DelayModel::delta(SimDuration::from_millis(300))
    }
}

/// Build the soak case for a built-in world name, or `None` if the name
/// is not a built-in. Each world gets its canonical predicate and a
/// generated fault script over all of its processes.
fn builtin_case(
    name: &str,
    seed: u64,
    quick: bool,
    shards: usize,
    plan: ShardPlanKind,
    optimistic: bool,
) -> Option<SoakCase> {
    let secs = if quick { 300 } else { 600 };
    let (scenario, pred, horizon): (Scenario, Predicate, SimTime) = match name {
        "exhibition" => {
            let p = params(quick);
            let scenario = exhibition::generate(&p, 9100 + seed);
            (scenario, Predicate::occupancy_over(p.doors, p.capacity), p.duration)
        }
        "office" => {
            let p = office::OfficeParams {
                base_temp: 29.0,
                duration: SimTime::from_secs(secs),
                ..Default::default()
            };
            let scenario = office::generate(&p, 9100 + seed);
            (scenario, Predicate::hot_and_occupied(0, 30.0), p.duration)
        }
        "hospital" => {
            let p = hospital::HospitalParams {
                mean_dwell: SimDuration::from_secs(60),
                duration: SimTime::from_secs(secs),
                ..Default::default()
            };
            let ward = p.infectious_ward;
            let scenario = hospital::generate(&p, 9100 + seed);
            let pred = Predicate::Relational(
                Expr::var(AttrKey::new(ward, hospital::ATTR_COUNT)).gt(Expr::int(0)),
            );
            (scenario, pred, p.duration)
        }
        "habitat" => {
            let p = habitat::HabitatParams {
                mean_dwell: SimDuration::from_secs(60),
                duration: SimTime::from_secs(secs),
                ..Default::default()
            };
            let scenario = habitat::generate(&p, 9100 + seed);
            let pred = Predicate::Relational(
                Expr::var(AttrKey::new(0, habitat::ATTR_PRESENT)).gt(Expr::int(0)),
            );
            (scenario, pred, p.duration)
        }
        _ => return None,
    };
    let n = scenario.num_processes();
    let script = FaultScript::generate(&ChaosConfig::new((0..n).collect(), horizon), seed);
    let speculation =
        if optimistic { SpeculationMode::Optimistic } else { SpeculationMode::Conservative };
    let cfg = ExecutionConfig {
        delay: builtin_delay(shards),
        seed,
        record_sim_trace: true,
        faults: Some(script),
        shards,
        shard_plan: Some(plan),
        speculation: Some(speculation),
        ..Default::default()
    };
    Some(SoakCase {
        label: format!("{name} seed {seed}"),
        scenario,
        cfg,
        preds: vec![(name.to_string(), pred)],
        discipline: Discipline::VectorStrobe,
        horizon,
    })
}

/// Build a soak case from compiled `.psn` source (a file or a sampled
/// program), applying the CLI shard/plan/speculation overrides.
fn compiled_case(
    label: String,
    source: &str,
    origin: &str,
    shards: usize,
    plan: ShardPlanKind,
    optimistic: bool,
) -> Result<SoakCase, String> {
    let compiled = psn_lang::compile(source).map_err(|diags| {
        format!(
            "{label}: scenario failed to compile:\n{}",
            psn_lang::render(source, origin, &diags)
        )
    })?;
    let mut cfg = compiled.config;
    cfg.record_sim_trace = true;
    if shards > 1 {
        cfg.shards = shards;
        cfg.shard_plan = Some(plan);
    }
    if optimistic {
        cfg.speculation = Some(SpeculationMode::Optimistic);
    }
    let horizon = compiled.scenario.timeline.duration();
    Ok(SoakCase {
        label: format!("{label} ({})", compiled.name),
        scenario: compiled.scenario,
        cfg,
        preds: compiled.predicates.into_iter().map(|p| (p.name, p.predicate)).collect(),
        discipline: compiled.discipline,
        horizon,
    })
}

/// Run one case and check the three invariants. Returns the one-line
/// summary on success, a violation message otherwise.
fn soak(case: &SoakCase) -> Result<String, String> {
    let SoakCase { label, scenario, cfg, preds, discipline, horizon } = case;
    let shards = cfg.shards;
    let optimistic = cfg.speculation == Some(SpeculationMode::Optimistic);
    // With a --telemetry-out sink open the primary run is profiled and one
    // JSONL record is emitted per run; otherwise this is run_execution.
    let trace: ExecutionTrace = if telemetry_out::is_enabled() {
        let metrics = Metrics::new();
        let telemetry = Telemetry::new();
        let trace = run_execution_profiled(scenario, cfg, &metrics, &telemetry);
        telemetry_out::emit_cell(
            "chaos",
            cell_object(
                &format!("{label} shards={shards}"),
                &[
                    ("seed", Value::UInt(cfg.seed)),
                    ("shards", Value::UInt(shards as u64)),
                    ("optimistic", Value::Bool(optimistic)),
                ],
            ),
            &metrics.snapshot(),
            &telemetry.snapshot(),
        );
        trace
    } else {
        run_execution(scenario, cfg)
    };

    // 1. Determinism: same (scenario, script, seed) ⇒ identical run. When
    // the primary run is sharded (and possibly optimistic), the replay runs
    // sequentially-conservatively — the same invariant then proves the
    // sharded/speculative engine bit-identical to the sequential one under
    // this fault script.
    let replay_cfg =
        ExecutionConfig { shards: 1, shard_plan: None, speculation: None, ..cfg.clone() };
    let replay = run_execution(scenario, &replay_cfg);
    if replay.sim.records() != trace.sim.records() {
        return Err(format!("{label}: replay diverged (structured trace records differ)"));
    }
    if replay.net != trace.net || replay.faults != trace.faults || replay.ended_at != trace.ended_at
    {
        return Err(format!("{label}: replay diverged (stats or end time differ)"));
    }

    // 2. Message conservation. The run quiesces (no heartbeats), so
    // nothing is still in flight at the end; parked messages of a
    // never-healed partition are the only legitimate remainder. World
    // sense events are injected deliveries (they bypass the network and
    // never count as sent), so they join the sent side of the ledger.
    let fs = trace.faults.clone().unwrap_or_default();
    let injected: u64 = scenario
        .timeline
        .events
        .iter()
        .filter(|e| scenario.sensing.process_for(e.key).is_some())
        .count() as u64;
    let accounted = trace.net.messages_delivered + trace.net.messages_lost + fs.parked_leftover;
    if trace.net.messages_sent + injected != accounted {
        return Err(format!(
            "{label}: conservation violated: sent {} + injected {injected} != \
             delivered {} + lost {} + parked {}",
            trace.net.messages_sent,
            trace.net.messages_delivered,
            trace.net.messages_lost,
            fs.parked_leftover,
        ));
    }

    // 3. Detection confinement: a non-borderline detection matching no
    // truth occurrence must sit near an injected fault or a lost message.
    let tol = SimDuration::from_millis(1_000);
    let vicinity = SimDuration::from_secs(15);
    let analysis = TraceAnalysis::build(&trace.sim);
    let initial = scenario.timeline.initial_state();
    let mut det_total = 0usize;
    let mut truth_total = 0usize;
    for (name, pred) in preds {
        let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
        let det = detect_occurrences(&trace, pred, &initial, *discipline);
        let mut unexplained = 0usize;
        for d in det.iter().filter(|d| !d.borderline) {
            if detection_matches(d, &truth, *horizon, tol) {
                continue;
            }
            let end = d.end.unwrap_or(trace.ended_at);
            if !analysis.near_any_fault(d.start, end, vicinity)
                && !analysis.near_any_loss(d.start, end, vicinity)
            {
                unexplained += 1;
            }
        }
        if unexplained > 0 {
            return Err(format!(
                "{label}: {unexplained} detection(s) of `{name}` match no truth occurrence \
                 and are not near any fault or loss"
            ));
        }
        det_total += det.len();
        truth_total += truth.len();
    }

    let n_faults = cfg.faults.as_ref().map_or(0, |s| s.faults.len());
    let spec_note =
        if optimistic { format!(", {} rollbacks", trace.rollbacks) } else { String::new() };
    Ok(format!(
        "{label}: ok — {} faults scripted (crashes {} recoveries {} cuts {} heals {} \
         clock {}), {} msgs ({} lost, {} corrupted, {} duplicated, {} reordered, {} parked), \
         {} detections / {} truth{spec_note}",
        n_faults,
        fs.crashes,
        fs.recoveries,
        fs.cuts,
        fs.heals,
        fs.clock_faults,
        trace.net.messages_sent,
        trace.net.messages_lost,
        fs.corrupted,
        fs.duplicated,
        fs.reordered,
        fs.parked,
        det_total,
        truth_total,
    ))
}

fn run_grammar_seed(
    seed: u64,
    shards: usize,
    plan: ShardPlanKind,
    optimistic: bool,
) -> Result<String, String> {
    let source = psn_lang::sample_source(seed);
    let case = compiled_case(
        format!("grammar seed {seed}"),
        &source,
        "<sampled>",
        shards,
        plan,
        optimistic,
    )?;
    soak(&case)
}

fn run_file(
    path: &str,
    shards: usize,
    plan: ShardPlanKind,
    optimistic: bool,
) -> Result<String, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let case = compiled_case(path.to_string(), &source, path, shards, plan, optimistic)?;
    soak(&case)
}

fn run_builtin_seed(
    name: &str,
    seed: u64,
    quick: bool,
    shards: usize,
    plan: ShardPlanKind,
    optimistic: bool,
) -> Result<String, String> {
    let case = builtin_case(name, seed, quick, shards, plan, optimistic)
        .unwrap_or_else(|| panic!("not a built-in scenario: {name}"));
    soak(&case)
}

const BUILTINS: [&str; 4] = ["exhibition", "office", "hospital", "habitat"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let grammar = args.iter().any(|a| a == "--grammar");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let plan: ShardPlanKind = args
        .iter()
        .position(|a| a == "--shard-plan")
        .and_then(|p| args.get(p + 1))
        .map(|name| match psn_bench::common::parse_shard_plan(name) {
            Some(kind) => kind,
            None => {
                eprintln!(
                    "unknown --shard-plan {name} (known: contiguous, interleaved, \
                     roundrobin, hash, affinity)"
                );
                std::process::exit(1);
            }
        })
        .unwrap_or(ShardPlanKind::Contiguous);
    let optimistic = args.iter().any(|a| a == "--optimistic");
    // --only takes a comma- or space-separated list of built-in names
    // and/or .psn paths, terminated by the next --flag.
    let only: Vec<String> = args
        .iter()
        .position(|a| a == "--only")
        .map(|p| {
            args[p + 1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .flat_map(|a| a.split(','))
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    let telemetry_path: Option<&String> =
        args.iter().position(|a| a == "--telemetry-out").and_then(|p| args.get(p + 1));
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return;
    }
    for entry in &only {
        if !BUILTINS.contains(&entry.as_str()) && !std::path::Path::new(entry).is_file() {
            eprintln!(
                "--only {entry}: not a built-in scenario (known: {}) and not a .psn file",
                BUILTINS.join(", ")
            );
            std::process::exit(2);
        }
    }
    if let Some(path) = telemetry_path {
        if let Err(e) = telemetry_out::set_telemetry_out(path) {
            eprintln!("cannot open --telemetry-out {path}: {e}");
            std::process::exit(1);
        }
    }
    if shards > 1 {
        let mode = if optimistic { "optimistic" } else { "conservative" };
        println!(
            "chaos: sharded mode ({shards} shards, {mode}, {plan:?} plan; \
             replay leg runs sequentially)"
        );
    }
    let mut failures = 0u64;
    let mut runs = 0u64;
    let mut tally = |res: Result<String, String>| {
        runs += 1;
        match res {
            Ok(line) => println!("{line}"),
            Err(line) => {
                eprintln!("VIOLATION {line}");
                failures += 1;
            }
        }
    };
    if grammar {
        println!("chaos: grammar mode — {seeds} sampled scenario(s) from the psn-lang grammar");
        for seed in 0..seeds {
            tally(run_grammar_seed(seed, shards, plan, optimistic));
        }
    } else if !only.is_empty() {
        for entry in &only {
            if BUILTINS.contains(&entry.as_str()) {
                for seed in 0..seeds {
                    tally(run_builtin_seed(entry, seed, quick, shards, plan, optimistic));
                }
            } else {
                tally(run_file(entry, shards, plan, optimistic));
            }
        }
    } else {
        for seed in 0..seeds {
            tally(run_builtin_seed("exhibition", seed, quick, shards, plan, optimistic));
        }
    }
    telemetry_out::finish();
    if failures > 0 {
        eprintln!("chaos: {failures}/{runs} run(s) violated an invariant");
        std::process::exit(1);
    }
    println!("chaos: all {runs} run(s) clean");
}
