//! The experiment runner.
//!
//! ```sh
//! cargo run --release -p psn-bench --bin experiments            # all, full size
//! cargo run --release -p psn-bench --bin experiments -- --quick # all, small
//! cargo run --release -p psn-bench --bin experiments -- --only e2 e5
//! cargo run --release -p psn-bench --bin experiments -- --only e9,e11,e12
//! cargo run --release -p psn-bench --bin experiments -- --csv --only e8
//! cargo run --release -p psn-bench --bin experiments -- --only e7 --metrics-out /tmp/m.jsonl
//! cargo run --release -p psn-bench --bin experiments -- --only e7 e9 --trace-out /tmp/traces
//! cargo run --release -p psn-bench --bin experiments -- --only e7 --shards 4 --delay-floor-ms 50
//! cargo run --release -p psn-bench --bin experiments -- --only e7 --shards 4 \
//!     --delay-floor-ms 50 --shard-plan affinity --optimistic
//! ```
//!
//! `--shards N` runs every cell on the sharded engine (bit-identical to
//! sequential); `--delay-floor-ms X` raises the minimum network delay so
//! the conservative scheduler has lookahead — the CI shard-equivalence job
//! runs the same cells with and without `--shards` at the same floor and
//! diffs the trace files. `--shard-plan NAME` picks how actors map to
//! shards (contiguous, interleaved/roundrobin, hash, affinity) and
//! `--optimistic` switches the sharded cells to the Time Warp path; both
//! are proven bit-identical by the same trace diff.

use std::time::Instant;

use psn_bench::experiments::{run_one, ALL};
use psn_bench::metrics_out;
use psn_bench::telemetry_out;
use psn_bench::trace_out;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let metrics_path: Option<&String> =
        args.iter().position(|a| a == "--metrics-out").and_then(|p| args.get(p + 1));
    let trace_dir: Option<&String> =
        args.iter().position(|a| a == "--trace-out").and_then(|p| args.get(p + 1));
    let telemetry_path: Option<&String> =
        args.iter().position(|a| a == "--telemetry-out").and_then(|p| args.get(p + 1));
    let trace_format: Option<&String> =
        args.iter().position(|a| a == "--trace-format").and_then(|p| args.get(p + 1));
    let shards: Option<usize> = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok());
    let delay_floor_ms: Option<u64> = args
        .iter()
        .position(|a| a == "--delay-floor-ms")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok());
    let shard_plan: Option<&String> =
        args.iter().position(|a| a == "--shard-plan").and_then(|p| args.get(p + 1));
    let optimistic = args.iter().any(|a| a == "--optimistic");
    // Ids may be space-separated, comma-separated, or a mix:
    // `--only e9 e11`, `--only e9,e11,e12`, `--only e9, e11`.
    let only: Vec<String> = match args.iter().position(|a| a == "--only") {
        Some(pos) => args[pos + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .flat_map(|a| a.split(','))
            .map(|a| a.trim().to_lowercase())
            .filter(|s| !s.is_empty())
            .collect(),
        None => ALL.iter().map(|s| s.to_string()).collect(),
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: experiments [--quick] [--csv] [--only e1 e2,e3 ...] [--list] \
             [--metrics-out <path.jsonl>] [--telemetry-out <path.jsonl>] \
             [--trace-out <dir>] [--trace-format chrome|jsonl] \
             [--shards N] [--delay-floor-ms X] [--shard-plan NAME] [--optimistic]\n\
             \n\
             --only accepts experiment ids separated by spaces, commas, or both\n\
             (e.g. `--only e9,e11,e12`); see --list for the known ids.\n\
             --shards runs cells on the sharded engine (bit-identical);\n\
             --delay-floor-ms raises the minimum network delay (lookahead);\n\
             --shard-plan picks the actor→shard map (contiguous, interleaved,\n\
             roundrobin, hash, affinity);\n\
             --optimistic runs sharded cells on the Time Warp path."
        );
        return;
    }
    if let Some(k) = shards {
        psn_bench::common::set_shards(k);
    }
    if let Some(ms) = delay_floor_ms {
        psn_bench::common::set_delay_floor_ms(ms);
    }
    if let Some(name) = shard_plan {
        match psn_bench::common::parse_shard_plan(name) {
            Some(kind) => psn_bench::common::set_shard_plan(kind),
            None => {
                eprintln!(
                    "unknown --shard-plan {name} (known: contiguous, interleaved, \
                     roundrobin, hash, affinity)"
                );
                std::process::exit(1);
            }
        }
    }
    if optimistic {
        psn_bench::common::set_optimistic(true);
    }
    if let Some(path) = metrics_path {
        if let Err(e) = metrics_out::set_metrics_out(path) {
            eprintln!("cannot open --metrics-out {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = telemetry_path {
        if let Err(e) = telemetry_out::set_telemetry_out(path) {
            eprintln!("cannot open --telemetry-out {path}: {e}");
            std::process::exit(1);
        }
    }
    let format = match trace_format {
        Some(f) => match trace_out::TraceFormat::parse(f) {
            Some(f) => f,
            None => {
                eprintln!("unknown --trace-format {f} (known: chrome, jsonl)");
                std::process::exit(1);
            }
        },
        None => trace_out::TraceFormat::default(),
    };
    if let Some(dir) = trace_dir {
        if let Err(e) = trace_out::set_trace_out(dir, format) {
            eprintln!("cannot open --trace-out {dir}: {e}");
            std::process::exit(1);
        }
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL {
            println!("{id}");
        }
        return;
    }

    for id in &only {
        let t0 = Instant::now();
        match run_one(id, quick) {
            Some(table) => {
                if csv {
                    print!("{}", table.to_csv());
                } else {
                    println!("{}", table.to_markdown());
                    println!("_({id} took {:.1}s)_\n", t0.elapsed().as_secs_f64());
                }
            }
            None => eprintln!("unknown experiment id: {id} (known: {})", ALL.join(", ")),
        }
    }
    metrics_out::finish();
    telemetry_out::finish();
    let traces = trace_out::finish();
    if traces > 0 {
        eprintln!("trace-out: wrote {traces} cell trace file(s)");
    }
}
