//! Validate Chrome trace-event files produced by `experiments --trace-out`.
//!
//! ```sh
//! cargo run --release -p psn-bench --bin trace_check -- /tmp/traces
//! ```
//!
//! Checks every `*.json` file in the directory against the trace-event
//! schema ([`psn_sim::trace_export::validate_chrome`]): top-level
//! `traceEvents` array, required per-event fields, known phase codes, and
//! every flow-finish bound to a matching flow-start. Exits non-zero on any
//! invalid file — or when the directory contains no trace files at all, so
//! a silently-empty export step fails CI rather than passing vacuously.

use psn_sim::trace_export::validate_chrome;

fn main() {
    let dir = match std::env::args().nth(1) {
        Some(d) => d,
        None => {
            eprintln!("usage: trace_check <dir>");
            std::process::exit(2);
        }
    };
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("trace_check: cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {}: read error: {e}", path.display());
                failed += 1;
                continue;
            }
        };
        checked += 1;
        match validate_chrome(&text) {
            Ok(summary) => {
                println!(
                    "ok   {}: {} events, {} message flows",
                    path.display(),
                    summary.events,
                    summary.flows
                );
            }
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed += 1;
            }
        }
    }
    if checked == 0 {
        eprintln!("trace_check: no .json trace files found in {dir}");
        std::process::exit(1);
    }
    if failed > 0 {
        eprintln!("trace_check: {failed}/{checked} file(s) invalid");
        std::process::exit(1);
    }
    println!("trace_check: {checked} file(s) valid");
}
