//! Generate `BENCH_baseline.json`: a coarse wall-clock throughput snapshot
//! of the three hot paths (engine event loop, clock operations, sweep
//! detector), committed at the repo root so perf regressions have a
//! reference point. Numbers are machine-dependent by nature — regenerate on
//! the machine under comparison:
//!
//! ```sh
//! cargo run --release -p psn-bench --bin baseline            # writes BENCH_baseline.json
//! cargo run --release -p psn-bench --bin baseline -- out.json
//! cargo run --release -p psn-bench --bin baseline -- --telemetry-out /tmp/tel.jsonl
//! ```
//!
//! `--telemetry-out <path.jsonl>` additionally dumps the phase-profiling
//! snapshot of the telemetry-overhead run (the `psn-profile` input
//! format).

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use psn_bench::metrics_out::cell_object;
use psn_bench::telemetry_out;
use psn_clocks::{LogicalClock, StrobeScalarClock, StrobeVectorClock, VectorStamp};
use psn_core::{
    run_execution_instrumented, run_execution_profiled, ExecutionConfig, SpeculationMode,
};
use psn_lattice::{enumerate_lattice, History};
use psn_predicates::{detect_occurrences, Discipline, Predicate, StreamingModal};
use psn_sim::delay::DelayModel;
use psn_sim::metrics::Metrics;
use psn_sim::telemetry::Telemetry;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use serde::{Serialize, Value};

/// Shard-count → events/s, serialized as a JSON *object* keyed by the
/// shard count (the vendored serde shim renders a bare `BTreeMap` as a
/// list of pairs; the map shape is nicer to diff and to query).
struct RateMap(BTreeMap<String, f64>);

impl Serialize for RateMap {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(self.0.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

/// The committed snapshot format.
#[derive(Serialize)]
struct Baseline {
    note: String,
    engine_events_per_sec: f64,
    /// Sharded-engine throughput on a large-n (1025-actor) workload, at
    /// the best shard count tried (see the note for which).
    engine_par_events_per_sec: f64,
    /// The sequential engine on the *same* large-n workload — the
    /// denominator of the sharding speedup.
    engine_par_seq_events_per_sec: f64,
    /// Conservative sharded throughput per shard count tried, on the same
    /// large-n workload (key = shard count).
    engine_par_events_per_sec_by_shards: RateMap,
    /// Optimistic (Time Warp) sharded throughput per shard count tried, on
    /// the same large-n workload (key = shard count).
    engine_par_optimistic_events_per_sec_by_shards: RateMap,
    scalar_tick_ops_per_sec: f64,
    vector64_merge_ops_per_sec: f64,
    detector_reports_per_sec: f64,
    /// Sustained ingest rate of the streaming detector on the same
    /// workload as `detector_reports_per_sec`: every delivered report
    /// offered through `StreamingModal` (2Δ hold-back) with a `status()`
    /// probe every 512 reports — the serve `Status`/`Watch` path that
    /// previously re-ran the whole-trace sweep per query.
    detector_stream_events_per_sec: f64,
    lattice_states_per_sec: f64,
    trace_records_per_sec: f64,
    /// Sustained live-ingest rate of `psn-serve` over its TCP wire
    /// protocol, with a concurrent client hammering `Frontier` queries —
    /// the service-mode hot path (frame decode + session command + engine
    /// injection), not the batch engine.
    serve_ingest_events_per_sec: f64,
    /// Median-of-10 paired wall-clock ratio of a sequential engine run
    /// with the telemetry plane recording vs disabled (1.0 = free; the
    /// determinism tests guard this at ≤2%).
    telemetry_overhead_ratio: f64,
    /// Sustained `GET /metrics` scrape rate of the Prometheus endpoint
    /// (one connection per scrape), with a concurrent ingest client
    /// keeping the serve session hot.
    serve_metrics_scrapes_per_sec: f64,
}

fn engine_events_per_sec() -> f64 {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(300)),
        ..Default::default()
    };
    // Warm up once, then measure: the engine metrics count the events, the
    // wall clock prices them.
    black_box(run_execution_instrumented(&scenario, &cfg, &Metrics::disabled()));
    let metrics = Metrics::new();
    let t0 = Instant::now();
    black_box(run_execution_instrumented(&scenario, &cfg, &metrics));
    let secs = t0.elapsed().as_secs_f64();
    let events = metrics.snapshot().counter("engine.events_processed").unwrap_or(0);
    events as f64 / secs
}

/// Per-shard-count results of the large-n sharding benchmark.
struct ParBench {
    seq: f64,
    best: f64,
    best_k: usize,
    by_shards: BTreeMap<String, f64>,
    optimistic_by_shards: BTreeMap<String, f64>,
}

/// Sequential vs sharded throughput on a large-n workload: 1024 doors
/// (1025 actors) under a Δ-bounded delay with a 40 ms floor — the floor is
/// the sharded engine's lookahead. Measures every shard count in
/// `shard_counts` twice: conservative barriers and the optimistic (Time
/// Warp) path.
fn engine_par_events_per_sec(shard_counts: &[usize]) -> ParBench {
    let params = ExhibitionParams {
        doors: 1024,
        arrival_rate_hz: 20.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(60),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let measure = |shards: usize, mode: SpeculationMode| {
        let cfg = ExecutionConfig {
            delay: DelayModel::DeltaBounded {
                min: SimDuration::from_millis(40),
                max: SimDuration::from_millis(240),
            },
            shards,
            speculation: Some(mode),
            ..Default::default()
        };
        let metrics = Metrics::new();
        let t0 = Instant::now();
        black_box(run_execution_instrumented(&scenario, &cfg, &metrics));
        let secs = t0.elapsed().as_secs_f64();
        let events = metrics.snapshot().counter("engine.events_processed").unwrap_or(0);
        events as f64 / secs
    };
    let _warm = measure(1, SpeculationMode::Conservative);
    let seq = measure(1, SpeculationMode::Conservative);
    let (mut best, mut best_k) = (0.0f64, 1usize);
    let mut by_shards = BTreeMap::new();
    let mut optimistic_by_shards = BTreeMap::new();
    for &k in shard_counts {
        let rate = measure(k, SpeculationMode::Conservative);
        by_shards.insert(k.to_string(), rate);
        let opt_rate = measure(k, SpeculationMode::Optimistic);
        optimistic_by_shards.insert(k.to_string(), opt_rate);
        if rate.max(opt_rate) > best {
            best = rate.max(opt_rate);
            best_k = k;
        }
    }
    ParBench { seq, best, best_k, by_shards, optimistic_by_shards }
}

fn scalar_tick_ops_per_sec() -> f64 {
    let mut clock = StrobeScalarClock::new(0);
    let iters = 20_000_000u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(clock.on_local_event());
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

fn vector64_merge_ops_per_sec() -> f64 {
    let n = 64;
    let mut clock = StrobeVectorClock::new(0, n);
    let stamp = VectorStamp::from(vec![7; n]);
    let iters = 2_000_000u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        clock.on_strobe(black_box(&stamp));
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

fn detector_reports_per_sec() -> f64 {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(300)),
        ..Default::default()
    };
    let trace = run_execution_instrumented(&scenario, &cfg, &Metrics::disabled());
    let pred = Predicate::occupancy_over(4, 240);
    let init = scenario.timeline.initial_state();
    let reports = trace.log.reports.len() as u64;
    let rounds = 20u64;
    let t0 = Instant::now();
    for _ in 0..rounds {
        black_box(detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe));
    }
    (reports * rounds) as f64 / t0.elapsed().as_secs_f64()
}

fn detector_stream_events_per_sec() -> f64 {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(300)),
        ..Default::default()
    };
    let trace = run_execution_instrumented(&scenario, &cfg, &Metrics::disabled());
    let pred = Predicate::occupancy_over(4, 240);
    let init = scenario.timeline.initial_state();
    let hold_back = SimDuration::from_millis(601); // 2Δ + 1
    let reports = trace.log.reports.len() as u64;
    let rounds = 20u64;
    let t0 = Instant::now();
    for _ in 0..rounds {
        let mut s = StreamingModal::new(&pred, &init, trace.n, hold_back);
        for (i, r) in trace.log.reports.iter().enumerate() {
            s.offer(black_box(r));
            if i % 512 == 0 {
                black_box(s.status());
            }
        }
        black_box(s.seal());
    }
    (reports * rounds) as f64 / t0.elapsed().as_secs_f64()
}

fn lattice_states_per_sec() -> f64 {
    // Unconstrained grid: 4 processes × 8 events, 9⁴ = 6561 consistent cuts
    // — the O(pⁿ) worst case the slim-lattice postulate is measured
    // against (E4's widest cell shape).
    let n = 4usize;
    let p = 8u64;
    let history = History::new(
        (0..n)
            .map(|proc| {
                (1..=p)
                    .map(|k| {
                        let mut v = vec![0; n];
                        v[proc] = k;
                        VectorStamp::from(v)
                    })
                    .collect()
            })
            .collect(),
    );
    let states = enumerate_lattice(&history, u64::MAX).states;
    let rounds = 200u64;
    let t0 = Instant::now();
    for _ in 0..rounds {
        black_box(enumerate_lattice(black_box(&history), u64::MAX));
    }
    (states * rounds) as f64 / t0.elapsed().as_secs_f64()
}

fn trace_records_per_sec() -> f64 {
    use psn_sim::trace::{ClockStamp, MsgId, ProcessEventKind, Trace, TraceKind};
    // Recording cost of the structured trace pipeline: a realistic record
    // mix (send, deliver, stamped process event) through the per-actor
    // rings, then one seal. The stamp is an 8-wide vector — the inline
    // capacity, matching small-deployment runs.
    let actors = 8usize;
    let rounds = 300_000u64;
    let records_per_round = 3u64;
    let stamp = [1u64, 2, 3, 4, 5, 6, 7, 8];
    let mut trace = Trace::enabled();
    trace.configure_actors(actors);
    let t0 = Instant::now();
    for i in 0..rounds {
        let from = (i as usize) % actors;
        let to = (from + 1) % actors;
        let at = SimTime::from_nanos(i);
        trace.record(at, TraceKind::Sent { from, to, bytes: 64, msg: MsgId(i) });
        trace.record(at, TraceKind::Delivered { from, to, msg: MsgId(i) });
        trace.record(
            at,
            TraceKind::Process {
                actor: to,
                kind: ProcessEventKind::Receive,
                stamp: ClockStamp::vector(&stamp),
                detail: from as u64,
            },
        );
    }
    trace.seal();
    black_box(trace.len());
    (rounds * records_per_round) as f64 / t0.elapsed().as_secs_f64()
}

fn serve_ingest_events_per_sec() -> f64 {
    use psn_serve::wire::{read_frame, write_frame};
    use psn_serve::{serve, Request, Response, ServeConfig, ServeSession};
    use psn_world::{AttrKey, AttrValue};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle = serve(listener, ServeSession::new(ServeConfig::new(4))).expect("start serve");
    let addr = handle.addr();
    let done = Arc::new(AtomicBool::new(false));

    // A concurrent querier keeps the command channel contended the way a
    // live dashboard would, so the number prices ingest *under load*.
    let querier_done = Arc::clone(&done);
    let querier = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).expect("connect querier");
        c.set_nodelay(true).expect("nodelay");
        while !querier_done.load(Ordering::Acquire) {
            write_frame(&mut c, &Request::Frontier).expect("query write");
            let r = read_frame::<Response>(&mut c).expect("query read").expect("reply");
            assert!(matches!(r, Response::Frontier { .. }));
        }
    });

    let mut c = TcpStream::connect(addr).expect("connect ingester");
    c.set_nodelay(true).expect("nodelay");
    let events = 30_000u64;
    // Warm up the connection and the session before timing.
    for i in 0..500u64 {
        write_frame(
            &mut c,
            &Request::Ingest {
                at: SimTime::from_nanos(i),
                process: (i % 4) as usize,
                key: AttrKey::new((i % 4) as usize, 0),
                value: AttrValue::Int(i as i64),
            },
        )
        .expect("warmup write");
        read_frame::<Response>(&mut c).expect("warmup read").expect("reply");
    }
    let t0 = Instant::now();
    for i in 0..events {
        write_frame(
            &mut c,
            &Request::Ingest {
                at: SimTime::from_millis(1000 + i),
                process: (i % 4) as usize,
                key: AttrKey::new((i % 4) as usize, 0),
                value: AttrValue::Int(i as i64),
            },
        )
        .expect("ingest write");
        let r = read_frame::<Response>(&mut c).expect("ingest read").expect("reply");
        assert!(matches!(r, Response::Ingested { .. }), "{r:?}");
    }
    let secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    querier.join().expect("querier");
    write_frame(&mut c, &Request::Shutdown).expect("shutdown write");
    let _ = read_frame::<Response>(&mut c);
    handle.wait();
    events as f64 / secs
}

/// Median-of-10 paired A/B: each iteration times the same sequential run
/// once with a disabled telemetry registry and once with a live one, and
/// contributes one on/off ratio. Pairing cancels slow drift (thermal,
/// scheduler) that independent medians would smear.
fn telemetry_overhead_ratio() -> f64 {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(60),
        // Long enough (~60 ms of wall per run) that a 2% delta clears the
        // scheduler's noise floor on a loaded host.
        duration: SimTime::from_secs(1_200),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(300)),
        ..Default::default()
    };
    let time_with = |telemetry: &Telemetry| {
        let t0 = Instant::now();
        black_box(run_execution_profiled(&scenario, &cfg, &Metrics::disabled(), telemetry));
        t0.elapsed().as_secs_f64()
    };
    let _warm = time_with(&Telemetry::disabled());
    let live = Telemetry::new();
    let mut ratios: Vec<f64> = (0..10)
        .map(|_| {
            let off = time_with(&Telemetry::disabled());
            let on = time_with(&live);
            on / off
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    if telemetry_out::is_enabled() {
        let metrics = Metrics::new();
        let telemetry = Telemetry::new();
        black_box(run_execution_profiled(&scenario, &cfg, &metrics, &telemetry));
        telemetry_out::emit_cell(
            "baseline",
            cell_object("telemetry_overhead sequential", &[("shards", Value::UInt(1))]),
            &metrics.snapshot(),
            &telemetry.snapshot(),
        );
    }
    (ratios[4] + ratios[5]) / 2.0
}

fn serve_metrics_scrapes_per_sec() -> f64 {
    use psn_serve::wire::{read_frame, write_frame};
    use psn_serve::{serve, serve_metrics, Request, Response, ServeConfig, ServeSession};
    use psn_world::{AttrKey, AttrValue};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let session = ServeSession::new(ServeConfig::new(4));
    let (m, t) = (session.metrics_registry(), session.telemetry_registry());
    let http = serve_metrics(TcpListener::bind("127.0.0.1:0").expect("bind http"), m, t);
    let http_addr = http.addr();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle = serve(listener, session).expect("start serve");
    let addr = handle.addr();
    let done = Arc::new(AtomicBool::new(false));

    // Concurrent ingest keeps the engine and the registries hot, so the
    // scrape rate is priced against a live session, not an idle one.
    let ingester_done = Arc::clone(&done);
    let ingester = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).expect("connect ingester");
        c.set_nodelay(true).expect("nodelay");
        let mut i = 0u64;
        while !ingester_done.load(Ordering::Acquire) {
            write_frame(
                &mut c,
                &Request::Ingest {
                    at: SimTime::from_millis(1000 + i),
                    process: (i % 4) as usize,
                    key: AttrKey::new((i % 4) as usize, 0),
                    value: AttrValue::Int(i as i64),
                },
            )
            .expect("ingest write");
            read_frame::<Response>(&mut c).expect("ingest read").expect("reply");
            i += 1;
        }
        write_frame(&mut c, &Request::Shutdown).expect("shutdown write");
        let _ = read_frame::<Response>(&mut c);
    });

    let scrape = || {
        let mut s = TcpStream::connect(http_addr).expect("connect http");
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("http write");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut body = String::new();
        s.read_to_string(&mut body).expect("http read");
        assert!(body.starts_with("HTTP/1.0 200 OK"), "scrape failed: {body}");
    };
    for _ in 0..20 {
        scrape();
    }
    let scrapes = 300u64;
    let t0 = Instant::now();
    for _ in 0..scrapes {
        scrape();
    }
    let secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    ingester.join().expect("ingester");
    handle.wait();
    http.stop();
    scrapes as f64 / secs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path: Option<&String> =
        args.iter().position(|a| a == "--telemetry-out").and_then(|p| args.get(p + 1));
    if let Some(path) = telemetry_path {
        if let Err(e) = telemetry_out::set_telemetry_out(path) {
            eprintln!("cannot open --telemetry-out {path}: {e}");
            std::process::exit(1);
        }
    }
    let path = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(i.checked_sub(1).map(|p| args[p].as_str()), Some("--telemetry-out"))
        })
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let threads = psn_sim::sweep::default_threads();
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let psn_threads = std::env::var("PSN_THREADS").unwrap_or_else(|_| "unset".to_string());
    let shard_counts = [2usize, 4, 8];
    let par = engine_par_events_per_sec(&shard_counts);
    let baseline = Baseline {
        note: format!(
            "wall-clock throughput snapshot; regenerate with `cargo run --release -p \
             psn-bench --bin baseline` on the machine under comparison. \
             cores detected={cores}, threads={threads} (PSN_THREADS={psn_threads}); \
             engine_par = 1025-actor exhibition workload, shards tried \
             {shard_counts:?} in both conservative and optimistic mode, \
             best={} ({:.2}x over sequential on the same workload); on hosts \
             with fewer cores than shards the sharded legs measure overhead, \
             not speedup — compare the by_shards maps against \
             engine_par_seq_events_per_sec",
            par.best_k,
            par.best / par.seq.max(1.0)
        ),
        engine_events_per_sec: engine_events_per_sec(),
        engine_par_events_per_sec: par.best,
        engine_par_seq_events_per_sec: par.seq,
        engine_par_events_per_sec_by_shards: RateMap(par.by_shards),
        engine_par_optimistic_events_per_sec_by_shards: RateMap(par.optimistic_by_shards),
        scalar_tick_ops_per_sec: scalar_tick_ops_per_sec(),
        vector64_merge_ops_per_sec: vector64_merge_ops_per_sec(),
        detector_reports_per_sec: detector_reports_per_sec(),
        detector_stream_events_per_sec: detector_stream_events_per_sec(),
        lattice_states_per_sec: lattice_states_per_sec(),
        trace_records_per_sec: trace_records_per_sec(),
        serve_ingest_events_per_sec: serve_ingest_events_per_sec(),
        telemetry_overhead_ratio: telemetry_overhead_ratio(),
        serve_metrics_scrapes_per_sec: serve_metrics_scrapes_per_sec(),
    };
    telemetry_out::finish();
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, json + "\n").expect("write baseline file");
    println!("wrote {path}");
}
