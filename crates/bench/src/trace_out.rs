//! Per-cell structured-trace sink for the experiment runner.
//!
//! `experiments --trace-out <dir> [--trace-format jsonl|chrome]` opens a
//! process-wide sink here; each trace-recording experiment cell then calls
//! [`emit_cell_trace`] with the sealed [`psn_sim::trace::Trace`] of its
//! run, producing **one file per cell** under `<dir>`:
//!
//! - `chrome` (default): `<experiment>-<cell>.json` — a Chrome
//!   trace-event file ([`psn_sim::trace_export::chrome_trace_json`]) that
//!   loads directly in Perfetto / `chrome://tracing`, with one track per
//!   process and flow arrows binding each send to its delivery;
//! - `jsonl`: `<experiment>-<cell>.jsonl` — one JSON object per trace
//!   record ([`psn_sim::trace_export::jsonl`]), the stream-processing twin
//!   of `--metrics-out`.
//!
//! When no sink is set (the default, and always in `cargo test`), the
//! module is inert: [`is_enabled`] is `false`, experiments skip trace
//! recording they would not otherwise do, and [`emit_cell_trace`] is a
//! no-op — the flag adds zero cost and zero output when absent.

use std::path::PathBuf;
use std::sync::Mutex;

use psn_sim::trace::Trace;
use psn_sim::trace_export;

/// The on-disk format `--trace-out` writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Chrome trace-event JSON, loadable in Perfetto (default).
    #[default]
    Chrome,
    /// One JSON object per trace record, parallel to `--metrics-out`.
    Jsonl,
}

impl TraceFormat {
    /// Parse a `--trace-format` argument.
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "chrome" => Some(TraceFormat::Chrome),
            "jsonl" => Some(TraceFormat::Jsonl),
            _ => None,
        }
    }

    fn extension(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "json",
            TraceFormat::Jsonl => "jsonl",
        }
    }
}

struct Sink {
    dir: PathBuf,
    format: TraceFormat,
    written: usize,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Open `dir` (created if missing) as the process-wide trace sink.
pub fn set_trace_out(dir: &str, format: TraceFormat) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    *SINK.lock().expect("trace sink lock") =
        Some(Sink { dir: PathBuf::from(dir), format, written: 0 });
    Ok(())
}

/// Is a sink open? Experiments use this to decide whether to pay for
/// engine trace recording they would not otherwise do.
pub fn is_enabled() -> bool {
    SINK.lock().expect("trace sink lock").is_some()
}

/// File-name-safe version of a cell label (`p=0.05 seed=3` →
/// `p_0.05_seed_3`).
fn sanitize(cell: &str) -> String {
    cell.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
        .collect()
}

/// Write one trace file for (`experiment`, `cell`). `n` is the number of
/// sensor processes: actors `0..n` are named `sensor <i>` and actor `n`
/// `root` on the Perfetto tracks. No-op without a sink; the trace must be
/// sealed (any trace returned by a finished run is).
pub fn emit_cell_trace(experiment: &str, cell: &str, trace: &Trace, n: usize) {
    let mut guard = SINK.lock().expect("trace sink lock");
    if let Some(sink) = guard.as_mut() {
        let name = |a: usize| if a == n { "root".to_string() } else { format!("sensor {a}") };
        let body = match sink.format {
            TraceFormat::Chrome => trace_export::chrome_trace_json(trace, name),
            TraceFormat::Jsonl => trace_export::jsonl(trace),
        };
        let file = format!("{experiment}-{}.{}", sanitize(cell), sink.format.extension());
        let path = sink.dir.join(file);
        match std::fs::write(&path, body) {
            Ok(()) => sink.written += 1,
            Err(e) => eprintln!("trace-out: write {} failed: {e}", path.display()),
        }
    }
}

/// Close the sink and report how many cell files were written.
pub fn finish() -> usize {
    SINK.lock().expect("trace sink lock").take().map_or(0, |s| s.written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::time::SimTime;
    use psn_sim::trace::{MsgId, TraceKind};

    #[test]
    fn disabled_sink_is_inert_and_enabled_sink_writes_files() {
        // The sink is process-global; one test covers both states in order.
        assert!(!is_enabled());
        let mut trace = Trace::enabled();
        trace.record(
            SimTime::from_millis(1),
            TraceKind::Sent { from: 0, to: 1, bytes: 8, msg: MsgId(0) },
        );
        trace.record(
            SimTime::from_millis(2),
            TraceKind::Delivered { from: 0, to: 1, msg: MsgId(0) },
        );
        trace.seal();
        emit_cell_trace("e0", "n=1", &trace, 1); // no-op

        let dir = std::env::temp_dir().join("psn_trace_out_test");
        let dir = dir.to_str().expect("utf-8 temp path");
        set_trace_out(dir, TraceFormat::Chrome).expect("open sink");
        assert!(is_enabled());
        emit_cell_trace("e0", "p=0.05 seed=3", &trace, 1);
        assert_eq!(finish(), 1);
        assert!(!is_enabled());

        let path = std::path::Path::new(dir).join("e0-p_0.05_seed_3.json");
        let text = std::fs::read_to_string(&path).expect("read back");
        let summary = trace_export::validate_chrome(&text).expect("valid chrome trace");
        assert!(summary.events > 0);
        assert_eq!(summary.flows, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn format_parsing_and_sanitizing() {
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert_eq!(sanitize("p=0.25, n=4"), "p_0.25__n_4");
    }
}
