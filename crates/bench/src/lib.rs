//! # psn-bench — experiment harness and benchmarks
//!
//! - [`experiments`] — E1–E10, one per quantitative claim in the paper
//!   (run them with `cargo run --release -p psn-bench --bin experiments`);
//! - [`table`] — markdown/CSV result tables;
//! - [`common`] — shared scaffolding (controlled two-pulse scenarios,
//!   strobe-stamp histories, per-clock-family byte accounting);
//! - [`metrics_out`] — the `--metrics-out` JSONL sink: one line per
//!   instrumented experiment cell, carrying the cell parameters and a full
//!   [`psn_sim::metrics::MetricsSnapshot`];
//! - [`trace_out`] — the `--trace-out` sink: one causally stamped
//!   structured trace file per experiment cell (Chrome trace-event JSON
//!   for Perfetto, or JSONL);
//! - [`telemetry_out`] — the `--telemetry-out` sink: one JSONL record per
//!   cell with both the metrics and the phase-profiling
//!   [`psn_sim::telemetry::TelemetrySnapshot`], consumed by the
//!   `psn-profile` report tool.
//!
//! Criterion micro-benchmarks live in `benches/` (clock operations,
//! detectors, lattice enumeration, engine throughput, sweep scaling).

#![warn(missing_docs)]

pub mod common;
pub mod experiments;
pub mod metrics_out;
pub mod table;
pub mod telemetry_out;
pub mod trace_out;

pub use table::Table;
