//! Shared scaffolding for the experiments.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use psn_clocks::VectorStamp;
use psn_core::{ExecutionConfig, ExecutionTrace, ShardPlanKind, SpeculationMode};
use psn_lattice::History;
use psn_sim::delay::DelayModel;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::{Scenario, SensorAssignment};
use psn_world::{AttrKey, AttrValue, ObjectSpec, Timeline, WorldEvent};

/// A controlled two-sensor scenario: attribute A (object 0) is true during
/// `[a_on, a_off)` and attribute B (object 1) during `[b_on, b_off)` — the
/// knob experiments E1 and E6 turn to create precise overlaps/races.
pub fn two_pulse_scenario(
    a_on: SimTime,
    a_off: SimTime,
    b_on: SimTime,
    b_off: SimTime,
) -> Scenario {
    let objects = vec![
        ObjectSpec { id: 0, name: "A".into(), attrs: vec![("v".into(), AttrValue::Bool(false))] },
        ObjectSpec { id: 1, name: "B".into(), attrs: vec![("v".into(), AttrValue::Bool(false))] },
    ];
    let ev = |id: usize, at: SimTime, obj: usize, v: bool| WorldEvent {
        id,
        at,
        key: AttrKey::new(obj, 0),
        value: AttrValue::Bool(v),
        caused_by: vec![],
    };
    let events = vec![
        ev(0, a_on, 0, true),
        ev(1, a_off, 0, false),
        ev(2, b_on, 1, true),
        ev(3, b_off, 1, false),
    ];
    Scenario {
        name: "two-pulse".into(),
        timeline: Timeline::new(objects, events),
        sensing: SensorAssignment {
            watches: vec![vec![AttrKey::new(0, 0)], vec![AttrKey::new(1, 0)]],
        },
    }
}

/// The conjunction A ∧ B over the two-pulse scenario.
pub fn two_pulse_predicate() -> psn_predicates::Predicate {
    psn_predicates::Predicate::Relational(
        psn_predicates::Expr::var(AttrKey::new(0, 0))
            .and(psn_predicates::Expr::var(AttrKey::new(1, 0))),
    )
}

/// Extract the strobe-vector stamp history of the *sense* events, per
/// sensor process — the input to the slim-lattice measurements (E4).
pub fn strobe_history(trace: &ExecutionTrace) -> History {
    let mut stamps: Vec<Vec<VectorStamp>> = vec![Vec::new(); trace.n];
    let mut events: Vec<_> = trace.log.sense_events();
    events.sort_by_key(|e| (e.process, e.seq));
    for e in events {
        if e.process < trace.n {
            stamps[e.process].push(e.stamps.strobe_vector.clone());
        }
    }
    History::new(stamps)
}

/// Process-wide engine shard count for experiment cells (`experiments
/// --shards N`). `1` (default) runs the sequential loop.
static SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Process-wide delay floor in ms (`experiments --delay-floor-ms X`).
/// Raising the floor gives the conservative sharded engine a nonzero
/// lookahead — a pure Δ-bounded model draws from `[0, Δ]`, whose zero
/// minimum forces the sequential fallback.
static DELAY_FLOOR_MS: AtomicU64 = AtomicU64::new(0);

/// Set the shard count every subsequent [`delta_config`] cell runs on.
pub fn set_shards(k: usize) {
    SHARDS.store(k.max(1), Ordering::Relaxed);
}

/// The configured shard count.
pub fn shards() -> usize {
    SHARDS.load(Ordering::Relaxed)
}

/// Set the delay floor (minimum network delay, ms) for subsequent
/// [`delta_config`] cells. The CI shard-equivalence job raises this for
/// *both* the sequential and the sharded leg, so the two runs stay
/// comparable while the sharded one has real lookahead.
pub fn set_delay_floor_ms(ms: u64) {
    DELAY_FLOOR_MS.store(ms, Ordering::Relaxed);
}

/// The configured delay floor.
pub fn delay_floor() -> SimDuration {
    SimDuration::from_millis(DELAY_FLOOR_MS.load(Ordering::Relaxed))
}

/// Process-wide shard plan (`experiments --shard-plan NAME`), stored as an
/// index into the [`ShardPlanKind`] variants. Only consulted when
/// `--shards` > 1.
static SHARD_PLAN: AtomicUsize = AtomicUsize::new(0);

/// Process-wide window discipline (`experiments --optimistic`): when set,
/// sharded cells run the Time Warp path instead of conservative barriers.
static OPTIMISTIC: AtomicBool = AtomicBool::new(false);

/// Set the shard plan every subsequent [`delta_config`] cell uses.
pub fn set_shard_plan(kind: ShardPlanKind) {
    let idx = match kind {
        ShardPlanKind::Contiguous => 0,
        ShardPlanKind::Interleaved => 1,
        ShardPlanKind::Hash => 2,
        ShardPlanKind::Affinity => 3,
    };
    SHARD_PLAN.store(idx, Ordering::Relaxed);
}

/// The configured shard plan.
pub fn shard_plan() -> ShardPlanKind {
    match SHARD_PLAN.load(Ordering::Relaxed) {
        1 => ShardPlanKind::Interleaved,
        2 => ShardPlanKind::Hash,
        3 => ShardPlanKind::Affinity,
        _ => ShardPlanKind::Contiguous,
    }
}

/// Parse a shard-plan name as the CLIs accept it. "roundrobin" (and the
/// hyphenated spelling) is an alias for the interleaved plan.
pub fn parse_shard_plan(name: &str) -> Option<ShardPlanKind> {
    match name {
        "contiguous" => Some(ShardPlanKind::Contiguous),
        "interleaved" | "roundrobin" | "round-robin" => Some(ShardPlanKind::Interleaved),
        "hash" => Some(ShardPlanKind::Hash),
        "affinity" => Some(ShardPlanKind::Affinity),
        _ => None,
    }
}

/// Enable or disable optimistic (Time Warp) execution for subsequent
/// [`delta_config`] cells.
pub fn set_optimistic(on: bool) {
    OPTIMISTIC.store(on, Ordering::Relaxed);
}

/// Whether optimistic execution is enabled.
pub fn optimistic() -> bool {
    OPTIMISTIC.load(Ordering::Relaxed)
}

/// A Δ-bounded execution config with the given Δ and seed, honoring the
/// process-wide [`set_shards`] / [`set_delay_floor_ms`] / [`set_shard_plan`]
/// / [`set_optimistic`] overrides.
pub fn delta_config(delta: SimDuration, seed: u64) -> ExecutionConfig {
    let floor = delay_floor();
    let delay = if delta.is_zero() && floor.is_zero() {
        DelayModel::Synchronous
    } else {
        DelayModel::DeltaBounded { min: floor, max: delta.max(floor) }
    };
    let speculation =
        if optimistic() { SpeculationMode::Optimistic } else { SpeculationMode::Conservative };
    ExecutionConfig {
        delay,
        seed,
        shards: shards(),
        shard_plan: Some(shard_plan()),
        speculation: Some(speculation),
        ..Default::default()
    }
}

/// Analytic per-family wire bytes for one execution (the strobe payloads
/// share one simulated message; experiment E7 separates them):
/// each strobe broadcast reaches n−1 + 1 (root) peers.
pub struct FamilyBytes {
    /// O(1) scalar strobe payloads.
    pub strobe_scalar: u64,
    /// O(n) vector strobe payloads.
    pub strobe_vector: u64,
    /// Report piggybacks for the causal clocks (one vector per report).
    pub causal_piggyback: u64,
}

/// Compute the analytic byte costs for a trace.
pub fn family_bytes(trace: &ExecutionTrace) -> FamilyBytes {
    let n = trace.n as u64;
    let receivers = n; // n−1 peers + the root
    let broadcasts = trace.net.broadcasts;
    let reports = trace.log.reports.len() as u64;
    FamilyBytes {
        strobe_scalar: broadcasts * receivers * 8,
        strobe_vector: broadcasts * receivers * 8 * (n + 1),
        causal_piggyback: reports * 8 * (n + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_core::run_execution;
    use psn_world::truth_intervals;

    #[test]
    fn two_pulse_truth_is_the_overlap() {
        let s = two_pulse_scenario(
            SimTime::from_millis(100),
            SimTime::from_millis(300),
            SimTime::from_millis(250),
            SimTime::from_millis(500),
        );
        let pred = two_pulse_predicate();
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        assert_eq!(truth.len(), 1);
        assert_eq!(truth[0].start, SimTime::from_millis(250));
        assert_eq!(truth[0].end, Some(SimTime::from_millis(300)));
    }

    #[test]
    fn disjoint_pulses_never_hold() {
        let s = two_pulse_scenario(
            SimTime::from_millis(100),
            SimTime::from_millis(200),
            SimTime::from_millis(300),
            SimTime::from_millis(400),
        );
        let pred = two_pulse_predicate();
        assert!(truth_intervals(&s.timeline, |st| pred.eval_state(st)).is_empty());
    }

    #[test]
    fn strobe_history_shape() {
        let s = two_pulse_scenario(
            SimTime::from_millis(100),
            SimTime::from_millis(300),
            SimTime::from_millis(250),
            SimTime::from_millis(500),
        );
        let trace = run_execution(&s, &delta_config(SimDuration::from_millis(10), 1));
        let h = strobe_history(&trace);
        assert_eq!(h.num_processes(), 2);
        assert_eq!(h.total_events(), 4);
    }

    #[test]
    fn family_bytes_scale() {
        let s = two_pulse_scenario(
            SimTime::from_millis(100),
            SimTime::from_millis(300),
            SimTime::from_millis(250),
            SimTime::from_millis(500),
        );
        let trace = run_execution(&s, &delta_config(SimDuration::from_millis(10), 1));
        let fb = family_bytes(&trace);
        assert!(fb.strobe_vector > fb.strobe_scalar, "O(n) > O(1) payloads");
        assert_eq!(fb.strobe_vector, fb.strobe_scalar * 3, "n+1 = 3 components");
    }
}
