//! E10 — The §3.3 trade-off matrix: the four options for implementing the
//! single time axis (perfect physical, ε-synced physical, logical scalar
//! strobes, logical vector strobes), compared on one execution for
//! accuracy, message cost, and assumptions.

use psn_core::run_execution;
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;

use crate::common::{delta_config, family_bytes};
use crate::table::Table;

/// Run E10.
pub fn run(quick: bool) -> Table {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: if quick { 2.0 } else { 4.0 },
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(1200),
        capacity: if quick { 120 } else { 240 },
    };
    let delta = SimDuration::from_millis(500);
    let scenario = exhibition::generate(&params, 31);
    let pred = Predicate::occupancy_over(params.doors, params.capacity);
    let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
    let trace = run_execution(&scenario, &delta_config(delta, 3));
    let init = scenario.timeline.initial_state();
    let fb = family_bytes(&trace);
    let events = trace.log.sense_events().len().max(1) as u64;

    let mut table = Table::new(
        "E10 — single-time-axis implementation options (one execution, Δ = 500 ms)",
        &[
            "option",
            "FP",
            "FN",
            "borderline",
            "precision",
            "recall",
            "bytes/event",
            "needs lower-layer sync?",
        ],
    );

    let rows: Vec<(Discipline, &str, u64, &str)> = vec![
        (Discipline::Oracle, "perfect physical (ideal, impractical)", 0, "yes (perfect)"),
        (Discipline::SyncedPhysical, "ε-synced physical (RBS/TPSN)", 0, "yes (ε service)"),
        (Discipline::UnsyncedPhysical, "raw local oscillators", 0, "no"),
        (Discipline::ScalarStrobe, "logical scalar strobes (SSC)", fb.strobe_scalar / events, "no"),
        (Discipline::VectorStrobe, "logical vector strobes (SVC)", fb.strobe_vector / events, "no"),
    ];

    for (d, label, bytes, sync) in rows {
        let det = detect_occurrences(&trace, &pred, &init, d);
        let r = score(
            &det,
            &truth,
            params.duration,
            SimDuration::from_millis(1200),
            BorderlinePolicy::AsPositive,
        );
        table.row(vec![
            label.to_string(),
            r.false_positives.to_string(),
            r.false_negatives.to_string(),
            r.borderline.to_string(),
            format!("{:.3}", r.precision()),
            format!("{:.3}", r.recall()),
            bytes.to_string(),
            sync.to_string(),
        ]);
    }
    table.note(
        "Paper's §3.3 trade-off: physical sync buys accuracy at the cost of a \
         lower-layer service (energy, cross-layer dependence, privacy); strobe \
         clocks avoid the service at the cost of race-window errors — scalars \
         cheap (O(1)) but FP+FN, vectors O(n) with the borderline bin.",
    );
    table
}
