//! E4 — The slim-lattice postulate (paper §4.2.4): strobe traffic prunes
//! the O(pⁿ) lattice of consistent global states; "the faster the strobe
//! transmissions, the leaner is the lattice. When Δ = 0, the result is a
//! linear order of np states."
//!
//! Setup: a low-rate exhibition run (few events per sensor so the full
//! lattice is enumerable); sweep Δ from 0 to "effectively never delivered"
//! and enumerate the lattice induced by the strobe-vector stamps of the
//! sense events.

use psn_core::run_execution;
use psn_lattice::slim::measure;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};

use crate::common::{delta_config, strobe_history};
use crate::table::Table;

/// Run E4.
pub fn run(quick: bool) -> Table {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 0.4,
        mean_stay: SimDuration::from_secs(30),
        duration: SimTime::from_secs(60),
        capacity: 5,
    };
    let deltas_ms: &[u64] = if quick {
        &[0, 500, 5_000, 600_000]
    } else {
        &[0, 100, 500, 2_000, 5_000, 20_000, 600_000]
    };
    let cap = 20_000_000u64;

    let mut table = Table::new(
        "E4 — slim lattice: consistent global states vs Δ (strobe-vector order)",
        &["Δ", "events (n·p)", "states", "chain (np+1)", "O(pⁿ) bound", "width", "slimness"],
    );

    let scenario = exhibition::generate(&params, 77);
    for &delta_ms in deltas_ms {
        let trace = run_execution(&scenario, &delta_config(SimDuration::from_millis(delta_ms), 5));
        let h = strobe_history(&trace);
        let r = measure(&h, cap);
        table.row(vec![
            if delta_ms >= 600_000 {
                "∞ (never)".into()
            } else {
                SimDuration::from_millis(delta_ms).to_string()
            },
            h.total_events().to_string(),
            format!("{}{}", r.states, if r.truncated { "+" } else { "" }),
            r.chain.to_string(),
            format!("{:.0}", r.unconstrained),
            r.width.to_string(),
            format!("{:.4}", r.slimness),
        ]);
    }
    table.note(
        "Paper claim: Δ = 0 collapses the lattice to the chain of np+1 states \
         (width 1); slower strobes fatten it monotonically toward the \
         unconstrained O(pⁿ) bound (slimness → 1).",
    );
    table
}
