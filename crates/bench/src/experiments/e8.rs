//! E8 — Accuracy vs the event-rate·Δ product (paper §3.3 and §6): strobe
//! clocks are adequate "when (a) the number of processes is low and/or
//! (b) the rate of occurrence of sensed events is comparatively low"
//! relative to Δ; accuracy degrades as rate·Δ grows toward and past 1.
//!
//! Setup: exhibition hall at fixed Δ = 500 ms, sweeping the arrival rate
//! over two orders of magnitude (so rate·Δ crosses 1), with the capacity
//! scaled to the expected occupancy so threshold crossings occur at every
//! rate.

use psn_core::run_execution;
use psn_predicates::{
    detect_occurrences, race_probability, score, BorderlinePolicy, Discipline, Predicate,
};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;

use crate::common::delta_config;
use crate::table::Table;

/// Run E8.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let delta = SimDuration::from_millis(500);
    // Total event rate ≈ 2 × arrival rate (entries + exits).
    let rates: &[f64] = &[0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0];

    let mut table = Table::new(
        "E8 — vector-strobe accuracy vs event-rate·Δ (Δ = 500 ms)",
        &[
            "λ (1/s)",
            "rate·Δ",
            "truth",
            "TP",
            "FP",
            "FN",
            "bline frac",
            "analytic race",
            "recall",
            "precision",
        ],
    );

    for &rate in rates {
        let mean_stay = SimDuration::from_secs(60);
        let capacity = (rate * 60.0).round() as i64; // ≈ expected occupancy
        let params = ExhibitionParams {
            doors: 4,
            arrival_rate_hz: rate,
            mean_stay,
            duration: SimTime::from_secs(900),
            capacity: capacity.max(2),
        };
        let cells: Vec<(usize, usize, usize, usize, usize, usize)> =
            run_sweep_auto(&seeds, |_, &seed| {
                let scenario = exhibition::generate(&params, 4000 + seed);
                let pred = Predicate::occupancy_over(params.doors, params.capacity);
                let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                let trace = run_execution(&scenario, &delta_config(delta, seed));
                let det = detect_occurrences(
                    &trace,
                    &pred,
                    &scenario.timeline.initial_state(),
                    Discipline::VectorStrobe,
                );
                let n_det = det.len();
                let n_bline = det.iter().filter(|d| d.borderline).count();
                let r = score(
                    &det,
                    &truth,
                    params.duration,
                    SimDuration::from_millis(1200),
                    BorderlinePolicy::AsPositive,
                );
                (
                    truth.len(),
                    r.true_positives,
                    r.false_positives,
                    r.false_negatives,
                    n_det,
                    n_bline,
                )
            });
        let s = cells.iter().fold((0, 0, 0, 0, 0, 0), |a, c| {
            (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5)
        });
        let recall = if s.0 == 0 { 1.0 } else { s.1 as f64 / s.0 as f64 };
        let precision = if s.1 + s.2 == 0 { 1.0 } else { s.1 as f64 / (s.1 + s.2) as f64 };
        let bline_frac = if s.4 == 0 { 0.0 } else { s.5 as f64 / s.4 as f64 };
        // World event rate = entries + exits ≈ 2λ.
        let rate_delta = 2.0 * rate * delta.as_secs_f64();
        table.row(vec![
            format!("{rate}"),
            format!("{rate_delta:.2}"),
            s.0.to_string(),
            s.1.to_string(),
            s.2.to_string(),
            s.3.to_string(),
            format!("{bline_frac:.3}"),
            format!("{:.3}", race_probability(2.0 * rate, 4, delta)),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
    }
    table.note(
        "Paper claim: accuracy is high while rate·Δ ≪ 1 (events rare relative to \
         Δ) and degrades as the product approaches/passes 1 — more detections are \
         race-involved (borderline fraction grows) and precision falls.",
    );
    table
}
