//! E9 — Message-loss locality (paper §4.2.2): "A message loss may result
//! in the wrong detection of the predicate in the temporal vicinity of the
//! lost message. However, there will be no long-term ripple effects of the
//! message loss on later detection."
//!
//! Setup: exhibition hall under increasing Bernoulli strobe/report loss.
//! For each run we record the ground-truth times of every lost message
//! (from the network trace) and score the detector twice: over *all* truth
//! occurrences, and over only the occurrences **far** from any loss
//! (no loss within a vicinity window). The claim holds if far-from-loss
//! recall stays ≈ 1 while overall recall degrades with the loss rate.

use psn_core::{run_execution, ExecutionConfig};
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::loss::LossModel;
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_sim::trace_analysis::TraceAnalysis;
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::{truth_intervals, TruthInterval};

use crate::table::Table;
use crate::trace_out;

/// Run E9.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let loss_rates: &[f64] = &[0.0, 0.01, 0.05, 0.1, 0.25];
    let delta = SimDuration::from_millis(300);
    let vicinity = SimDuration::from_secs(3);
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(900),
        capacity: 180,
    };

    let mut table = Table::new(
        "E9 — loss locality: overall vs far-from-loss recall (vicinity = 3 s)",
        &["loss p", "lost msgs", "truth", "recall (all)", "truth far", "recall (far)", "FP"],
    );

    for &p in loss_rates {
        let cells: Vec<(u64, usize, usize, usize, usize, usize)> =
            run_sweep_auto(&seeds, |_, &seed| {
                let scenario = exhibition::generate(&params, 7000 + seed);
                let pred = Predicate::occupancy_over(params.doors, params.capacity);
                let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                let cfg = ExecutionConfig {
                    delay: psn_sim::delay::DelayModel::delta(delta),
                    loss: if p == 0.0 { LossModel::None } else { LossModel::Bernoulli { p } },
                    seed,
                    record_sim_trace: true,
                    shards: crate::common::shards(),
                    ..Default::default()
                };
                let trace = run_execution(&scenario, &cfg);
                trace_out::emit_cell_trace(
                    "e9",
                    &format!("p={p} seed={seed}"),
                    &trace.sim,
                    trace.n,
                );
                // The happened-before analysis indexes loss times once;
                // its vicinity query is the loss-locality cross-check the
                // table note appeals to.
                let analysis = TraceAnalysis::build(&trace.sim);
                let det = detect_occurrences(
                    &trace,
                    &pred,
                    &scenario.timeline.initial_state(),
                    Discipline::VectorStrobe,
                );
                let tol = SimDuration::from_millis(800);
                let all = score(&det, &truth, params.duration, tol, BorderlinePolicy::AsPositive);
                // Occurrences with no loss within the vicinity window.
                let far: Vec<TruthInterval> = truth
                    .iter()
                    .copied()
                    .filter(|t| {
                        !analysis.near_any_loss(t.start, t.end.unwrap_or(params.duration), vicinity)
                    })
                    .collect();
                let far_r = score(&det, &far, params.duration, tol, BorderlinePolicy::AsPositive);
                (
                    trace.net.messages_lost,
                    truth.len(),
                    all.true_positives,
                    far.len(),
                    far_r.true_positives,
                    all.false_positives,
                )
            });
        let s = cells.iter().fold((0, 0, 0, 0, 0, 0), |a, c| {
            (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5)
        });
        let recall_all = if s.1 == 0 { 1.0 } else { s.2 as f64 / s.1 as f64 };
        let recall_far = if s.3 == 0 { 1.0 } else { s.4 as f64 / s.3 as f64 };
        table.row(vec![
            format!("{p}"),
            s.0.to_string(),
            s.1.to_string(),
            format!("{recall_all:.3}"),
            s.3.to_string(),
            format!("{recall_far:.3}"),
            s.5.to_string(),
        ]);
    }
    table.note(
        "Paper claim: losses corrupt detection only in their temporal vicinity — \
         occurrences far from every lost message are detected as reliably as in \
         the lossless run (recall(far) ≈ recall at p=0), with no long-term ripple.",
    );
    table
}
