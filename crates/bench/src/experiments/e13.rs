//! E13 — strobe corruption: what a garbled stamp does to each family.
//! The feared failure mode is a cascade: a corrupted scalar strobe value
//! is max-merged by its receiver, re-broadcast, and within one strobe
//! round the *entire system* has ratcheted up to the bogus maximum. The
//! measured result is two-sided. The ratchet itself is what keeps
//! *ordering* damage local: values 1..bump below the bogus maximum are
//! simply never assigned again, so only reports stamped inside the one
//! propagation round (≈ Δ) interleave wrongly — detection accuracy stays
//! near baseline even under heavy corruption, the same temporal locality
//! as message loss (E9). What corruption permanently destroys is
//! *calibration*: every accepted bump inflates the stamp scale for the
//! rest of the run (monotone clocks never come back down), voiding the
//! stamp ≈ event-count reading that the wire-size and lattice-depth
//! analyses rest on — and a scalar bump lands in the single global
//! ordering coordinate, where a vector bump lands in one of n
//! components. Because strobes carry an integrity checksum, a receiver
//! can instead *quarantine* (drop) garbled strobes: corruption then
//! degrades into plain strobe loss and the stamp scale stays exact.
//!
//! Setup: exhibition hall with a global `ChannelEffect::Corrupt` rule at
//! a sweep of per-message probabilities, with strobe quarantine off/on.
//! Inflation× = max strobe-scalar stamp seen at the root / total sense
//! events (≈ 1 when stamps still count events).

use psn_core::process::StrobePolicy;
use psn_core::{run_execution, ExecutionConfig};
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::fault::{ChannelEffect, ChannelFaultRule, FaultScript, FaultSpec};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;

use crate::table::Table;
use crate::trace_out;

/// Run E13.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let corrupt_probs: &[f64] = &[0.0, 0.02, 0.1];
    let delta = SimDuration::from_millis(300);
    let tol = SimDuration::from_millis(800);
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(900),
        capacity: 180,
    };

    let mut table = Table::new(
        "E13 — strobe corruption: ordering stays local (max-merge ratchet), stamp scale \
         inflates; checksum quarantine restores calibration",
        &[
            "corrupt p",
            "quarantine",
            "corrupted",
            "truth",
            "scalar recall / FP",
            "vector recall / FP",
            "stamp inflation (×)",
        ],
    );

    for &p in corrupt_probs {
        for &quarantine in &[false, true] {
            if p == 0.0 && quarantine {
                continue; // nothing to quarantine: identical to the row above
            }
            // (corrupted, truth, s_tp, s_fp, v_tp, v_fp, inflation)
            let cells: Vec<(u64, usize, usize, usize, usize, usize, f64)> =
                run_sweep_auto(&seeds, |_, &seed| {
                    let scenario = exhibition::generate(&params, 8800 + seed);
                    let pred = Predicate::occupancy_over(params.doors, params.capacity);
                    let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                    let script = if p == 0.0 {
                        FaultScript::new()
                    } else {
                        FaultScript::new().with(
                            SimTime::from_secs(0),
                            FaultSpec::Channel(ChannelFaultRule {
                                from: None,
                                to: None,
                                prob: p,
                                effect: ChannelEffect::Corrupt,
                                duration: None,
                            }),
                        )
                    };
                    let cfg = ExecutionConfig {
                        delay: psn_sim::delay::DelayModel::delta(delta),
                        strobes: StrobePolicy { quarantine, ..StrobePolicy::default() },
                        seed,
                        record_sim_trace: true,
                        faults: Some(script),
                        shards: crate::common::shards(),
                        ..Default::default()
                    };
                    let trace = run_execution(&scenario, &cfg);
                    trace_out::emit_cell_trace(
                        "e13",
                        &format!("p={p} quarantine={quarantine} seed={seed}"),
                        &trace.sim,
                        trace.n,
                    );
                    let corrupted = trace.faults.as_ref().map(|f| f.corrupted).unwrap_or_default();
                    // Stamp-scale calibration: without corruption the
                    // largest scalar strobe value tracks the system-wide
                    // sense-event count; every accepted bump inflates it.
                    let total_sense: u64 = (0..trace.n)
                        .map(|pr| {
                            trace
                                .log
                                .reports
                                .iter()
                                .filter(|r| r.report.process == pr)
                                .map(|r| r.report.sense_seq as u64)
                                .max()
                                .unwrap_or(0)
                        })
                        .sum();
                    let max_scalar: u64 = trace
                        .log
                        .reports
                        .iter()
                        .map(|r| r.report.stamps.strobe_scalar.value)
                        .max()
                        .unwrap_or(0);
                    let inflation = max_scalar as f64 / total_sense.max(1) as f64;
                    let initial = scenario.timeline.initial_state();
                    let s_det =
                        detect_occurrences(&trace, &pred, &initial, Discipline::ScalarStrobe);
                    let v_det =
                        detect_occurrences(&trace, &pred, &initial, Discipline::VectorStrobe);
                    let pol = BorderlinePolicy::AsPositive;
                    let s = score(&s_det, &truth, params.duration, tol, pol);
                    let v = score(&v_det, &truth, params.duration, tol, pol);
                    (
                        corrupted,
                        truth.len(),
                        s.true_positives,
                        s.false_positives,
                        v.true_positives,
                        v.false_positives,
                        inflation,
                    )
                });
            let s = cells.iter().fold((0, 0, 0, 0, 0, 0, 0.0), |a, c| {
                (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5, a.6 + c.6)
            });
            let rec = |tp: usize| if s.1 == 0 { 1.0 } else { tp as f64 / s.1 as f64 };
            table.row(vec![
                format!("{p}"),
                if quarantine { "on" } else { "off" }.to_string(),
                s.0.to_string(),
                s.1.to_string(),
                format!("{:.3} / {}", rec(s.2), s.3),
                format!("{:.3} / {}", rec(s.4), s.5),
                format!("{:.1}", s.6 / cells.len() as f64),
            ]);
        }
    }
    table.note(
        "Claim: corruption does not cascade into detection errors — the max-merge ratchet \
         re-converges every clock onto the inflated scale within one strobe round, so \
         mis-ordering is confined to the corruption's temporal vicinity and recall/FP stay \
         near the clean run for both strobe families (the E9 locality argument, replayed \
         for corruption). The lasting damage is the stamp scale itself: accepted bumps \
         inflate the strobe clocks by orders of magnitude (inflation ×), breaking the \
         stamp ≈ event-count calibration — globally for the scalar family, per hit \
         component for vectors. Checksum quarantine drops garbled strobes instead, keeping \
         inflation at ≈ 1 while paying only a p-rate strobe loss.",
    );
    table
}
