//! The claim-reproduction experiments E1–E10, the fault-plane
//! resilience experiments E11–E13, the sharded-engine scaling
//! experiment E14, and the streaming-detector memory/fidelity sweep E15.
//!
//! The paper is a model paper with no numbered tables/figures; each module
//! here turns one *quantitative claim in the text* into a measured table
//! (see DESIGN.md §6 for the index and EXPERIMENTS.md for paper-vs-measured).

pub mod ablations;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use crate::table::Table;

/// Run one experiment by id ("e1" … "e15").
pub fn run_one(id: &str, quick: bool) -> Option<Table> {
    match id {
        "e1" => Some(e1::run(quick)),
        "e2" => Some(e2::run(quick)),
        "e3" => Some(e3::run(quick)),
        "e4" => Some(e4::run(quick)),
        "e5" => Some(e5::run(quick)),
        "e6" => Some(e6::run(quick)),
        "e7" => Some(e7::run(quick)),
        "e8" => Some(e8::run(quick)),
        "e9" => Some(e9::run(quick)),
        "e10" => Some(e10::run(quick)),
        "e11" => Some(e11::run(quick)),
        "e12" => Some(e12::run(quick)),
        "e13" => Some(e13::run(quick)),
        "e14" => Some(e14::run(quick)),
        "e15" => Some(e15::run(quick)),
        "a1" => Some(ablations::a1(quick)),
        "a2" => Some(ablations::a2(quick)),
        "a3" => Some(ablations::a3(quick)),
        "a4" => Some(ablations::a4(quick)),
        _ => None,
    }
}

/// All experiment ids, in order (claim reproductions then ablations).
pub const ALL: [&str; 19] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "a1", "a2", "a3", "a4",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_one("e99", true).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Smoke-run the two cheapest experiments end to end; just resolve
        // the rest by name (full quick runs happen in the binary / CI).
        for id in ALL {
            assert!(ALL.contains(&id));
        }
        let t = run_one("e4", true).expect("e4 runs");
        assert!(!t.rows.is_empty());
    }
}
