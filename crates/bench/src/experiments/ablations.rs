//! Ablations of the design choices DESIGN.md calls out.
//!
//! - **A1 — strobe throttling.** SVC1 broadcasts at *every* relevant
//!   event; the paper notes synchronization "need not happen any more
//!   frequently than the local sensing of relevant events" (§4.2) —
//!   i.e. per-event is the maximum useful rate. What does throttling to
//!   every k-th event cost in accuracy, and save in messages?
//! - **A2 — race-window width.** The vector-strobe detector flags a
//!   detection as borderline when a concurrent report lies within w sweep
//!   positions. w trades borderline-bin size (operator noise) against
//!   FP-catching power.
//! - **A3 — differential vector strobes.** The Singhal–Kshemkalyani diff
//!   compression applied to vector strobe payloads: measured bytes vs the
//!   full O(n) payloads and the O(1) scalars, on real executions.

use psn_clocks::{DiffSender, LogicalClock, StrobeVectorClock};
use psn_core::{run_execution, ExecutionConfig, StrobePolicy};
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Expr, Predicate};
use psn_sim::delay::DelayModel;
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::scenarios::structure::{self, StructureParams, ATTR_VIBRATION};
use psn_world::truth_intervals;
use psn_world::AttrKey;

use crate::table::Table;

/// A1 — strobe throttling: accuracy vs message cost.
pub fn a1(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(900),
        capacity: 120,
    };
    let mut table = Table::new(
        "A1 — strobe throttling (broadcast every k-th sense event, Δ = 500 ms)",
        &["k", "broadcasts", "recall", "precision", "borderline"],
    );
    for &k in &[1usize, 2, 4, 8, 16] {
        let cells: Vec<(u64, usize, usize, usize, usize, usize)> =
            run_sweep_auto(&seeds, |_, &seed| {
                let scenario = exhibition::generate(&params, 100 + seed);
                let pred = Predicate::occupancy_over(4, 120);
                let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                let cfg = ExecutionConfig {
                    delay: DelayModel::delta(SimDuration::from_millis(500)),
                    strobes: StrobePolicy { every: k, ..Default::default() },
                    seed,
                    shards: crate::common::shards(),
                    ..Default::default()
                };
                let trace = run_execution(&scenario, &cfg);
                let det = detect_occurrences(
                    &trace,
                    &pred,
                    &scenario.timeline.initial_state(),
                    Discipline::VectorStrobe,
                );
                let bl = det.iter().filter(|d| d.borderline).count();
                let r = score(
                    &det,
                    &truth,
                    params.duration,
                    SimDuration::from_secs(2),
                    BorderlinePolicy::AsPositive,
                );
                (
                    trace.net.broadcasts,
                    truth.len(),
                    r.true_positives,
                    r.false_positives,
                    r.false_negatives,
                    bl,
                )
            });
        let s = cells.iter().fold((0u64, 0, 0, 0, 0, 0), |a, c| {
            (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5)
        });
        let recall = if s.1 == 0 { 1.0 } else { s.2 as f64 / s.1 as f64 };
        let precision = if s.2 + s.3 == 0 { 1.0 } else { s.2 as f64 / (s.2 + s.3) as f64 };
        table.row(vec![
            k.to_string(),
            s.0.to_string(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
            s.5.to_string(),
        ]);
    }
    table.note(
        "Throttling by k divides broadcast cost by ~k. Accuracy degrades because \
         remote clocks catch up k× less often — effectively multiplying the race \
         window. k = 1 (the paper's maximum useful rate) is the accuracy anchor.",
    );
    table
}

/// A2 — race-window width of the borderline classifier.
pub fn a2(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(900),
        capacity: 180,
    };
    // The production classifier uses w = n (the process count). Here we
    // recompute borderline flags at several w from the raw detections'
    // vector stamps, by re-running detection on traces and post-filtering.
    // Since the window is baked into detect_occurrences, we emulate the
    // ablation by comparing the built-in w=n against w=0 (no race info =
    // scalar behaviour) using the scalar discipline as the w=0 arm.
    let mut table = Table::new(
        "A2 — race information ablation: w = 0 (scalar) vs w = n (vector probe)",
        &["arm", "FP", "FN", "FP caught in bin", "recall", "precision"],
    );
    for (label, disc) in [
        ("w=0 (scalar strobes: no race info)", Discipline::ScalarStrobe),
        ("w=n (vector strobes + race probe)", Discipline::VectorStrobe),
    ] {
        let cells: Vec<(usize, usize, usize, usize, usize)> = run_sweep_auto(&seeds, |_, &seed| {
            let scenario = exhibition::generate(&params, 200 + seed);
            let pred = Predicate::occupancy_over(4, 180);
            let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
            let cfg = ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_millis(800)),
                seed,
                shards: crate::common::shards(),
                ..Default::default()
            };
            let trace = run_execution(&scenario, &cfg);
            let det = detect_occurrences(&trace, &pred, &scenario.timeline.initial_state(), disc);
            let r = score(
                &det,
                &truth,
                params.duration,
                SimDuration::from_secs(2),
                BorderlinePolicy::AsPositive,
            );
            (
                truth.len(),
                r.true_positives,
                r.false_positives,
                r.false_negatives,
                r.borderline_false_positives,
            )
        });
        let s = cells
            .iter()
            .fold((0, 0, 0, 0, 0), |a, c| (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4));
        let recall = if s.0 == 0 { 1.0 } else { s.1 as f64 / s.0 as f64 };
        let precision = if s.1 + s.2 == 0 { 1.0 } else { s.1 as f64 / (s.1 + s.2) as f64 };
        table.row(vec![
            label.to_string(),
            s.2.to_string(),
            s.3.to_string(),
            s.4.to_string(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
    }
    table.note(
        "Without race information (scalar arm) every FP/FN is silent; the vector \
         probe arm catches its FPs in the borderline bin and recovers FNs as \
         borderline blips — the value of the O(n) payload.",
    );
    table
}

/// A3 — differential compression of vector strobes.
pub fn a3(quick: bool) -> Table {
    let ns: &[usize] = if quick { &[4, 16, 64] } else { &[4, 8, 16, 32, 64] };
    let events_per_node = 20usize;
    let mut table = Table::new(
        "A3 — differential vector strobes (Singhal–Kshemkalyani) vs full payloads",
        &["n", "full-vector B", "diff B", "scalar B", "diff/full", "diff/scalar"],
    );
    for &n in ns {
        // Hot-spot sensing (one busy door): process 0 produces 9 of every
        // 10 events, the rest rotate through the cold processes — the
        // realistic skew where diffs pay off. Strobes deliver before the
        // next event (Δ = 0); each broadcast goes to n−1 peers.
        let mut clocks: Vec<StrobeVectorClock> =
            (0..n).map(|i| StrobeVectorClock::new(i, n)).collect();
        let mut senders: Vec<DiffSender> = (0..n).map(|_| DiffSender::new()).collect();
        let mut full_bytes = 0u64;
        let mut diff_bytes = 0u64;
        let mut scalar_bytes = 0u64;
        let mut broadcast =
            |p: usize, clocks: &mut Vec<StrobeVectorClock>, senders: &mut Vec<DiffSender>| {
                let stamp = clocks[p].on_local_event();
                for (q, clock) in clocks.iter_mut().enumerate() {
                    if q == p {
                        continue;
                    }
                    full_bytes += 8 * n as u64;
                    scalar_bytes += 8;
                    diff_bytes += senders[p].diff_for(q, &stamp).wire_size() as u64;
                    clock.on_strobe(&stamp);
                }
            };
        for cycle in 0..(events_per_node * n / 10).max(1) {
            for _ in 0..9 {
                broadcast(0, &mut clocks, &mut senders);
            }
            broadcast(1 + cycle % (n - 1), &mut clocks, &mut senders);
        }
        table.row(vec![
            n.to_string(),
            full_bytes.to_string(),
            diff_bytes.to_string(),
            scalar_bytes.to_string(),
            format!("{:.3}", diff_bytes as f64 / full_bytes as f64),
            format!("{:.2}", diff_bytes as f64 / scalar_bytes as f64),
        ]);
    }
    table.note(
        "Under skewed sensing, a busy process's consecutive strobes differ from \
         what it last sent mostly in its own component: diffs stay near the O(1) \
         scalar cost while full vectors pay O(n) every time. (Under uniform \
         all-to-all traffic every component changes between sends and diffs do \
         NOT help — ~1.5× overhead from the index bytes; measured separately.)",
    );
    table
}

/// A4 — structure-monitoring stress: bursts of covertly-coupled events.
///
/// Shocks propagating through a structure produce clusters of events at
/// different sensors separated by ~80 ms — *every* occurrence is a race
/// when Δ is comparable to the coupling delay. The borderline bin is the
/// difference between silent errors and flagged uncertainty.
pub fn a4(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let mut table = Table::new(
        "A4 — structure monitoring: burst races (coupling delay 80 ms)",
        &["Δ", "truth", "TP", "FP", "FN", "bline frac", "recall", "precision"],
    );
    for &delta_ms in &[10u64, 80, 300, 1000] {
        let cells: Vec<(usize, usize, usize, usize, usize, usize)> =
            run_sweep_auto(&seeds, |_, &seed| {
                let params = StructureParams::default();
                let scenario = structure::generate(&params, 300 + seed);
                // Alarm: at least 3 segments vibrating simultaneously.
                let pred = Predicate::Relational(
                    Expr::Sum(
                        (0..params.segments)
                            .map(|s| Expr::var(AttrKey::new(s, ATTR_VIBRATION)).gt(Expr::int(0)))
                            .collect(),
                    )
                    .ge(Expr::int(3)),
                );
                let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                let cfg = ExecutionConfig {
                    delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
                    seed,
                    shards: crate::common::shards(),
                    ..Default::default()
                };
                let trace = run_execution(&scenario, &cfg);
                let det = detect_occurrences(
                    &trace,
                    &pred,
                    &scenario.timeline.initial_state(),
                    Discipline::VectorStrobe,
                );
                let n_det = det.len();
                let bl = det.iter().filter(|d| d.borderline).count();
                let r = score(
                    &det,
                    &truth,
                    params.duration,
                    SimDuration::from_millis(2 * delta_ms + 200),
                    BorderlinePolicy::AsPositive,
                );
                (truth.len(), r.true_positives, r.false_positives, r.false_negatives, n_det, bl)
            });
        let s = cells.iter().fold((0, 0, 0, 0, 0, 0), |a, c| {
            (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5)
        });
        let recall = if s.0 == 0 { 1.0 } else { s.1 as f64 / s.0 as f64 };
        let precision = if s.1 + s.2 == 0 { 1.0 } else { s.1 as f64 / (s.1 + s.2) as f64 };
        let bline = if s.4 == 0 { 0.0 } else { s.5 as f64 / s.4 as f64 };
        table.row(vec![
            SimDuration::from_millis(delta_ms).to_string(),
            s.0.to_string(),
            s.1.to_string(),
            s.2.to_string(),
            s.3.to_string(),
            format!("{bline:.3}"),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
    }
    table.note(
        "Coupled bursts put most detections in the borderline bin at ANY Δ \
         (simultaneous ring-downs are genuine races); as Δ grows past the 80 ms \
         coupling delay the bin saturates toward 1.0 — zero silent errors \
         throughout, but certainty comes only from keeping Δ below the \
         structural timescale. The burst-race regime is the stress case for \
         the §5 consensus algorithm.",
    );
    table
}
