//! E3 — Detection probability of `Definitely(φ)` vs mean message delay
//! (paper §3.3, importing the \[17\] smart-office result: "despite
//! increasing the average message delay over a wide range, the probability
//! of correct detection is quite high").
//!
//! Setup: the smart office with a genuinely distributed conjunctive
//! predicate (motion in two different rooms simultaneously); detect its
//! `Definitely` occurrences from strobe-vector-stamped intervals; sweep
//! the mean of an *unbounded* exponential delay across three orders of
//! magnitude.

use psn_core::{run_execution, ExecutionConfig};
use psn_predicates::{
    detect_conjunctive, score, BorderlinePolicy, Conjunct, Detection, Expr, Predicate, StampFamily,
};
use psn_sim::delay::DelayModel;
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::office::{self, OfficeParams};
use psn_world::{truth_intervals, AttrKey};

use crate::table::Table;

fn conjuncts() -> Vec<Conjunct> {
    vec![
        Conjunct { process: 1, expr: Expr::var(AttrKey::new(1, 1)) },
        Conjunct { process: 2, expr: Expr::var(AttrKey::new(2, 1)) },
    ]
}

/// Run E3.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 4 } else { 10 }).collect();
    let delays_ms: &[u64] = &[50, 200, 500, 1000, 2000, 5000, 10_000];
    let params = OfficeParams {
        rooms: 4,
        persons: 3,
        mean_dwell: SimDuration::from_secs(120),
        duration: SimTime::from_secs(5400),
        ..Default::default()
    };

    let mut table = Table::new(
        "E3 — Definitely(motion@room1 ∧ motion@room2) recall vs mean delay (smart office)",
        &["mean delay", "truth occ", "definite det", "recall", "precision"],
    );

    for &delay_ms in delays_ms {
        let cells: Vec<(usize, usize, usize, usize)> = run_sweep_auto(&seeds, |_, &seed| {
            let scenario = office::generate(&params, 300 + seed);
            let pred = Predicate::Conjunctive(conjuncts());
            let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
            let cfg = ExecutionConfig {
                delay: DelayModel::Exponential {
                    mean: SimDuration::from_millis(delay_ms),
                    cap: None,
                },
                fifo: false,
                seed,
                shards: crate::common::shards(),
                ..Default::default()
            };
            let trace = run_execution(&scenario, &cfg);
            let occurrences = detect_conjunctive(
                &trace,
                &conjuncts(),
                &scenario.timeline.initial_state(),
                StampFamily::StrobeVector,
            );
            let detections: Vec<Detection> = occurrences
                .iter()
                .filter(|o| o.definitely)
                .map(|o| Detection { start: o.truth_start, end: o.truth_end, borderline: false })
                .collect();
            let tol = SimDuration::from_millis(6 * delay_ms + 1000);
            let r = score(&detections, &truth, params.duration, tol, BorderlinePolicy::AsPositive);
            (truth.len(), detections.len(), r.true_positives, r.false_positives)
        });
        let (truth, det, tp, fp) =
            cells.iter().fold((0, 0, 0, 0), |a, c| (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3));
        let recall = if truth == 0 { 1.0 } else { tp as f64 / truth as f64 };
        let precision = if det == 0 { 1.0 } else { (det - fp) as f64 / det as f64 };
        table.row(vec![
            SimDuration::from_millis(delay_ms).to_string(),
            truth.to_string(),
            det.to_string(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
    }
    table.note(
        "Paper claim ([17] simulations): the probability of correct detection \
         stays high even as the average message delay grows over a wide range, \
         because human/object movement timescales (minutes) dwarf the delays.",
    );
    table
}
