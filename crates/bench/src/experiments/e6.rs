//! E6 — The Δ = 0 equivalence (paper §4.2.3 item 5): "When synchronous
//! communication is used, i.e., when Δ = 0, and the protocol strobes at
//! each relevant event, strobe vectors can be replaced by strobe scalars
//! without sacrificing correctness or accuracy. This is not so for the
//! causality-based clocks even if Δ = 0; Mattern/Fidge clocks are still
//! more powerful than Lamport clocks."
//!
//! Two measurements on identical executions:
//! 1. detection outcomes of scalar vs vector strobes at Δ = 0 and Δ > 0;
//! 2. the number of event pairs whose *concurrency* each causal clock can
//!    recognize at Δ = 0 (vector: all truly concurrent pairs; scalar:
//!    none — a total order cannot express concurrency).

use psn_clocks::Timestamp;
use psn_core::run_execution;
use psn_predicates::{detect_occurrences, Detection, Discipline, Predicate};
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};

use crate::common::delta_config;
use crate::table::Table;

/// Run E6.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 4 } else { 10 }).collect();
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 180,
    };
    let pred = Predicate::occupancy_over(params.doors, params.capacity);

    let mut table = Table::new(
        "E6 — Δ=0: strobe scalar ≡ strobe vector; Mattern/Fidge ≻ Lamport regardless",
        &[
            "Δ",
            "runs",
            "scalar≡vector runs",
            "concurrent pairs (truth)",
            "vector-clock detected",
            "Lamport detected",
        ],
    );

    for &delta_ms in &[0u64, 500] {
        let mut identical = 0usize;
        let mut truth_conc = 0usize;
        let mut vec_conc = 0usize;
        let mut lam_conc = 0usize;
        for &seed in &seeds {
            let scenario = exhibition::generate(&params, 900 + seed);
            let trace =
                run_execution(&scenario, &delta_config(SimDuration::from_millis(delta_ms), seed));
            let init = scenario.timeline.initial_state();
            let strip = |d: Vec<Detection>| -> Vec<Detection> {
                d.into_iter().map(|x| Detection { borderline: false, ..x }).collect()
            };
            let scalar = strip(detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe));
            let vector = strip(detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe));
            if scalar == vector {
                identical += 1;
            }
            // Concurrency power of the causality-based clocks over sense
            // events: in pure observation, cross-process sense events are
            // truly concurrent (no causal path exists).
            let senses = trace.log.sense_events();
            let sample: Vec<_> = senses.iter().step_by(senses.len().div_ceil(40).max(1)).collect();
            for i in 0..sample.len() {
                for j in (i + 1)..sample.len() {
                    let (a, b) = (sample[i], sample[j]);
                    if a.process == b.process {
                        continue;
                    }
                    truth_conc += 1;
                    if a.stamps.vector.concurrent(&b.stamps.vector) {
                        vec_conc += 1;
                    }
                    if a.stamps.lamport.causality(&b.stamps.lamport)
                        == psn_clocks::Causality::Concurrent
                    {
                        lam_conc += 1;
                    }
                }
            }
        }
        table.row(vec![
            if delta_ms == 0 {
                "0 (sync)".into()
            } else {
                SimDuration::from_millis(delta_ms).to_string()
            },
            seeds.len().to_string(),
            identical.to_string(),
            truth_conc.to_string(),
            vec_conc.to_string(),
            lam_conc.to_string(),
        ]);
    }
    table.note(
        "Paper claim: at Δ=0 the scalar and vector strobe detectors agree on every \
         run; Lamport scalars can never certify concurrency (column 0) while \
         Mattern/Fidge vectors recognize every truly concurrent cross-process pair \
         — even at Δ=0.",
    );
    table
}
