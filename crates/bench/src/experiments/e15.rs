//! E15 — streaming detector: memory high-water and verdict fidelity vs
//! the event-rate·Δ product (paper §3.3, §6 plus the bounded-memory
//! claim behind the live service): the incremental antichain frontier
//! with Δ-bound GC must (a) return **bit-identical** `Possibly`/
//! `Definitely` verdicts to the offline whole-trace sweep at every
//! rate·Δ operating point, and (b) hold its peak buffered-cut count at
//! O(rate · hold-back) — a *window*, not the trace — even as rate·Δ
//! crosses 1 and the trace grows to tens of thousands of reports.
//!
//! Setup mirrors E8: exhibition hall at fixed Δ = 500 ms, arrival rate
//! swept over two orders of magnitude, capacity scaled to expected
//! occupancy. Each cell feeds every delivered report through
//! [`StreamingModal`] with a `2Δ` hold-back and compares the sealed
//! verdict against [`modal_status`].

use std::time::Instant;

use psn_core::run_execution;
use psn_predicates::{modal_status, Predicate, StreamingModal};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::telemetry::{Phase, Telemetry};
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;
use serde::Value;

use crate::common::delta_config;
use crate::metrics_out::cell_object;
use crate::table::Table;
use crate::telemetry_out;

struct Cell {
    reports: usize,
    truth: usize,
    possibly: usize,
    definitely: usize,
    matches: bool,
    mem_high: u64,
    width: usize,
    pruned: usize,
}

/// Run E15.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let delta = SimDuration::from_millis(500);
    let hold_back = SimDuration::from_millis(2 * 500 + 1);
    let rates: &[f64] = &[0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0];

    let mut table = Table::new(
        "E15 — streaming detector memory & fidelity vs event-rate·Δ (Δ = 500 ms, hold-back 2Δ)",
        &[
            "λ (1/s)",
            "rate·Δ",
            "reports",
            "truth",
            "possibly",
            "definitely",
            "≡ offline",
            "mem high (cuts)",
            "mem/reports",
            "width max",
            "pruned",
        ],
    );

    for &rate in rates {
        let mean_stay = SimDuration::from_secs(60);
        let capacity = (rate * 60.0).round() as i64;
        let params = ExhibitionParams {
            doors: 4,
            arrival_rate_hz: rate,
            mean_stay,
            duration: SimTime::from_secs(900),
            capacity: capacity.max(2),
        };
        let cells: Vec<Cell> = run_sweep_auto(&seeds, |_, &seed| {
            let scenario = exhibition::generate(&params, 4000 + seed);
            let pred = Predicate::occupancy_over(params.doors, params.capacity);
            let init = scenario.timeline.initial_state();
            let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
            let trace = run_execution(&scenario, &delta_config(delta, seed));
            let mut s = StreamingModal::new(&pred, &init, trace.n, hold_back);
            for r in &trace.log.reports {
                s.offer(r);
            }
            let mem_high = s.mem_high_water_cuts();
            let width = s.frontier_width();
            let pruned = s.pruned_intervals();
            let streamed = s.seal();
            let offline = modal_status(&trace, &pred, &init);
            Cell {
                reports: trace.log.reports.len(),
                truth: truth.len(),
                possibly: streamed.possibly,
                definitely: streamed.definitely,
                matches: streamed == offline,
                mem_high,
                width,
                pruned,
            }
        });

        // One extra profiled pass per rate when a telemetry sink is open:
        // the detector phase is timed around the full offer loop so
        // `psn-profile` sees a `detector` column next to the engine phases.
        if telemetry_out::is_enabled() {
            emit_telemetry_cell(&params, delta, hold_back, rate);
        }

        let reports: usize = cells.iter().map(|c| c.reports).sum();
        let truth: usize = cells.iter().map(|c| c.truth).sum();
        let possibly: usize = cells.iter().map(|c| c.possibly).sum();
        let definitely: usize = cells.iter().map(|c| c.definitely).sum();
        let all_match = cells.iter().all(|c| c.matches);
        let mem_high = cells.iter().map(|c| c.mem_high).max().unwrap_or(0);
        let width = cells.iter().map(|c| c.width).max().unwrap_or(0);
        let pruned: usize = cells.iter().map(|c| c.pruned).sum();
        let mem_frac = if reports == 0 {
            0.0
        } else {
            mem_high as f64 / (reports as f64 / cells.len().max(1) as f64)
        };
        let rate_delta = 2.0 * rate * delta.as_secs_f64();
        table.row(vec![
            format!("{rate}"),
            format!("{rate_delta:.2}"),
            reports.to_string(),
            truth.to_string(),
            possibly.to_string(),
            definitely.to_string(),
            if all_match { "yes".to_string() } else { "NO".to_string() },
            mem_high.to_string(),
            format!("{mem_frac:.4}"),
            width.to_string(),
            pruned.to_string(),
        ]);
    }
    table.note(
        "Streaming verdicts must equal the offline sweep at every rate (≡ offline = \
         yes). Peak buffered cuts track rate·hold-back — the mem/reports fraction \
         falls as traces grow — while the whole-trace sweep would hold all R \
         reports. Width is the widest advancement frontier observed; pruned counts \
         intervals dropped by Δ-bound GC before advancement consumed them.",
    );
    table
}

fn emit_telemetry_cell(
    params: &ExhibitionParams,
    delta: SimDuration,
    hold_back: SimDuration,
    rate: f64,
) {
    let scenario = exhibition::generate(params, 4000);
    let pred = Predicate::occupancy_over(params.doors, params.capacity);
    let init = scenario.timeline.initial_state();
    let metrics = psn_sim::metrics::Metrics::new();
    let telemetry = Telemetry::new();
    let wall = Instant::now();
    let trace =
        psn_core::run_execution_profiled(&scenario, &delta_config(delta, 0), &metrics, &telemetry);
    let tel = telemetry.coordinator();
    let mut s = StreamingModal::new(&pred, &init, trace.n, hold_back);
    let t0 = tel.start();
    for r in &trace.log.reports {
        s.offer(r);
    }
    std::hint::black_box(s.seal());
    tel.record(Phase::Detector, t0);
    telemetry.record_run_wall(wall.elapsed().as_nanos() as u64);
    telemetry_out::emit_cell(
        "e15",
        cell_object(
            &format!("rate={rate}"),
            &[
                ("rate_hz", Value::Str(format!("{rate}"))),
                ("delta_ms", Value::UInt(delta.as_nanos() / 1_000_000)),
                ("reports", Value::UInt(trace.log.reports.len() as u64)),
            ],
        ),
        &metrics.snapshot(),
        &telemetry.snapshot(),
    );
}
