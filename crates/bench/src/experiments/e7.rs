//! E7 — "This service does not come for free" (paper §3.2.1.a.ii, §3.3
//! limitation 1) and the strobe payload asymmetry (§4.2.2: the scalar
//! strobe "is lightweight — strobe size is O(1), not O(n)").
//!
//! Setup: a low-rate habitat-style deployment of n stations over one
//! simulated hour. Compare, as n grows:
//! - bytes on the air per sensed event for scalar strobes (O(1) payload ×
//!   n−1 receivers), vector strobes (O(n) payload × n−1 receivers), and
//!   the causal piggyback on reports;
//! - the radio energy of the event-driven strobe protocol vs a physical
//!   clock-sync service (RBS every 30 s, and TPSN every 30 s) running for
//!   the same hour regardless of events.

use psn_core::run_execution_instrumented;
use psn_sim::metrics::Metrics;
use psn_sim::time::{SimDuration, SimTime};
use psn_sync::{run_rbs, run_tpsn, CostModel, RbsParams, TpsnParams};
use psn_world::scenarios::habitat::{self, HabitatParams};

use crate::common::{delta_config, family_bytes};
use crate::metrics_out;
use crate::table::Table;
use crate::trace_out;

/// Run E7.
pub fn run(quick: bool) -> Table {
    let ns: &[usize] = if quick { &[4, 16, 64] } else { &[4, 8, 16, 32, 64] };
    let duration = SimTime::from_secs(3600);
    let resync_every = 30.0; // seconds
    let cost = CostModel::default();

    let mut table = Table::new(
        "E7 — message/energy overhead vs n (1h habitat deployment, ~rare events)",
        &[
            "n",
            "events",
            "scalar-strobe B",
            "vector-strobe B",
            "piggyback B",
            "strobe energy",
            "RBS energy/h",
            "TPSN energy/h",
        ],
    );

    for &n in ns {
        let params = HabitatParams {
            stations: n,
            animals: (n / 2).max(1),
            mean_dwell: SimDuration::from_secs(600),
            duration,
        };
        let seed = 1u64;
        let scenario = habitat::generate(&params, 42);
        // A live registry only when `--metrics-out` opened a sink; engine
        // trace recording only when `--trace-out` opened one. The run is
        // bit-identical either way (core's instrumentation tests).
        let metrics = if metrics_out::is_enabled() { Metrics::new() } else { Metrics::disabled() };
        let mut cfg = delta_config(SimDuration::from_millis(300), seed);
        cfg.record_sim_trace = trace_out::is_enabled();
        let trace = run_execution_instrumented(&scenario, &cfg, &metrics);
        metrics_out::emit_cell(
            "e7",
            metrics_out::cell_object(
                &format!("n={n}"),
                &[
                    ("n", serde::Value::UInt(n as u64)),
                    ("delta_ms", serde::Value::UInt(300)),
                    ("seed", serde::Value::UInt(seed)),
                ],
            ),
            &metrics.snapshot(),
        );
        trace_out::emit_cell_trace("e7", &format!("n={n}"), &trace.sim, trace.n);
        let fb = family_bytes(&trace);
        // Event-driven protocol energy: strobe broadcasts (scalar payload)
        // + reports.
        let strobe_energy = cost.energy(
            trace.net.messages_sent,
            trace.net.messages_delivered,
            fb.strobe_scalar + fb.causal_piggyback,
        );
        let rounds = (duration.as_secs_f64() / resync_every).ceil();
        let rbs = run_rbs(&RbsParams { receivers: n.max(2), beacons: 5, ..Default::default() }, 7);
        let tpsn = run_tpsn(&TpsnParams { children: n, rounds: 2, ..Default::default() }, 7);
        table.row(vec![
            n.to_string(),
            scenario.timeline.len().to_string(),
            fb.strobe_scalar.to_string(),
            fb.strobe_vector.to_string(),
            fb.causal_piggyback.to_string(),
            format!("{:.0}", strobe_energy),
            format!("{:.0}", cost.sync_energy(&rbs) * rounds),
            format!("{:.0}", cost.sync_energy(&tpsn) * rounds),
        ]);
    }
    table.note(
        "Paper claims: vector strobes cost O(n) per message vs O(1) for scalars \
         (column ratio ≈ n+1); a clock-sync service pays energy continuously at \
         the resync period, growing with n, while event-driven strobes pay only \
         per sensed event — the low-rate 'wild' regime favours strobes.",
    );
    table
}
