//! E12 — partition/heal re-convergence: cut half the sensors off, heal
//! the cut, and watch which disciplines recover on their own. While the
//! partition lasts, reports from the isolated group are dropped, so every
//! discipline misses occurrences (the root simply cannot see half the
//! doors). The claim is about what happens *after* the heal: strobe
//! disciplines re-converge as soon as strobes flow again (the next
//! broadcast re-merges the clocks), but an ε-synced physical clock that
//! lost its sync service during the isolation stays desynchronized until
//! an explicit resync round — its detection windows are unsound in the
//! heal→resync gap.
//!
//! Setup: exhibition hall; sensors {0, 1} are cut off at 300 s for a
//! sweep of partition durations (`CutPolicy::Drop`). The cut also knocks
//! their synced clocks out of the service (`Desync` at the cut, error up
//! to ±15 s); a `Resync` round runs 60 s after the heal. Recall is scored
//! in three truth bands: during the cut, between heal and resync, and
//! after the resync.

use psn_core::bundle::ClockConfig;
use psn_core::{run_execution, ExecutionConfig};
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::fault::{ClockFaultKind, CutPolicy, FaultScript, FaultSpec};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::{truth_intervals, TruthInterval};

use crate::table::Table;
use crate::trace_out;

/// One discipline's counts for one seed:
/// (during_truth, during_tp, gap_truth, gap_tp, gap_fp,
///  post_truth, post_tp, post_fp).
type Cell = (usize, usize, usize, usize, usize, usize, usize, usize);

/// Score `det` inside one truth band: recall over the truth occurrences
/// starting in `[lo, hi)` and false positives among the detections
/// starting in `[lo, hi)` (matched against the *full* truth so a
/// detection of a straddling occurrence is not miscounted as phantom).
fn band_score(
    det: &[psn_predicates::Detection],
    truth: &[TruthInterval],
    lo: SimTime,
    hi: SimTime,
    horizon: SimTime,
    tol: SimDuration,
) -> (usize, usize, usize) {
    let band: Vec<TruthInterval> =
        truth.iter().copied().filter(|t| t.start >= lo && t.start < hi).collect();
    let r = score(det, &band, horizon, tol, BorderlinePolicy::AsPositive);
    let det_band: Vec<psn_predicates::Detection> =
        det.iter().cloned().filter(|d| d.start >= lo && d.start < hi).collect();
    let fp = score(&det_band, truth, horizon, tol, BorderlinePolicy::AsPositive).false_positives;
    (band.len(), r.true_positives, fp)
}

/// Run E12.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let cut_durations_s: &[u64] = &[15, 45, 90];
    let delta = SimDuration::from_millis(300);
    let cut_at = SimTime::from_secs(300);
    let resync_gap = SimDuration::from_secs(60);
    let tol = SimDuration::from_millis(800);
    let group: [usize; 2] = [0, 1];
    let disciplines = [Discipline::SyncedPhysical, Discipline::VectorStrobe];
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(20),
        duration: SimTime::from_secs(900),
        capacity: 60,
    };

    let mut table = Table::new(
        "E12 — partition/heal (sensors {0,1} cut at 300 s, resync 60 s after heal): \
         recall per truth band",
        &[
            "cut (s)",
            "discipline",
            "recall (during)",
            "recall (gap)",
            "FP (gap)",
            "recall (post)",
            "FP (post)",
        ],
    );

    for &cut_s in cut_durations_s {
        let heal_after = SimDuration::from_secs(cut_s);
        let heal_at = cut_at.saturating_add(heal_after);
        let resync_at = heal_at.saturating_add(resync_gap);
        let cells: Vec<Vec<Cell>> = run_sweep_auto(&seeds, |_, &seed| {
            let scenario = exhibition::generate(&params, 8200 + seed);
            let pred = Predicate::occupancy_over(params.doors, params.capacity);
            let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
            let mut script = FaultScript::new().with(
                cut_at,
                FaultSpec::Partition { group: group.to_vec(), heal_after, policy: CutPolicy::Drop },
            );
            for &a in &group {
                script = script
                    .with(cut_at, FaultSpec::Clock { actor: a, kind: ClockFaultKind::Desync })
                    .with(resync_at, FaultSpec::Clock { actor: a, kind: ClockFaultKind::Resync });
            }
            let cfg = ExecutionConfig {
                delay: psn_sim::delay::DelayModel::delta(delta),
                // Desync re-draws the synced clock's error within
                // ±max_offset: make it large against the 800 ms scoring
                // tolerance so a desynced clock is *visibly* unsound.
                clocks: ClockConfig {
                    max_offset: SimDuration::from_secs(15),
                    ..ClockConfig::default()
                },
                seed,
                record_sim_trace: true,
                faults: Some(script),
                shards: crate::common::shards(),
                ..Default::default()
            };
            let trace = run_execution(&scenario, &cfg);
            trace_out::emit_cell_trace(
                "e12",
                &format!("cut={cut_s}s seed={seed}"),
                &trace.sim,
                trace.n,
            );
            disciplines
                .iter()
                .map(|&d| {
                    let det =
                        detect_occurrences(&trace, &pred, &scenario.timeline.initial_state(), d);
                    let (dt, dtp, _) =
                        band_score(&det, &truth, cut_at, heal_at, params.duration, tol);
                    let (gt, gtp, gfp) =
                        band_score(&det, &truth, heal_at, resync_at, params.duration, tol);
                    // The post band starts one max_offset past the
                    // resync: reports *sent* while desynced carry
                    // stamps up to ±max_offset off, so their phantom
                    // detections can land that far past the resync
                    // round itself.
                    let (pt, ptp, pfp) = band_score(
                        &det,
                        &truth,
                        resync_at.saturating_add(SimDuration::from_secs(16)),
                        params.duration,
                        params.duration,
                        tol,
                    );
                    (dt, dtp, gt, gtp, gfp, pt, ptp, pfp)
                })
                .collect()
        });
        for (i, &d) in disciplines.iter().enumerate() {
            let s = cells.iter().fold((0, 0, 0, 0, 0, 0, 0, 0), |a, c| {
                let c = c[i];
                (
                    a.0 + c.0,
                    a.1 + c.1,
                    a.2 + c.2,
                    a.3 + c.3,
                    a.4 + c.4,
                    a.5 + c.5,
                    a.6 + c.6,
                    a.7 + c.7,
                )
            });
            let rec = |tp: usize, t: usize| {
                if t == 0 {
                    "—".to_string()
                } else {
                    format!("{:.3}", tp as f64 / t as f64)
                }
            };
            table.row(vec![
                cut_s.to_string(),
                d.label().to_string(),
                rec(s.1, s.0),
                rec(s.3, s.2),
                s.4.to_string(),
                rec(s.6, s.5),
                s.7.to_string(),
            ]);
        }
    }
    table.note(
        "Claim: both disciplines lose the occurrences they cannot see during the cut \
         (recall(during) < 1), and both are fully sound after the resync round. The \
         separation is the heal→resync gap: strobe clocks re-converge with the first \
         post-heal broadcast — the vector discipline's gap FPs are at its usual Δ-race \
         background level — while the ε-synced physical clocks of the isolated group are \
         still desynchronized (error up to ±15 s ≫ the 800 ms tolerance), so their reports \
         land at the wrong place in the root's timeline and manufacture phantom occurrences \
         (FP (gap)) that the otherwise FP-free physical discipline never produces. (The post \
         band starts one max_offset after the resync: stale reports sent while desynced \
         surface up to ±15 s late.) Physical-clock detection does not heal with the network; \
         it heals with the sync service (FP (post) = 0).",
    );
    table
}
