//! E14 — strong scaling of the sharded engine vs n and shard count.
//!
//! The paper's execution model ⟨P, L, O, C⟩ puts no ceiling on |P|; the
//! sharded engine (`ExecutionConfig::shards`) is what lets a single run
//! use more than one core without giving up bit-determinism. Its speedup
//! is bounded by how much work fits between two barriers — one *window*
//! spans the network plane's minimum delay (the lookahead), so the
//! parallelizable work per synchronization grows with **n × lookahead**
//! and collapses when fault-plane ops force extra barriers.
//!
//! Each cell runs one exhibition workload at every shard count and
//! reports, besides wall time, machine-independent shape quantities:
//!
//! - `win(con)` / `ops` — barrier counts of the conservative sharded run,
//!   split by cause: `win(con)` counts lookahead windows
//!   (`engine.windows`) and `ops` counts fault-plane sub-barriers
//!   (`engine.op_barriers`). Both are identical for every shard count
//!   above 1: the schedule depends on event times, op times, and
//!   lookahead only;
//! - `win(opt)` / `rollbacks` — barrier count and lane re-runs of the
//!   optimistic (Time Warp) run at the largest shard count: speculation
//!   commits a doubled window per barrier, so `win(opt) < win(con)` is the
//!   synchronization saved and `rollbacks` the price paid for it;
//! - `ev/window` — events per window, the per-barrier parallel work. The
//!   shape claim is that this column grows ~linearly with n (at fixed
//!   event rate per node) and the speedup on a multicore machine follows
//!   it; wall-clock rates on the snapshot machine are also printed but are
//!   meaningless when the machine has a single core (the table note
//!   records the core count);
//! - `rr ev/s` vs `aff ev/s` — the round-robin (interleaved) plan against
//!   the traffic-aware affinity plan at the same shard count.
//!
//! Every variant — each shard count, the optimistic run, and both plan
//! runs — is asserted bit-identical to the sequential run before its
//! timing is reported, so a row in this table is also an equivalence
//! proof over its workload.
//!
//! The last rows demonstrate the two boundary behaviours: a partition-
//! heavy fault script (barriers multiply, `ev/window` collapses) and a
//! sparse-topology cell above [`psn_sim::engine::DENSE_ACTOR_LIMIT`]
//! (n = 10 000 fits in memory because the FIFO store switches to the
//! sparse path).

use std::time::Instant;

use psn_core::{
    run_execution_instrumented, run_execution_profiled, ExecutionConfig, ExecutionTrace,
    ShardPlanKind, SpeculationMode,
};
use psn_sim::delay::DelayModel;
use psn_sim::fault::{CutPolicy, FaultScript, FaultSpec};
use psn_sim::metrics::Metrics;
use psn_sim::telemetry::Telemetry;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};

use crate::metrics_out::cell_object;
use crate::table::Table;
use crate::telemetry_out;
use serde::Value;

/// The Δ-band every E14 cell runs under: 40 ms minimum (= the sharded
/// engine's lookahead), 240 ms ceiling.
fn delay() -> DelayModel {
    DelayModel::DeltaBounded {
        min: SimDuration::from_millis(40),
        max: SimDuration::from_millis(240),
    }
}

struct Cell {
    events: u64,
    windows: u64,
    op_barriers: u64,
    rollbacks: u64,
    wall: f64,
    trace: ExecutionTrace,
}

fn run_cell(
    n: usize,
    shards: usize,
    faults: Option<FaultScript>,
    duration: SimTime,
    plan: ShardPlanKind,
    spec: SpeculationMode,
) -> Cell {
    let params = ExhibitionParams {
        doors: n,
        arrival_rate_hz: (n as f64) / 64.0,
        mean_stay: SimDuration::from_secs(60),
        duration,
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let faulted = faults.is_some();
    let cfg = ExecutionConfig {
        delay: delay(),
        seed: 1,
        shards,
        faults,
        shard_plan: Some(plan),
        speculation: Some(spec),
        ..Default::default()
    };
    let metrics = Metrics::new();
    // With a --telemetry-out sink open, run through the profiled entry
    // point and emit one JSONL record per cell; otherwise the registry is
    // disabled and the run is exactly as before.
    let telemetry =
        if telemetry_out::is_enabled() { Telemetry::new() } else { Telemetry::disabled() };
    let t0 = Instant::now();
    let trace = run_execution_profiled(&scenario, &cfg, &metrics, &telemetry);
    let wall = t0.elapsed().as_secs_f64();
    let snap = metrics.snapshot();
    if telemetry.is_enabled() {
        let label = format!("n={n} shards={shards} plan={plan:?} spec={spec:?}");
        telemetry_out::emit_cell(
            "e14",
            cell_object(
                &label,
                &[
                    ("n", Value::UInt(n as u64)),
                    ("shards", Value::UInt(shards as u64)),
                    ("plan", Value::Str(format!("{plan:?}"))),
                    ("spec", Value::Str(format!("{spec:?}"))),
                    ("faults", Value::Bool(faulted)),
                ],
            ),
            &snap,
            &telemetry.snapshot(),
        );
    }
    Cell {
        events: snap.counter("engine.events_processed").unwrap_or(0),
        windows: snap.counter("engine.windows").unwrap_or(0),
        op_barriers: snap.counter("engine.op_barriers").unwrap_or(0),
        rollbacks: snap.counter("engine.rollbacks").unwrap_or(0),
        wall,
        trace,
    }
}

/// Assert the sharded run reproduced the sequential one bit for bit.
fn assert_identical(seq: &ExecutionTrace, par: &ExecutionTrace, n: usize, shards: usize) {
    assert_eq!(
        seq.log.events, par.log.events,
        "n={n} shards={shards}: events diverged from sequential"
    );
    assert_eq!(seq.log.reports, par.log.reports, "n={n} shards={shards}: reports diverged");
    assert_eq!(seq.net, par.net, "n={n} shards={shards}: net counters diverged");
    assert_eq!(seq.faults, par.faults, "n={n} shards={shards}: fault stats diverged");
    assert_eq!(seq.ended_at, par.ended_at, "n={n} shards={shards}: end time diverged");
}

/// A partition-heavy script: the first half of the nodes is cut off and
/// healed every 500 ms for the whole run. Each cut and each heal is a
/// coordinator barrier, so effective lookahead — and with it `ev/window` —
/// collapses.
fn partition_storm(n: usize, duration: SimTime) -> FaultScript {
    let group: Vec<usize> = (0..n / 2).collect();
    let mut script = FaultScript::new();
    let mut at = SimTime::from_millis(500);
    while at < duration {
        script = script.with(
            at,
            FaultSpec::Partition {
                group: group.clone(),
                heal_after: SimDuration::from_millis(250),
                policy: CutPolicy::Park,
            },
        );
        at += SimDuration::from_millis(500);
    }
    script
}

/// Run E14.
pub fn run(quick: bool) -> Table {
    let ns: &[usize] = if quick { &[16, 64] } else { &[64, 256, 1024] };
    let shard_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let duration = SimTime::from_secs(if quick { 20 } else { 60 });

    let mut table = Table::new(
        "E14 — strong scaling vs n, shard count, plan, and window discipline \
         (exhibition, Δ ∈ [40 ms, 240 ms])",
        &[
            "n",
            "faults",
            "events",
            "win(con)",
            "ops",
            "win(opt)",
            "rollbacks",
            "ev/window",
            "seq ev/s",
            "con ev/s",
            "opt ev/s",
            "rr ev/s",
            "aff ev/s",
        ],
    );

    let mut fault_rows: Vec<(usize, Option<FaultScript>, &str)> =
        ns.iter().map(|&n| (n, None, "none")).collect();
    // The collapse row: the largest n again, under the partition storm.
    let n_max = *ns.last().expect("nonempty ns");
    fault_rows.push((n_max, Some(partition_storm(n_max, duration)), "partition storm"));

    // The plan/discipline variants run at the largest shard count tried.
    let k_var = *shard_counts.last().expect("nonempty shard counts");

    for (n, faults, fault_label) in fault_rows {
        let seq = run_cell(
            n,
            1,
            faults.clone(),
            duration,
            ShardPlanKind::Contiguous,
            SpeculationMode::Conservative,
        );
        let mut best_rate = 0.0f64;
        let mut windows = 0u64;
        let mut op_barriers = 0u64;
        for &k in shard_counts {
            let par = run_cell(
                n,
                k,
                faults.clone(),
                duration,
                ShardPlanKind::Contiguous,
                SpeculationMode::Conservative,
            );
            assert_identical(&seq.trace, &par.trace, n, k);
            windows = windows.max(par.windows);
            op_barriers = op_barriers.max(par.op_barriers);
            best_rate = best_rate.max(par.events as f64 / par.wall);
        }
        // Conservative vs optimistic: same workload, same shard count, Time
        // Warp windows — fewer barriers, same bits.
        let opt = run_cell(
            n,
            k_var,
            faults.clone(),
            duration,
            ShardPlanKind::Contiguous,
            SpeculationMode::Optimistic,
        );
        assert_identical(&seq.trace, &opt.trace, n, k_var);
        // Round-robin (interleaved) vs traffic-aware affinity planning.
        let rr = run_cell(
            n,
            k_var,
            faults.clone(),
            duration,
            ShardPlanKind::Interleaved,
            SpeculationMode::Conservative,
        );
        assert_identical(&seq.trace, &rr.trace, n, k_var);
        let aff = run_cell(
            n,
            k_var,
            faults.clone(),
            duration,
            ShardPlanKind::Affinity,
            SpeculationMode::Conservative,
        );
        assert_identical(&seq.trace, &aff.trace, n, k_var);
        let seq_rate = seq.events as f64 / seq.wall;
        let ev_per_window = if windows > 0 { seq.events as f64 / windows as f64 } else { f64::NAN };
        table.row(vec![
            n.to_string(),
            fault_label.to_string(),
            seq.events.to_string(),
            windows.to_string(),
            op_barriers.to_string(),
            opt.windows.to_string(),
            opt.rollbacks.to_string(),
            format!("{ev_per_window:.0}"),
            format!("{seq_rate:.0}"),
            format!("{best_rate:.0}"),
            format!("{:.0}", opt.events as f64 / opt.wall),
            format!("{:.0}", rr.events as f64 / rr.wall),
            format!("{:.0}", aff.events as f64 / aff.wall),
        ]);
    }

    // Sparse-topology cell: n above DENSE_ACTOR_LIMIT, so the channel
    // store runs on the sparse path — the point is that it runs (dense
    // would want an O(n²) matrix) and still matches sequential.
    let n_sparse = if quick { 2500 } else { 10_000 };
    let sparse_duration = SimTime::from_secs(4);
    let params = ExhibitionParams {
        doors: n_sparse,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(60),
        duration: sparse_duration,
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let run_sparse = |shards: usize| {
        let cfg = ExecutionConfig { delay: delay(), seed: 1, shards, ..Default::default() };
        let metrics = Metrics::new();
        let t0 = Instant::now();
        let trace = run_execution_instrumented(&scenario, &cfg, &metrics);
        let wall = t0.elapsed().as_secs_f64();
        let snap = metrics.snapshot();
        (trace, snap.counter("engine.events_processed").unwrap_or(0), wall)
    };
    let (seq_trace, seq_events, seq_wall) = run_sparse(1);
    let (par_trace, par_events, par_wall) = run_sparse(4);
    assert_identical(&seq_trace, &par_trace, n_sparse, 4);
    table.row(vec![
        format!("{n_sparse} (sparse)"),
        "none".to_string(),
        seq_events.to_string(),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
        format!("{:.0}", seq_events as f64 / seq_wall),
        format!("{:.0}", par_events as f64 / par_wall),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
    ]);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    table.note(format!(
        "Every variant cell — each shard count, the optimistic run, and both plan runs — is \
         asserted bit-identical to its sequential run before timing. `win(con)`/`win(opt)` \
         count lookahead windows (`engine.windows`) under conservative vs optimistic \
         discipline: speculation commits a doubled window span per barrier, so win(opt) < \
         win(con) measures the synchronization saved; `ops` counts fault-plane sub-barriers \
         separately (`engine.op_barriers`), and `rollbacks` counts lanes re-run after a \
         straggler (the Time Warp cost). `con/opt/rr/aff ev/s` ran at {k_var} shards (con = \
         best over all shard counts, contiguous plan; rr = round-robin/interleaved; aff = \
         traffic-aware affinity). Shape claim: parallel work per lookahead window \
         (`ev/window`) grows ~linearly with n at fixed per-node event rate — wall-clock \
         speedup on a multicore machine follows it, and the partition-storm row shows the \
         collapse when fault ops multiply barriers and shrink effective lookahead (windows + \
         ops ↑, ev/window ↓). Wall-clock columns measured on {cores} core(s); with a single \
         core the sharded rates can only show coordination overhead (≤1x by construction).",
    ));
    table
}
