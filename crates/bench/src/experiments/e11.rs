//! E11 — crash/recover confinement: a sensor that crashes and later
//! recovers should corrupt detection only inside the outage window. The
//! recovery protocol (durable-log replay, strobe-clock re-priming, ε
//! resync — `RecoveryPolicy`) is what makes that true: with replay the
//! restarted process resumes its stamp sequences past the last value it
//! assigned, so post-recovery reports interleave correctly under every
//! discipline. The ablation row restarts the process *amnesiac* (no log
//! replay): its counters restart at zero, post-crash stamps collide with
//! pre-crash ones, and the strobe disciplines pay extra false positives
//! around the recovery point until the first incoming strobe max-merges
//! the reborn clocks back up to the system frontier.
//!
//! Setup: exhibition hall, sensor 0 crashes at 300 s and recovers at
//! 420 s. We score every discipline over *all* truth occurrences and over
//! only the occurrences **far** from the outage window (±5 s vicinity,
//! which covers the post-recovery ε-resync round).

use psn_core::{run_execution, ExecutionConfig, RecoveryPolicy};
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::fault::{FaultScript, FaultSpec};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::{truth_intervals, TruthInterval};

use crate::table::Table;
use crate::trace_out;

/// One discipline's counts for one seed:
/// (truth, tp_all, truth_far, tp_far, fp_all, fp_far).
type Cell = (usize, usize, usize, usize, usize, usize);

/// Run E11.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    let delta = SimDuration::from_millis(300);
    let vicinity = SimDuration::from_secs(5);
    let crash_at = SimTime::from_secs(300);
    let downtime = SimDuration::from_secs(120);
    let recover_at = crash_at.saturating_add(downtime);
    let tol = SimDuration::from_millis(800);
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(900),
        capacity: 180,
    };

    let mut table = Table::new(
        "E11 — crash/recover (sensor 0 down 300–420 s): error confined to the outage \
         (vicinity = 5 s)",
        &["recovery", "discipline", "truth", "recall (all)", "recall (far)", "FP", "FP far"],
    );

    for &(mode, crash, replay) in
        &[("no-fault", false, true), ("replay-log", true, true), ("amnesiac", true, false)]
    {
        let cells: Vec<Vec<Cell>> = run_sweep_auto(&seeds, |_, &seed| {
            let scenario = exhibition::generate(&params, 7600 + seed);
            let pred = Predicate::occupancy_over(params.doors, params.capacity);
            let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
            let script = if crash {
                FaultScript::new()
                    .with(crash_at, FaultSpec::Crash { actor: 0, recover_after: Some(downtime) })
            } else {
                FaultScript::new()
            };
            let cfg = ExecutionConfig {
                delay: psn_sim::delay::DelayModel::delta(delta),
                seed,
                record_sim_trace: true,
                faults: Some(script),
                recovery: RecoveryPolicy { replay_log: replay, ..Default::default() },
                shards: crate::common::shards(),
                ..Default::default()
            };
            let trace = run_execution(&scenario, &cfg);
            trace_out::emit_cell_trace("e11", &format!("{mode} seed={seed}"), &trace.sim, trace.n);
            let window_lo =
                SimTime::from_nanos(crash_at.as_nanos().saturating_sub(vicinity.as_nanos()));
            let window_hi = recover_at.saturating_add(vicinity);
            // Occurrences that never touch the outage window.
            let far: Vec<TruthInterval> = truth
                .iter()
                .copied()
                .filter(|t| t.end.unwrap_or(params.duration) < window_lo || t.start > window_hi)
                .collect();
            Discipline::ALL
                .iter()
                .map(|&d| {
                    let det =
                        detect_occurrences(&trace, &pred, &scenario.timeline.initial_state(), d);
                    let all =
                        score(&det, &truth, params.duration, tol, BorderlinePolicy::AsPositive);
                    let far_r =
                        score(&det, &far, params.duration, tol, BorderlinePolicy::AsPositive);
                    // False positives raised *outside* the outage
                    // window: the leak the recovery protocol prevents.
                    let det_far: Vec<psn_predicates::Detection> = det
                        .iter()
                        .cloned()
                        .filter(|dd| {
                            dd.end.unwrap_or(params.duration) < window_lo || dd.start > window_hi
                        })
                        .collect();
                    let fp_far =
                        score(&det_far, &truth, params.duration, tol, BorderlinePolicy::AsPositive)
                            .false_positives;
                    (
                        truth.len(),
                        all.true_positives,
                        far.len(),
                        far_r.true_positives,
                        all.false_positives,
                        fp_far,
                    )
                })
                .collect()
        });
        for (i, &d) in Discipline::ALL.iter().enumerate() {
            let s = cells.iter().fold((0, 0, 0, 0, 0, 0), |a, c| {
                let c = c[i];
                (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5)
            });
            let recall_all = if s.0 == 0 { 1.0 } else { s.1 as f64 / s.0 as f64 };
            let recall_far = if s.2 == 0 { 1.0 } else { s.3 as f64 / s.2 as f64 };
            table.row(vec![
                mode.to_string(),
                d.label().to_string(),
                s.0.to_string(),
                format!("{recall_all:.3}"),
                format!("{recall_far:.3}"),
                s.4.to_string(),
                s.5.to_string(),
            ]);
        }
    }
    table.note(
        "Claim: a crash/recover cycle degrades detection only near the outage — with the \
         recovery protocol (log replay + clock re-priming + ε resync), recall(far) and \
         FP(far) match the no-fault baseline for every discipline; all the extra error sits \
         inside the outage window. The amnesiac ablation (no log replay) restarts the \
         process's stamp sequences at zero: its first post-restart reports collide with \
         pre-crash stamps and the strobe disciplines pay extra false positives around the \
         recovery point, until the first incoming strobe max-merges the reborn clocks back \
         up to the system's frontier.",
    );
    table
}
