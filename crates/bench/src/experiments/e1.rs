//! E1 — False negatives under ε-synchronized physical clocks when the
//! ground-truth overlap is short (paper §3.3 limitation 2, citing
//! Mayo–Kearns: "when the overlap period of the local intervals … is less
//! than 2ε, false negatives occur").
//!
//! Setup: two sensors, two boolean pulses whose conjunction holds for a
//! controlled overlap `o`. The detector orders reports by ε-synchronized
//! readings; when per-process clock errors (±ε/2, so pairwise disagreement
//! up to ε) reorder the edges, the overlap vanishes from the observation —
//! a false negative. Expected shape: FN rate highest for o ≪ ε, falling to
//! zero once o exceeds the clock disagreement bound.

use psn_core::{run_execution, ClockConfig, ExecutionConfig};
use psn_predicates::{detect_occurrences, fn_probability_synced, Discipline};
use psn_sim::delay::DelayModel;
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};

use crate::common::{two_pulse_predicate, two_pulse_scenario};
use crate::table::Table;

/// Run E1.
pub fn run(quick: bool) -> Table {
    let epsilon = SimDuration::from_millis(20);
    let trials = if quick { 60 } else { 400 };
    let ratios: &[f64] = &[0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0];

    let mut table = Table::new(
        "E1 — FN rate of ε-synced physical detection vs overlap/ε (ε = 20ms)",
        &["overlap/ε", "overlap", "trials", "false-negatives", "FN rate", "analytic"],
    );

    for &ratio in ratios {
        let overlap = epsilon.mul_f64(ratio);
        let fns: Vec<bool> = run_sweep_auto(&(0..trials).collect::<Vec<u64>>(), |_, &seed| {
            // A: [1s, 1.2s + o), B: [1.2s, 1.5s): conjunction holds for o.
            let base = SimTime::from_secs(1);
            let s = two_pulse_scenario(
                base,
                base + SimDuration::from_millis(200) + overlap,
                base + SimDuration::from_millis(200),
                base + SimDuration::from_millis(500),
            );
            let cfg = ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_millis(5)),
                clocks: ClockConfig { epsilon, ..Default::default() },
                seed,
                shards: crate::common::shards(),
                ..Default::default()
            };
            let trace = run_execution(&s, &cfg);
            let det = detect_occurrences(
                &trace,
                &two_pulse_predicate(),
                &s.timeline.initial_state(),
                Discipline::SyncedPhysical,
            );
            det.is_empty() // FN: the single true occurrence was missed
        });
        let fn_count = fns.iter().filter(|&&x| x).count();
        table.row(vec![
            format!("{ratio:.2}"),
            overlap.to_string(),
            trials.to_string(),
            fn_count.to_string(),
            format!("{:.3}", fn_count as f64 / trials as f64),
            format!("{:.3}", fn_probability_synced(overlap, epsilon)),
        ]);
    }
    table.note(
        "Paper claim (Mayo–Kearns via §3.3): overlaps shorter than the clock \
         disagreement bound are missed; FN rate falls to zero as overlap/ε grows.",
    );
    table.note(
        "The analytic column is the closed-form (1−r)²/2 model \
         (psn_predicates::analytic::fn_probability_synced): per-process errors \
         uniform on ±ε/2 make the pairwise disagreement triangular on ±ε.",
    );
    table
}
