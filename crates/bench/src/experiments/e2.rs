//! E2 — Strobe-clock detection accuracy vs Δ (paper §3.3): "the use of
//! logical vectors may result in some false negatives, whereas the use of
//! logical scalars may also result in some false positives"; errors occur
//! only "when races occur within a period of Δ".
//!
//! Setup: the exhibition hall at a fixed event rate; sweep the delay bound
//! Δ over three orders of magnitude; detect the occupancy predicate with
//! the scalar-strobe and vector-strobe disciplines on identical executions
//! and score both against ground truth.

use psn_core::run_execution;
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;

use crate::common::delta_config;
use crate::table::Table;

/// Run E2.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 4 } else { 12 }).collect();
    let deltas_ms: &[u64] = &[0, 50, 200, 500, 1000, 2000, 5000];
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(900),
        capacity: 120, // ≈ expected occupancy ⇒ frequent crossings
    };

    let mut table = Table::new(
        "E2 — FP/FN of scalar vs vector strobes vs Δ (exhibition hall, 2 ev/s/door-pool)",
        &[
            "Δ",
            "truth occ",
            "scalar FP",
            "scalar FN",
            "vector FP",
            "vector FN",
            "borderline",
            "bline-FP caught",
        ],
    );

    for &delta_ms in deltas_ms {
        let delta = SimDuration::from_millis(delta_ms);
        let cells: Vec<(usize, usize, usize, usize, usize, usize, usize)> =
            run_sweep_auto(&seeds, |_, &seed| {
                let scenario = exhibition::generate(&params, 1000 + seed);
                let pred = Predicate::occupancy_over(params.doors, params.capacity);
                let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                let trace = run_execution(&scenario, &delta_config(delta, seed));
                let init = scenario.timeline.initial_state();
                let tol = SimDuration::from_millis(2 * delta_ms + 100);
                let sc = score(
                    &detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe),
                    &truth,
                    params.duration,
                    tol,
                    BorderlinePolicy::AsPositive,
                );
                let vc = score(
                    &detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe),
                    &truth,
                    params.duration,
                    tol,
                    BorderlinePolicy::AsPositive,
                );
                (
                    truth.len(),
                    sc.false_positives,
                    sc.false_negatives,
                    vc.false_positives,
                    vc.false_negatives,
                    vc.borderline,
                    vc.borderline_false_positives,
                )
            });
        let sum = cells.iter().fold((0, 0, 0, 0, 0, 0, 0), |a, c| {
            (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5, a.6 + c.6)
        });
        table.row(vec![
            delta.to_string(),
            sum.0.to_string(),
            sum.1.to_string(),
            sum.2.to_string(),
            sum.3.to_string(),
            sum.4.to_string(),
            sum.5.to_string(),
            sum.6.to_string(),
        ]);
    }
    table.note(
        "Paper claim: errors appear only under races within Δ — both columns are \
         ~0 at Δ=0 and grow with Δ; the vector-strobe borderline bin flags its \
         race-involved detections (catching its FPs), while the scalar detector \
         has no race information.",
    );
    table
}
