//! E5 — The §5 exhibition-hall claims: FP/FN occur only near races; the
//! consensus vector-strobe detector "will be able to place false positives
//! and most false negatives in a 'borderline bin' … To err on the safe
//! side, such entries can be treated as positives."
//!
//! Setup: the full §5 scenario (capacity 200); sweep traffic intensity and
//! Δ; score the vector-strobe detector under both borderline policies.

use psn_core::run_execution;
use psn_predicates::{detect_occurrences, score, BorderlinePolicy, Discipline, Predicate};
use psn_sim::sweep::run_sweep_auto;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::truth_intervals;

use crate::common::delta_config;
use crate::table::Table;

/// Run E5.
pub fn run(quick: bool) -> Table {
    let seeds: Vec<u64> = (0..if quick { 3 } else { 8 }).collect();
    // (arrival rate, Δ ms) grid. Occupancy ≈ rate × 70s stay; capacity 200
    // ⇒ rates around 3/s cross the threshold repeatedly.
    let grid: &[(f64, u64)] =
        &[(3.0, 100), (3.0, 500), (3.0, 2000), (6.0, 500), (10.0, 500), (10.0, 2000)];

    let mut table = Table::new(
        "E5 — §5 exhibition hall (capacity 200): borderline bin and safe-side policy",
        &[
            "λ (1/s)",
            "Δ",
            "truth",
            "TP+",
            "FP+",
            "FN+",
            "TP−",
            "FN−",
            "bline",
            "recall(+)",
            "recall(−)",
        ],
    );

    for &(rate, delta_ms) in grid {
        let params = ExhibitionParams {
            doors: 4,
            arrival_rate_hz: rate,
            mean_stay: SimDuration::from_secs(70),
            duration: SimTime::from_secs(1200),
            capacity: 200,
        };
        let cells: Vec<(usize, usize, usize, usize, usize, usize, usize)> =
            run_sweep_auto(&seeds, |_, &seed| {
                let scenario = exhibition::generate(&params, 500 + seed);
                let pred = Predicate::occupancy_over(params.doors, params.capacity);
                let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
                let trace = run_execution(
                    &scenario,
                    &delta_config(SimDuration::from_millis(delta_ms), seed),
                );
                let det = detect_occurrences(
                    &trace,
                    &pred,
                    &scenario.timeline.initial_state(),
                    Discipline::VectorStrobe,
                );
                let tol = SimDuration::from_millis(2 * delta_ms + 200);
                let plus = score(&det, &truth, params.duration, tol, BorderlinePolicy::AsPositive);
                let minus = score(&det, &truth, params.duration, tol, BorderlinePolicy::AsNegative);
                (
                    truth.len(),
                    plus.true_positives,
                    plus.false_positives,
                    plus.false_negatives,
                    minus.true_positives,
                    minus.false_negatives,
                    plus.borderline,
                )
            });
        let s = cells.iter().fold((0, 0, 0, 0, 0, 0, 0), |a, c| {
            (a.0 + c.0, a.1 + c.1, a.2 + c.2, a.3 + c.3, a.4 + c.4, a.5 + c.5, a.6 + c.6)
        });
        let recall_plus = if s.0 == 0 { 1.0 } else { s.1 as f64 / s.0 as f64 };
        let recall_minus = if s.0 == 0 { 1.0 } else { s.4 as f64 / s.0 as f64 };
        table.row(vec![
            format!("{rate}"),
            SimDuration::from_millis(delta_ms).to_string(),
            s.0.to_string(),
            s.1.to_string(),
            s.2.to_string(),
            s.3.to_string(),
            s.4.to_string(),
            s.5.to_string(),
            s.6.to_string(),
            format!("{recall_plus:.3}"),
            format!("{recall_minus:.3}"),
        ]);
    }
    table.note(
        "Columns '+' score borderline-as-positive, '−' as-negative. Paper claim: \
         treating borderline entries as positives errs on the safe side — \
         recall(+) ≥ recall(−), with residual FPs confined to race windows \
         (acceptable for fire-code compliance).",
    );
    table
}
