//! Lattice enumeration cost: states/second of the consistent-cut BFS, on
//! the two extreme inputs — a chain (Δ = 0, the slim-lattice best case,
//! O(np) states) and an unconstrained grid (no strobes, O(pⁿ) states).
//! The gap *is* the slim-lattice postulate measured in CPU time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use psn_clocks::VectorStamp;
use psn_lattice::{enumerate_lattice, History};

/// n processes × p events, all mutually ordered (chain).
fn chain_history(n: usize, p: usize) -> History {
    let mut global = vec![0u64; n];
    let mut stamps: Vec<Vec<VectorStamp>> = vec![Vec::new(); n];
    for round in 0..p {
        for proc in 0..n {
            global[proc] += 1;
            stamps[proc].push(VectorStamp::from(global.clone()));
        }
        let _ = round;
    }
    History::new(stamps)
}

/// n processes × p events, no cross-process ordering (grid).
fn grid_history(n: usize, p: usize) -> History {
    History::new(
        (0..n)
            .map(|proc| {
                (1..=p as u64)
                    .map(|k| {
                        let mut v = vec![0; n];
                        v[proc] = k;
                        VectorStamp::from(v)
                    })
                    .collect()
            })
            .collect(),
    )
}

fn bench_lattice(c: &mut Criterion) {
    let mut g = c.benchmark_group("lattice");
    for (n, p) in [(3usize, 6usize), (4, 5), (5, 4)] {
        let chain = chain_history(n, p);
        g.bench_with_input(BenchmarkId::new("chain", format!("n{n}p{p}")), &chain, |b, h| {
            b.iter(|| black_box(enumerate_lattice(h, u64::MAX)));
        });
        let grid = grid_history(n, p);
        g.bench_with_input(BenchmarkId::new("grid", format!("n{n}p{p}")), &grid, |b, h| {
            b.iter(|| black_box(enumerate_lattice(h, u64::MAX)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lattice);
criterion_main!(benches);
