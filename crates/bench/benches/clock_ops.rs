//! Clock-operation micro-benchmarks: the per-event cost of each clock rule
//! as the system size n grows. Quantifies the paper's O(1)-vs-O(n)
//! strobe-payload asymmetry at the CPU level (§4.2.2) — scalar ticks and
//! merges are constant-time, vector operations scale linearly with n.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use psn_clocks::{
    HybridClock, LamportClock, LogicalClock, MatrixClock, PhysReading, ScalarStamp,
    StrobeScalarClock, StrobeVectorClock, VectorClock, VectorStamp,
};

fn bench_ticks(c: &mut Criterion) {
    let mut g = c.benchmark_group("tick");
    g.bench_function("lamport", |b| {
        let mut clock = LamportClock::new(0);
        b.iter(|| black_box(clock.on_local_event()));
    });
    g.bench_function("strobe_scalar", |b| {
        let mut clock = StrobeScalarClock::new(0);
        b.iter(|| black_box(clock.on_local_event()));
    });
    g.bench_function("hlc", |b| {
        let mut clock = HybridClock::new(0);
        let mut t = 0i64;
        b.iter(|| {
            t += 13;
            black_box(clock.tick(PhysReading(t)))
        });
    });
    for n in [4usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::new("vector", n), &n, |b, &n| {
            let mut clock = VectorClock::new(0, n);
            b.iter(|| black_box(clock.on_local_event()));
        });
        g.bench_with_input(BenchmarkId::new("strobe_vector", n), &n, |b, &n| {
            let mut clock = StrobeVectorClock::new(0, n);
            b.iter(|| black_box(clock.on_local_event()));
        });
    }
    g.finish();
}

fn bench_merges(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.bench_function("strobe_scalar", |b| {
        let mut clock = StrobeScalarClock::new(0);
        let stamp = ScalarStamp { value: 1_000_000, process: 1 };
        b.iter(|| clock.on_strobe(black_box(&stamp)));
    });
    for n in [4usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::new("strobe_vector", n), &n, |b, &n| {
            let mut clock = StrobeVectorClock::new(0, n);
            let stamp = VectorStamp::from(vec![7; n]);
            b.iter(|| clock.on_strobe(black_box(&stamp)));
        });
        g.bench_with_input(BenchmarkId::new("vector_receive", n), &n, |b, &n| {
            let mut clock = VectorClock::new(0, n);
            let stamp = VectorStamp::from(vec![7; n]);
            b.iter(|| black_box(clock.on_receive(black_box(&stamp))));
        });
        g.bench_with_input(BenchmarkId::new("matrix_receive", n), &n, |b, &n| {
            let mut clock = MatrixClock::new(0, n);
            let other = {
                let mut m = MatrixClock::new(1, n);
                m.on_local_event();
                m.on_send()
            };
            b.iter(|| clock.on_receive(1, black_box(&other)));
        });
    }
    g.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("compare");
    for n in [4usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("vector_concurrent", n), &n, |b, &n| {
            let a = VectorStamp::from((0..n as u64).collect::<Vec<_>>());
            let mut v: Vec<u64> = (0..n as u64).rev().collect();
            v[0] = 0;
            let bst = VectorStamp::from(v);
            b.iter(|| black_box(a.concurrent(&bst)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ticks, bench_merges, bench_compare);
criterion_main!(benches);
