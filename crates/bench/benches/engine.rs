//! Simulator throughput: full ⟨P, L, O, C⟩ executions per second as the
//! network grows — the substrate cost every experiment pays. Events/sec
//! here bounds how large a parameter sweep the harness can afford.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use psn_core::{run_execution, ExecutionConfig};
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};

fn bench_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_execution");
    g.sample_size(20);
    for doors in [2usize, 4, 8, 16] {
        let params = ExhibitionParams {
            doors,
            arrival_rate_hz: 2.0,
            mean_stay: SimDuration::from_secs(30),
            duration: SimTime::from_secs(120),
            capacity: 60,
        };
        let scenario = exhibition::generate(&params, 5);
        let cfg = ExecutionConfig {
            delay: psn_sim::delay::DelayModel::delta(SimDuration::from_millis(200)),
            ..Default::default()
        };
        g.throughput(criterion::Throughput::Elements(scenario.timeline.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(doors), &doors, |b, _| {
            b.iter(|| black_box(run_execution(&scenario, &cfg)));
        });
    }
    g.finish();
}

fn bench_scenario_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_generation");
    let params = ExhibitionParams {
        doors: 8,
        arrival_rate_hz: 5.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 300,
    };
    g.bench_function("exhibition_600s_5hz", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(exhibition::generate(&params, seed))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_execution, bench_scenario_generation);
criterion_main!(benches);
