//! Detector throughput: reports/second processed by the sweep detectors
//! under each clock discipline, and by the Possibly/Definitely interval
//! detector. The sweep detectors are O(R log R) in report count; the
//! vector-strobe discipline pays an extra O(w·n) race probe per report.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use psn_core::{run_execution, ExecutionConfig, ExecutionTrace};
use psn_predicates::{
    detect_conjunctive, detect_occurrences, Conjunct, Discipline, Expr, Predicate, StampFamily,
};
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::{AttrKey, Scenario};

fn fixture() -> (Scenario, ExecutionTrace, Predicate) {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let trace = run_execution(
        &scenario,
        &ExecutionConfig {
            delay: psn_sim::delay::DelayModel::delta(SimDuration::from_millis(300)),
            ..Default::default()
        },
    );
    let pred = Predicate::occupancy_over(4, 240);
    (scenario, trace, pred)
}

fn bench_disciplines(c: &mut Criterion) {
    let (scenario, trace, pred) = fixture();
    let init = scenario.timeline.initial_state();
    let reports = trace.log.reports.len() as u64;
    let mut g = c.benchmark_group("detect_occurrences");
    g.throughput(criterion::Throughput::Elements(reports));
    for d in Discipline::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(d.label()), &d, |b, &d| {
            b.iter(|| black_box(detect_occurrences(&trace, &pred, &init, d)));
        });
    }
    g.finish();
}

fn bench_conjunctive(c: &mut Criterion) {
    let (scenario, trace, _) = fixture();
    let init = scenario.timeline.initial_state();
    let conjuncts: Vec<Conjunct> = (0..2)
        .map(|d| Conjunct {
            process: d,
            expr: Expr::var(AttrKey::new(d, 0))
                .sub(Expr::var(AttrKey::new(d, 1)))
                .gt(Expr::int(20)),
        })
        .collect();
    let mut g = c.benchmark_group("detect_conjunctive");
    g.bench_function("strobe_vector", |b| {
        b.iter(|| {
            black_box(detect_conjunctive(&trace, &conjuncts, &init, StampFamily::StrobeVector))
        });
    });
    g.bench_function("causal", |b| {
        b.iter(|| black_box(detect_conjunctive(&trace, &conjuncts, &init, StampFamily::Causal)));
    });
    g.finish();
}

fn bench_online(c: &mut Criterion) {
    use psn_predicates::OnlineDetector;
    let (scenario, trace, pred) = fixture();
    let init = scenario.timeline.initial_state();
    let reports = trace.log.reports.len() as u64;
    let mut g = c.benchmark_group("online_detector");
    g.throughput(criterion::Throughput::Elements(reports));
    for hold_ms in [0u64, 600] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("hold{hold_ms}ms")),
            &hold_ms,
            |b, &hold_ms| {
                b.iter(|| {
                    let mut d =
                        OnlineDetector::new(pred.clone(), &init, SimDuration::from_millis(hold_ms));
                    for r in &trace.log.reports {
                        d.offer(r);
                    }
                    black_box(d.finish())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_disciplines, bench_conjunctive, bench_online);
criterion_main!(benches);
