//! Streaming detector throughput: reports/second sustained by
//! [`StreamingModal`] under live ingest, against the whole-trace
//! re-sweep it replaces. The streaming path pays a hold-back heap push
//! plus an O(1) amortized apply per report and answers a status query
//! from the O(window) live frontier; the old service path re-ran the
//! O(R log R) offline sweep on every query.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use psn_core::{run_execution, ExecutionConfig, ExecutionTrace};
use psn_predicates::{modal_status, Predicate, StreamingModal};
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};
use psn_world::Scenario;

/// Status-probe cadence of the sustained-ingest legs: one `Status` query
/// per this many ingested reports, the cadence the serve smoke uses.
const PROBE_EVERY: usize = 512;

fn fixture() -> (Scenario, ExecutionTrace, Predicate) {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 240,
    };
    let scenario = exhibition::generate(&params, 11);
    let trace = run_execution(
        &scenario,
        &ExecutionConfig {
            delay: psn_sim::delay::DelayModel::delta(SimDuration::from_millis(300)),
            ..Default::default()
        },
    );
    let pred = Predicate::occupancy_over(4, 240);
    (scenario, trace, pred)
}

fn bench_stream_detect(c: &mut Criterion) {
    let (scenario, trace, pred) = fixture();
    let init = scenario.timeline.initial_state();
    let reports = trace.log.reports.len() as u64;
    let hold_back = SimDuration::from_millis(601); // 2Δ + 1
    let mut g = c.benchmark_group("stream_detect");
    g.throughput(Throughput::Elements(reports));

    // Pure ingest: every report offered once, verdict sealed at the end.
    g.bench_function("offer_all_seal", |b| {
        b.iter(|| {
            let mut s = StreamingModal::new(&pred, &init, trace.n, hold_back);
            for r in &trace.log.reports {
                s.offer(black_box(r));
            }
            black_box(s.seal())
        })
    });

    // Sustained ingest with a status probe every PROBE_EVERY reports —
    // the serve `Status`/`Watch` workload.
    g.bench_function("sustained_with_status_probes", |b| {
        b.iter(|| {
            let mut s = StreamingModal::new(&pred, &init, trace.n, hold_back);
            for (i, r) in trace.log.reports.iter().enumerate() {
                s.offer(black_box(r));
                if i % PROBE_EVERY == 0 {
                    black_box(s.status());
                }
            }
            black_box(s.seal())
        })
    });

    // The path the streaming detector replaced: one offline whole-trace
    // sweep per probe (prefix cost ≈ full cost by the end of ingest; one
    // full sweep is the *lower bound* of the old per-probe price).
    g.bench_function("offline_resweep_per_probe", |b| {
        let probes = (trace.log.reports.len() / PROBE_EVERY).max(1) as u64;
        b.iter(|| {
            for _ in 0..probes {
                black_box(modal_status(&trace, &pred, &init));
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_stream_detect);
criterion_main!(benches);
