//! Parallel-sweep scaling: wall-clock of a fixed batch of simulations at
//! 1, 2, 4, … worker threads. Results must be identical at every thread
//! count (asserted); the speedup should be near-linear until the core
//! count — the determinism-preserving parallelism the HPC guides call for.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use psn_core::{run_execution, ExecutionConfig};
use psn_sim::sweep::run_sweep;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};

fn cell(seed: u64) -> u64 {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(30),
        duration: SimTime::from_secs(60),
        capacity: 40,
    };
    let scenario = exhibition::generate(&params, seed);
    let trace = run_execution(&scenario, &ExecutionConfig { seed, ..Default::default() });
    trace.net.messages_delivered
}

fn bench_sweep(c: &mut Criterion) {
    let seeds: Vec<u64> = (0..32).collect();
    // Determinism across thread counts — checked once up front.
    let reference = run_sweep(&seeds, 1, |_, &s| cell(s));
    for t in [2, 4, 8] {
        assert_eq!(run_sweep(&seeds, t, |_, &s| cell(s)), reference);
    }

    let mut g = c.benchmark_group("sweep_32_cells");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(run_sweep(&seeds, t, |_, &s| cell(s))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
