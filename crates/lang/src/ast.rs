//! Typed AST for the `.psn` scenario language.
//!
//! The parser builds this tree; the compiler
//! ([`mod@crate::compile`]) lowers it onto the existing workspace structures
//! (world generators, [`psn_predicates::spec::Predicate`],
//! [`psn_core::execution::ExecutionConfig`], [`psn_sim::fault::FaultScript`]).
//! Nodes that later phases validate carry [`Spanned`] wrappers so
//! diagnostics point back at the source.

use crate::diag::Spanned;

/// One `.psn` file: a single `scenario "name" { ... }` form.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDef {
    /// The quoted scenario name.
    pub name: Spanned<String>,
    /// `seed N` (defaults to 1 when omitted).
    pub seed: Option<Spanned<u64>>,
    /// The mandatory `world <kind> { ... }` block.
    pub world: WorldDef,
    /// `clocks { ... }` fields (epsilon, max_offset, max_drift_ppm).
    pub clocks: Vec<Field>,
    /// `strobes { ... }` fields (every, heartbeat, flood, quarantine).
    pub strobes: Vec<Field>,
    /// `network { ... }` block (delay/loss/fifo).
    pub network: Option<NetworkDef>,
    /// `run { ... }` fields (shards, plan, optimistic, discipline, …).
    pub run: Vec<Field>,
    /// `predicate "name" relational|conjunctive { ... }` blocks.
    pub predicates: Vec<PredicateDef>,
    /// `faults { ... }` block.
    pub faults: Option<FaultsDef>,
}

/// `world <kind> { key value ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldDef {
    /// Which parameterized generator: office, exhibition, hospital,
    /// habitat, or structure.
    pub kind: Spanned<String>,
    /// Parameter overrides; anything omitted keeps the generator default.
    pub fields: Vec<Field>,
}

/// A `key value` pair inside a block.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// The key identifier.
    pub name: Spanned<String>,
    /// Its literal value.
    pub value: Spanned<Value>,
}

/// A literal field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Duration literal, nanoseconds.
    Dur(u64),
    /// `true` / `false`.
    Bool(bool),
    /// A bare identifier (e.g. a plan or discipline name).
    Ident(String),
}

impl Value {
    /// Short description for type-mismatch diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Dur(_) => "duration",
            Value::Bool(_) => "bool",
            Value::Ident(_) => "identifier",
        }
    }
}

/// `network { delay ... loss ... fifo ... }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkDef {
    /// The delay model, if specified.
    pub delay: Option<Spanned<DelaySpec>>,
    /// The loss model, if specified.
    pub loss: Option<Spanned<LossSpec>>,
    /// `fifo true|false`.
    pub fifo: Option<Spanned<bool>>,
}

/// The delay model surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum DelaySpec {
    /// `delay synchronous`
    Synchronous,
    /// `delay fixed 100ms`
    Fixed(u64),
    /// `delay delta 300ms` — uniform on [0, Δ].
    Delta(u64),
    /// `delay uniform 50ms..300ms` — uniform on [min, max].
    Uniform {
        /// Lower bound, nanoseconds.
        min: u64,
        /// Upper bound, nanoseconds.
        max: u64,
    },
    /// `delay exponential 100ms [cap 1s]`
    Exponential {
        /// Mean, nanoseconds.
        mean: u64,
        /// Optional cap, nanoseconds.
        cap: Option<u64>,
    },
}

/// The loss model surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum LossSpec {
    /// `loss none`
    None,
    /// `loss bernoulli 0.05`
    Bernoulli(f64),
    /// `loss bursty p_gb p_bg loss_good loss_bad` (Gilbert–Elliott).
    Bursty(f64, f64, f64, f64),
}

/// `predicate "name" relational { expr }` or
/// `predicate "name" conjunctive { at P: expr ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateDef {
    /// The quoted predicate name.
    pub name: Spanned<String>,
    /// Relational (global expression) or conjunctive (per-process parts).
    pub body: PredicateBody,
}

/// The two predicate shapes of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateBody {
    /// One expression over any processes' variables.
    Relational(Spanned<PExpr>),
    /// `at P: expr` parts — each expression's variables must be local to
    /// process `P` (the compiler checks this against the sensor
    /// assignment).
    Conjunctive(Vec<ConjunctDef>),
}

/// One `at P: expr` part of a conjunctive predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctDef {
    /// The owning process index.
    pub process: Spanned<i64>,
    /// The local expression.
    pub expr: Spanned<PExpr>,
}

/// Binary operators in predicate expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=` (lowered as the flipped `>=`).
    Le,
    /// `==`
    Eq,
    /// `!=` (lowered as negated `==`).
    Ne,
    /// `and` / `&&`
    And,
    /// `or` / `||`
    Or,
}

/// A predicate expression before lowering. Variables are still names
/// (`door[d].x`), indices may reference world parameters or `sum` loop
/// variables, and `sum` comprehensions are not yet unrolled.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A bare identifier: a `sum` loop variable or a world-parameter
    /// constant (`doors`, `rooms`, `n`, …) usable wherever an integer is.
    Const(String),
    /// `family[index].attr` or `object.attr` — an attribute reference.
    Var {
        /// Object family (`door`) or full object name (`waiting_room`).
        family: String,
        /// The index expression, const-evaluated at compile time.
        index: Option<Box<Spanned<PExpr>>>,
        /// The attribute name.
        attr: String,
    },
    /// `sum(i in lo..hi)(body)` — unrolled at compile time.
    Sum {
        /// The loop variable.
        var: String,
        /// Inclusive lower bound (const-evaluated).
        lo: Box<Spanned<PExpr>>,
        /// Exclusive upper bound (const-evaluated).
        hi: Box<Spanned<PExpr>>,
        /// The body, instantiated once per index.
        body: Box<Spanned<PExpr>>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Spanned<PExpr>>,
        /// Right operand.
        rhs: Box<Spanned<PExpr>>,
    },
    /// `not e` / `!e`.
    Not(Box<Spanned<PExpr>>),
    /// Unary minus.
    Neg(Box<Spanned<PExpr>>),
}

/// `faults { at ... ; chaos { ... } }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultsDef {
    /// Explicit scripted faults, in file order.
    pub entries: Vec<Spanned<FaultEntry>>,
    /// `chaos { ... }` fields — lowered to a
    /// [`psn_sim::fault::ChaosConfig`]-generated script merged after the
    /// explicit entries.
    pub chaos: Option<Vec<Field>>,
}

/// One `at T ...` scripted fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEntry {
    /// `at T crash A [recover D]`
    Crash {
        /// Injection time, nanoseconds.
        at: u64,
        /// The crashed sensor.
        actor: Spanned<i64>,
        /// Recovery delay, if the process comes back.
        recover: Option<u64>,
    },
    /// `at T partition [A, B, ...] [heal D] [park]`
    Partition {
        /// Injection time, nanoseconds.
        at: u64,
        /// The group cut off from the rest.
        group: Vec<Spanned<i64>>,
        /// Heal delay, if the cut heals.
        heal: Option<u64>,
        /// Park messages at the cut instead of dropping them.
        park: bool,
    },
    /// `at T channel [from A] [to B] prob P <effect> [for D]`
    Channel {
        /// Injection time, nanoseconds.
        at: u64,
        /// Source filter.
        from: Option<Spanned<i64>>,
        /// Destination filter.
        to: Option<Spanned<i64>>,
        /// Per-message probability.
        prob: f64,
        /// What happens to a matched message.
        effect: ChannelEffectDef,
        /// Rule lifetime (permanent when omitted).
        dur: Option<u64>,
    },
    /// `at T clock A <kind>`
    Clock {
        /// Injection time, nanoseconds.
        at: u64,
        /// The affected sensor.
        actor: Spanned<i64>,
        /// What happens to its clock.
        kind: ClockKindDef,
    },
}

/// Channel-fault effects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelEffectDef {
    /// `drop`
    Drop,
    /// `duplicate`
    Duplicate,
    /// `reorder D` — extra delay D.
    Reorder(u64),
    /// `corrupt`
    Corrupt,
}

/// Clock-fault kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockKindDef {
    /// `drift_spike PPM`
    DriftSpike(f64),
    /// `reset`
    Reset,
    /// `freeze`
    Freeze,
    /// `unfreeze`
    Unfreeze,
    /// `desync`
    Desync,
    /// `resync`
    Resync,
}
