//! Lowering from the `.psn` AST onto the workspace structures.
//!
//! One [`ScenarioDef`] becomes a [`CompiledScenario`]: a generated
//! [`psn_world::Scenario`] (world topology + mobility from the named
//! parameterized generator), an
//! [`psn_core::ExecutionConfig`] (clock discipline, strobes, network and
//! shard setup, fault script), and the named
//! [`psn_predicates::Predicate`]s with variables resolved against the
//! generated world's objects and attributes.
//!
//! Compilation is *total over spans*: every rejection is a
//! [`Diagnostic`] pointing at the offending token, and the compiler
//! keeps going where it can so one `--check` run reports as much as
//! possible.

use std::collections::BTreeMap;

use psn_core::{ClockConfig, ExecutionConfig, ShardPlanKind, SpeculationMode, TraceStampMode};
use psn_predicates::{Conjunct, Discipline, Expr, Predicate};
use psn_sim::delay::DelayModel;
use psn_sim::fault::{
    ChannelEffect, ChannelFaultRule, ChaosConfig, ClockFaultKind, CutPolicy, FaultScript, FaultSpec,
};
use psn_sim::loss::LossModel;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::{exhibition, habitat, hospital, office, structure};
use psn_world::{AttrKey, Scenario};

use crate::ast::*;
use crate::diag::{Diagnostic, Span, Spanned};
use crate::parser::parse;

/// A fully lowered scenario, ready to run through the engine.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The scenario name from the source.
    pub name: String,
    /// The master seed (world generation and execution).
    pub seed: u64,
    /// The generated world run.
    pub scenario: Scenario,
    /// The engine configuration (clocks, strobes, network, shards,
    /// faults).
    pub config: ExecutionConfig,
    /// Named predicates with resolved variables.
    pub predicates: Vec<CompiledPredicate>,
    /// The run-level detection discipline (`run { discipline ... }`,
    /// vector strobes by default).
    pub discipline: Discipline,
}

/// One named, lowered predicate.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    /// The quoted name from the source.
    pub name: String,
    /// The lowered predicate.
    pub predicate: Predicate,
}

/// Parse + compile in one step.
pub fn compile(source: &str) -> Result<CompiledScenario, Vec<Diagnostic>> {
    compile_def(&parse(source)?)
}

/// Parse + type-check without keeping the result (the `--check` mode).
pub fn check(source: &str) -> Result<(), Vec<Diagnostic>> {
    compile(source).map(|_| ())
}

/// Typed field-value extraction helpers.
struct FieldReader<'a> {
    diags: &'a mut Vec<Diagnostic>,
}

impl FieldReader<'_> {
    fn mismatch<T>(&mut self, f: &Field, want: &str) -> Option<T> {
        self.diags.push(Diagnostic::new(
            f.value.span,
            format!("field `{}` expects {want}, found a {}", f.name.node, f.value.node.kind()),
        ));
        None
    }

    fn usize(&mut self, f: &Field) -> Option<usize> {
        match f.value.node {
            Value::Int(v) if v >= 0 => Some(v as usize),
            _ => self.mismatch(f, "a non-negative integer"),
        }
    }

    fn i64(&mut self, f: &Field) -> Option<i64> {
        match f.value.node {
            Value::Int(v) => Some(v),
            _ => self.mismatch(f, "an integer"),
        }
    }

    fn f64(&mut self, f: &Field) -> Option<f64> {
        match f.value.node {
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => self.mismatch(f, "a number"),
        }
    }

    fn bool(&mut self, f: &Field) -> Option<bool> {
        match f.value.node {
            Value::Bool(v) => Some(v),
            _ => self.mismatch(f, "`true` or `false`"),
        }
    }

    fn duration(&mut self, f: &Field) -> Option<SimDuration> {
        match f.value.node {
            Value::Dur(ns) => Some(SimDuration::from_nanos(ns)),
            _ => self.mismatch(f, "a duration (like `300ms` or `20s`)"),
        }
    }

    fn time(&mut self, f: &Field) -> Option<SimTime> {
        match f.value.node {
            Value::Dur(ns) => Some(SimTime::from_nanos(ns)),
            _ => self.mismatch(f, "a duration (like `300ms` or `20s`)"),
        }
    }

    fn ident<'f>(&mut self, f: &'f Field) -> Option<&'f str> {
        match &f.value.node {
            Value::Ident(s) => Some(s.as_str()),
            _ => self.mismatch(f, "an identifier"),
        }
    }
}

fn unknown_field(diags: &mut Vec<Diagnostic>, f: &Field, block: &str, known: &[&str]) {
    diags.push(Diagnostic::new(
        f.name.span,
        format!("unknown {block} field `{}` (known: {})", f.name.node, known.join(", ")),
    ));
}

/// The compile-time constant environment: world parameters by name, plus
/// `n` (the number of sensor processes).
type Env = BTreeMap<String, i64>;

/// Lower the `world` block: build the generator params, apply overrides,
/// generate the scenario, and publish the parameters as constants.
fn lower_world(
    def: &WorldDef,
    seed: u64,
    diags: &mut Vec<Diagnostic>,
) -> Option<(Scenario, Env, SimTime)> {
    let mut env = Env::new();
    let mut r = FieldReader { diags };
    macro_rules! set {
        ($p:expr, $f:expr, $r:ident, $m:ident) => {
            if let Some(v) = $r.$m($f) {
                $p = v;
            }
        };
    }
    let (scenario, duration) = match def.kind.node.as_str() {
        "office" => {
            let mut p = office::OfficeParams::default();
            for f in &def.fields {
                match f.name.node.as_str() {
                    "rooms" => set!(p.rooms, f, r, usize),
                    "persons" => set!(p.persons, f, r, usize),
                    "mean_dwell" => set!(p.mean_dwell, f, r, duration),
                    "temp_step_every" => set!(p.temp_step_every, f, r, duration),
                    "temp_sigma" => set!(p.temp_sigma, f, r, f64),
                    "temp_emit_threshold" => set!(p.temp_emit_threshold, f, r, f64),
                    "base_temp" => set!(p.base_temp, f, r, f64),
                    "pens" => set!(p.pens, f, r, usize),
                    "duration" => set!(p.duration, f, r, time),
                    _ => unknown_field(
                        r.diags,
                        f,
                        "office",
                        &[
                            "rooms",
                            "persons",
                            "mean_dwell",
                            "temp_step_every",
                            "temp_sigma",
                            "temp_emit_threshold",
                            "base_temp",
                            "pens",
                            "duration",
                        ],
                    ),
                }
            }
            if p.rooms == 0 {
                r.diags.push(Diagnostic::new(def.kind.span, "office needs at least one room"));
                return None;
            }
            env.insert("rooms".into(), p.rooms as i64);
            env.insert("persons".into(), p.persons as i64);
            env.insert("pens".into(), p.pens as i64);
            (office::generate(&p, seed), p.duration)
        }
        "exhibition" => {
            let mut p = exhibition::ExhibitionParams::default();
            for f in &def.fields {
                match f.name.node.as_str() {
                    "doors" => set!(p.doors, f, r, usize),
                    "arrival_rate_hz" => set!(p.arrival_rate_hz, f, r, f64),
                    "mean_stay" => set!(p.mean_stay, f, r, duration),
                    "duration" => set!(p.duration, f, r, time),
                    "capacity" => set!(p.capacity, f, r, i64),
                    _ => unknown_field(
                        r.diags,
                        f,
                        "exhibition",
                        &["doors", "arrival_rate_hz", "mean_stay", "duration", "capacity"],
                    ),
                }
            }
            if p.doors == 0 {
                r.diags.push(Diagnostic::new(def.kind.span, "exhibition needs at least one door"));
                return None;
            }
            env.insert("doors".into(), p.doors as i64);
            env.insert("capacity".into(), p.capacity);
            (exhibition::generate(&p, seed), p.duration)
        }
        "hospital" => {
            let mut p = hospital::HospitalParams::default();
            for f in &def.fields {
                match f.name.node.as_str() {
                    "wards" => set!(p.wards, f, r, usize),
                    "infectious_ward" => set!(p.infectious_ward, f, r, usize),
                    "visitors" => set!(p.visitors, f, r, usize),
                    "mean_dwell" => set!(p.mean_dwell, f, r, duration),
                    "duration" => set!(p.duration, f, r, time),
                    _ => unknown_field(
                        r.diags,
                        f,
                        "hospital",
                        &["wards", "infectious_ward", "visitors", "mean_dwell", "duration"],
                    ),
                }
            }
            if p.wards < 2 || p.infectious_ward >= p.wards {
                r.diags.push(Diagnostic::new(
                    def.kind.span,
                    "hospital needs wards >= 2 and infectious_ward < wards",
                ));
                return None;
            }
            env.insert("wards".into(), p.wards as i64);
            env.insert("infectious_ward".into(), p.infectious_ward as i64);
            env.insert("visitors".into(), p.visitors as i64);
            (hospital::generate(&p, seed), p.duration)
        }
        "habitat" => {
            let mut p = habitat::HabitatParams::default();
            for f in &def.fields {
                match f.name.node.as_str() {
                    "stations" => set!(p.stations, f, r, usize),
                    "animals" => set!(p.animals, f, r, usize),
                    "mean_dwell" => set!(p.mean_dwell, f, r, duration),
                    "duration" => set!(p.duration, f, r, time),
                    _ => unknown_field(
                        r.diags,
                        f,
                        "habitat",
                        &["stations", "animals", "mean_dwell", "duration"],
                    ),
                }
            }
            if p.stations < 2 {
                r.diags.push(Diagnostic::new(def.kind.span, "habitat needs at least two stations"));
                return None;
            }
            env.insert("stations".into(), p.stations as i64);
            env.insert("animals".into(), p.animals as i64);
            (habitat::generate(&p, seed), p.duration)
        }
        "structure" => {
            let mut p = structure::StructureParams::default();
            for f in &def.fields {
                match f.name.node.as_str() {
                    "segments" => set!(p.segments, f, r, usize),
                    "shock_rate_hz" => set!(p.shock_rate_hz, f, r, f64),
                    "coupling_delay" => set!(p.coupling_delay, f, r, duration),
                    "coupling_hops" => set!(p.coupling_hops, f, r, usize),
                    "ring_down" => set!(p.ring_down, f, r, duration),
                    "duration" => set!(p.duration, f, r, time),
                    _ => unknown_field(
                        r.diags,
                        f,
                        "structure",
                        &[
                            "segments",
                            "shock_rate_hz",
                            "coupling_delay",
                            "coupling_hops",
                            "ring_down",
                            "duration",
                        ],
                    ),
                }
            }
            if p.segments == 0 {
                r.diags
                    .push(Diagnostic::new(def.kind.span, "structure needs at least one segment"));
                return None;
            }
            env.insert("segments".into(), p.segments as i64);
            (structure::generate(&p, seed), p.duration)
        }
        other => {
            diags.push(Diagnostic::new(
                def.kind.span,
                format!(
                    "unknown world kind `{other}` (known: office, exhibition, hospital, \
                     habitat, structure)"
                ),
            ));
            return None;
        }
    };
    env.insert("n".into(), scenario.num_processes() as i64);
    Some((scenario, env, duration))
}

/// `_` and `-` are interchangeable between source identifiers and object
/// or attribute names (`waiting_room` ↔ `waiting-room`).
fn normalize(name: &str) -> String {
    name.replace('_', "-")
}

/// Resolve `family[index].attr` / `name.attr` to an [`AttrKey`] against
/// the generated world's objects.
fn resolve_var(
    scenario: &Scenario,
    family: &str,
    index: Option<i64>,
    attr: &str,
    span: Span,
) -> Result<AttrKey, Diagnostic> {
    let objects = &scenario.timeline.objects;
    let wanted = match index {
        Some(i) => format!("{}-{}", normalize(family), i),
        None => normalize(family),
    };
    // Exact name first; else a unique `wanted-` prefix (so `ward[4]`
    // finds `ward-4-infectious` without also matching `ward-40`).
    let obj = objects.iter().find(|o| o.name == wanted).or_else(|| {
        let mut hits = objects.iter().filter(|o| {
            o.name.starts_with(&wanted) && o.name.as_bytes().get(wanted.len()) == Some(&b'-')
        });
        match (hits.next(), hits.next()) {
            (Some(o), None) => Some(o),
            _ => None,
        }
    });
    let Some(obj) = obj else {
        let known: Vec<&str> = objects.iter().map(|o| o.name.as_str()).take(8).collect();
        return Err(Diagnostic::new(
            span,
            format!("no object named `{wanted}` in this world (objects: {}…)", known.join(", ")),
        ));
    };
    let wanted_attr = normalize(attr);
    match obj.attr_id(&wanted_attr) {
        Some(a) => Ok(AttrKey::new(obj.id, a)),
        None => {
            let known: Vec<String> = obj.attrs.iter().map(|(n, _)| n.clone()).collect();
            Err(Diagnostic::new(
                span,
                format!(
                    "object `{}` has no attribute `{wanted_attr}` (attributes: {})",
                    obj.name,
                    known.join(", ")
                ),
            ))
        }
    }
}

/// Evaluate a compile-time integer (index and range bounds): literals,
/// constants from the environment, and integer arithmetic.
fn const_eval(e: &Spanned<PExpr>, env: &Env) -> Result<i64, Diagnostic> {
    match &e.node {
        PExpr::Int(v) => Ok(*v),
        PExpr::Const(name) => env.get(name).copied().ok_or_else(|| {
            let known: Vec<&str> = env.keys().map(|k| k.as_str()).collect();
            Diagnostic::new(
                e.span,
                format!("unknown constant `{name}` (known here: {})", known.join(", ")),
            )
        }),
        PExpr::Neg(inner) => Ok(-const_eval(inner, env)?),
        PExpr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, env)?;
            let b = const_eval(rhs, env)?;
            match op {
                BinOp::Add => Ok(a + b),
                BinOp::Sub => Ok(a - b),
                BinOp::Mul => Ok(a * b),
                _ => {
                    Err(Diagnostic::new(e.span, "only +, -, * are allowed in compile-time indices"))
                }
            }
        }
        _ => Err(Diagnostic::new(
            e.span,
            "expected a compile-time integer (a literal, a world constant, or arithmetic \
             over them)",
        )),
    }
}

/// Lower a predicate expression to an engine [`Expr`], resolving
/// variables and unrolling `sum` comprehensions.
fn lower_expr(e: &Spanned<PExpr>, scenario: &Scenario, env: &Env) -> Result<Expr, Diagnostic> {
    match &e.node {
        PExpr::Int(v) => Ok(Expr::int(*v)),
        PExpr::Float(v) => Ok(Expr::float(*v)),
        PExpr::Bool(v) => Ok(Expr::boolean(*v)),
        // A bare constant in value position becomes its integer value
        // (e.g. `... > capacity`).
        PExpr::Const(_) => Ok(Expr::int(const_eval(e, env)?)),
        PExpr::Var { family, index, attr } => {
            let idx = index.as_ref().map(|i| const_eval(i, env)).transpose()?;
            Ok(Expr::var(resolve_var(scenario, family, idx, attr, e.span)?))
        }
        PExpr::Sum { var, lo, hi, body } => {
            let lo = const_eval(lo, env)?;
            let hi = const_eval(hi, env)?;
            if lo > hi {
                return Err(Diagnostic::new(e.span, format!("empty sum range {lo}..{hi}")));
            }
            let mut terms = Vec::with_capacity((hi - lo) as usize);
            for i in lo..hi {
                let mut inner = env.clone();
                inner.insert(var.clone(), i);
                terms.push(lower_expr(body, scenario, &inner)?);
            }
            if terms.is_empty() {
                return Err(Diagnostic::new(e.span, format!("sum range {lo}..{hi} is empty")));
            }
            Ok(Expr::Sum(terms))
        }
        PExpr::Binary { op, lhs, rhs } => {
            let a = lower_expr(lhs, scenario, env)?;
            let b = lower_expr(rhs, scenario, env)?;
            Ok(match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Gt => a.gt(b),
                BinOp::Ge => a.ge(b),
                BinOp::Lt => a.lt(b),
                // `<=` is the flipped `>=`; `!=` the negated `==` (the
                // engine Expr keeps a minimal operator set).
                BinOp::Le => b.ge(a),
                BinOp::Eq => a.eq_expr(b),
                BinOp::Ne => a.eq_expr(b).negate(),
                BinOp::And => a.and(b),
                BinOp::Or => a.or(b),
            })
        }
        PExpr::Not(inner) => Ok(lower_expr(inner, scenario, env)?.negate()),
        PExpr::Neg(inner) => match &inner.node {
            PExpr::Int(v) => Ok(Expr::int(-v)),
            PExpr::Float(v) => Ok(Expr::float(-v)),
            _ => Ok(Expr::int(0).sub(lower_expr(inner, scenario, env)?)),
        },
    }
}

/// Friendly `object.attr` rendering of a resolved key, for diagnostics.
fn key_name(scenario: &Scenario, key: AttrKey) -> String {
    scenario
        .timeline
        .objects
        .iter()
        .find(|o| o.id == key.object)
        .map(|o| {
            let attr = o.attrs.get(key.attr).map(|(n, _)| n.as_str()).unwrap_or("?");
            format!("{}.{attr}", o.name)
        })
        .unwrap_or_else(|| format!("obj{}.attr{}", key.object, key.attr))
}

fn lower_predicate(
    def: &PredicateDef,
    scenario: &Scenario,
    env: &Env,
    diags: &mut Vec<Diagnostic>,
) -> Option<CompiledPredicate> {
    let predicate = match &def.body {
        PredicateBody::Relational(e) => match lower_expr(e, scenario, env) {
            Ok(expr) => Predicate::Relational(expr),
            Err(d) => {
                diags.push(d);
                return None;
            }
        },
        PredicateBody::Conjunctive(parts) => {
            let n = scenario.num_processes() as i64;
            let mut conjuncts = Vec::new();
            let mut ok = true;
            for part in parts {
                if part.process.node < 0 || part.process.node >= n {
                    diags.push(Diagnostic::new(
                        part.process.span,
                        format!(
                            "process {} is out of range (this world has {n} sensor processes)",
                            part.process.node
                        ),
                    ));
                    ok = false;
                    continue;
                }
                let process = part.process.node as usize;
                match lower_expr(&part.expr, scenario, env) {
                    Ok(expr) => {
                        // A conjunct must be local: every variable it
                        // reads is sensed by its owning process.
                        for key in expr.variables() {
                            let owner = scenario.sensing.process_for(key);
                            if owner != Some(process) {
                                diags.push(Diagnostic::new(
                                    part.expr.span,
                                    format!(
                                        "conjunct at process {process} reads \
                                         `{}`, which is sensed by {} — conjunctive \
                                         predicates must be local (use a relational \
                                         predicate for cross-process expressions)",
                                        key_name(scenario, key),
                                        match owner {
                                            Some(p) => format!("process {p}"),
                                            None => "no process".into(),
                                        }
                                    ),
                                ));
                                ok = false;
                            }
                        }
                        conjuncts.push(Conjunct { process, expr });
                    }
                    Err(d) => {
                        diags.push(d);
                        ok = false;
                    }
                }
            }
            if !ok {
                return None;
            }
            Predicate::Conjunctive(conjuncts)
        }
    };
    Some(CompiledPredicate { name: def.name.node.clone(), predicate })
}

/// Parse a discipline name (used by the `run { discipline ... }` field).
pub fn parse_discipline(name: &str) -> Option<Discipline> {
    Some(match name {
        "oracle" => Discipline::Oracle,
        "synced_physical" | "phys_sync" | "synced" => Discipline::SyncedPhysical,
        "unsynced_physical" | "phys_unsync" | "unsynced" => Discipline::UnsyncedPhysical,
        "arrival" => Discipline::Arrival,
        "scalar_strobe" | "strobe_scalar" => Discipline::ScalarStrobe,
        "vector_strobe" | "strobe_vector" => Discipline::VectorStrobe,
        _ => return None,
    })
}

fn lower_run_block(
    def: &ScenarioDef,
    config: &mut ExecutionConfig,
    discipline: &mut Discipline,
    diags: &mut Vec<Diagnostic>,
) {
    let mut r = FieldReader { diags };
    for f in &def.run {
        match f.name.node.as_str() {
            "shards" => {
                if let Some(v) = r.usize(f) {
                    if v == 0 {
                        r.diags.push(Diagnostic::new(f.value.span, "shards must be >= 1"));
                    } else {
                        config.shards = v;
                    }
                }
            }
            "plan" => {
                if let Some(name) = r.ident(f) {
                    match name {
                        "contiguous" => config.shard_plan = Some(ShardPlanKind::Contiguous),
                        "interleaved" | "roundrobin" | "round_robin" => {
                            config.shard_plan = Some(ShardPlanKind::Interleaved)
                        }
                        "hash" => config.shard_plan = Some(ShardPlanKind::Hash),
                        "affinity" => config.shard_plan = Some(ShardPlanKind::Affinity),
                        other => r.diags.push(Diagnostic::new(
                            f.value.span,
                            format!(
                                "unknown shard plan `{other}` (known: contiguous, interleaved, \
                                 hash, affinity)"
                            ),
                        )),
                    }
                }
            }
            "optimistic" => {
                if let Some(v) = r.bool(f) {
                    config.speculation = Some(if v {
                        SpeculationMode::Optimistic
                    } else {
                        SpeculationMode::Conservative
                    });
                }
            }
            "discipline" => {
                if let Some(name) = r.ident(f) {
                    match parse_discipline(name) {
                        Some(d) => *discipline = d,
                        None => r.diags.push(Diagnostic::new(
                            f.value.span,
                            format!(
                                "unknown discipline `{name}` (known: oracle, synced_physical, \
                                 unsynced_physical, arrival, scalar_strobe, vector_strobe)"
                            ),
                        )),
                    }
                }
            }
            "stamp" => {
                if let Some(name) = r.ident(f) {
                    match name {
                        "scalar" => config.trace_stamp = TraceStampMode::Scalar,
                        "vector" => config.trace_stamp = TraceStampMode::Vector,
                        other => r.diags.push(Diagnostic::new(
                            f.value.span,
                            format!("unknown stamp mode `{other}` (known: scalar, vector)"),
                        )),
                    }
                }
            }
            "trace" => {
                if let Some(v) = r.bool(f) {
                    config.record_sim_trace = v;
                }
            }
            "end_time" => {
                if let Some(t) = r.time(f) {
                    config.end_time = Some(t);
                }
            }
            _ => unknown_field(
                r.diags,
                f,
                "run",
                &["shards", "plan", "optimistic", "discipline", "stamp", "trace", "end_time"],
            ),
        }
    }
}

fn lower_clocks(fields: &[Field], clocks: &mut ClockConfig, diags: &mut Vec<Diagnostic>) {
    let mut r = FieldReader { diags };
    for f in fields {
        match f.name.node.as_str() {
            "epsilon" => {
                if let Some(d) = r.duration(f) {
                    clocks.epsilon = d;
                }
            }
            "max_offset" => {
                if let Some(d) = r.duration(f) {
                    clocks.max_offset = d;
                }
            }
            "max_drift_ppm" => {
                if let Some(v) = r.f64(f) {
                    clocks.max_drift_ppm = v;
                }
            }
            _ => unknown_field(r.diags, f, "clocks", &["epsilon", "max_offset", "max_drift_ppm"]),
        }
    }
}

fn lower_strobes(
    fields: &[Field],
    strobes: &mut psn_core::StrobePolicy,
    diags: &mut Vec<Diagnostic>,
) {
    let mut r = FieldReader { diags };
    for f in fields {
        match f.name.node.as_str() {
            "every" => {
                if let Some(v) = r.usize(f) {
                    if v == 0 {
                        r.diags.push(Diagnostic::new(f.value.span, "`every` must be >= 1"));
                    } else {
                        strobes.every = v;
                    }
                }
            }
            "heartbeat" => {
                if let Some(d) = r.duration(f) {
                    strobes.heartbeat = Some(d);
                }
            }
            "flood" => {
                if let Some(v) = r.bool(f) {
                    strobes.flood = v;
                }
            }
            "quarantine" => {
                if let Some(v) = r.bool(f) {
                    strobes.quarantine = v;
                }
            }
            _ => {
                unknown_field(r.diags, f, "strobes", &["every", "heartbeat", "flood", "quarantine"])
            }
        }
    }
}

fn lower_network(net: &NetworkDef, config: &mut ExecutionConfig) {
    if let Some(d) = &net.delay {
        config.delay = match d.node {
            DelaySpec::Synchronous => DelayModel::Synchronous,
            DelaySpec::Fixed(ns) => DelayModel::Fixed(SimDuration::from_nanos(ns)),
            DelaySpec::Delta(ns) => DelayModel::delta(SimDuration::from_nanos(ns)),
            DelaySpec::Uniform { min, max } => DelayModel::DeltaBounded {
                min: SimDuration::from_nanos(min),
                max: SimDuration::from_nanos(max),
            },
            DelaySpec::Exponential { mean, cap } => DelayModel::Exponential {
                mean: SimDuration::from_nanos(mean),
                cap: cap.map(SimDuration::from_nanos),
            },
        };
    }
    if let Some(l) = &net.loss {
        config.loss = match l.node {
            LossSpec::None => LossModel::None,
            LossSpec::Bernoulli(p) => LossModel::Bernoulli { p },
            LossSpec::Bursty(p_gb, p_bg, lg, lb) => LossModel::bursty(p_gb, p_bg, lg, lb),
        };
    }
    if let Some(f) = &net.fifo {
        config.fifo = f.node;
    }
}

fn check_actor(a: &Spanned<i64>, n: usize, diags: &mut Vec<Diagnostic>) -> Option<usize> {
    if a.node < 0 || a.node >= n as i64 {
        diags.push(Diagnostic::new(
            a.span,
            format!("process {} is out of range (this world has {n} sensor processes)", a.node),
        ));
        None
    } else {
        Some(a.node as usize)
    }
}

fn lower_faults(
    def: &FaultsDef,
    n: usize,
    seed: u64,
    horizon: SimTime,
    diags: &mut Vec<Diagnostic>,
) -> Option<FaultScript> {
    let mut script = FaultScript::new();
    for entry in &def.entries {
        let spec = match &entry.node {
            FaultEntry::Crash { at, actor, recover } => {
                let actor = check_actor(actor, n, diags)?;
                (
                    *at,
                    FaultSpec::Crash { actor, recover_after: recover.map(SimDuration::from_nanos) },
                )
            }
            FaultEntry::Partition { at, group, heal, park } => {
                let mut ids = Vec::new();
                for a in group {
                    ids.push(check_actor(a, n, diags)?);
                }
                // An omitted heal outlives the run (an unhealed cut).
                let heal_after = heal
                    .map(SimDuration::from_nanos)
                    .unwrap_or_else(|| SimDuration::from_nanos(horizon.as_nanos().max(1) * 2));
                (
                    *at,
                    FaultSpec::Partition {
                        group: ids,
                        heal_after,
                        policy: if *park { CutPolicy::Park } else { CutPolicy::Drop },
                    },
                )
            }
            FaultEntry::Channel { at, from, to, prob, effect, dur } => {
                let from = match from {
                    Some(a) => Some(check_actor(a, n + 1, diags)?),
                    None => None,
                };
                let to = match to {
                    Some(a) => Some(check_actor(a, n + 1, diags)?),
                    None => None,
                };
                (
                    *at,
                    FaultSpec::Channel(ChannelFaultRule {
                        from,
                        to,
                        prob: *prob,
                        effect: match effect {
                            ChannelEffectDef::Drop => ChannelEffect::Drop,
                            ChannelEffectDef::Duplicate => ChannelEffect::Duplicate,
                            ChannelEffectDef::Reorder(ns) => {
                                ChannelEffect::Reorder { extra: SimDuration::from_nanos(*ns) }
                            }
                            ChannelEffectDef::Corrupt => ChannelEffect::Corrupt,
                        },
                        duration: dur.map(SimDuration::from_nanos),
                    }),
                )
            }
            FaultEntry::Clock { at, actor, kind } => {
                let actor = check_actor(actor, n, diags)?;
                (
                    *at,
                    FaultSpec::Clock {
                        actor,
                        kind: match kind {
                            ClockKindDef::DriftSpike(ppm) => {
                                ClockFaultKind::DriftSpike { add_ppm: *ppm }
                            }
                            ClockKindDef::Reset => ClockFaultKind::Reset,
                            ClockKindDef::Freeze => ClockFaultKind::Freeze,
                            ClockKindDef::Unfreeze => ClockFaultKind::Unfreeze,
                            ClockKindDef::Desync => ClockFaultKind::Desync,
                            ClockKindDef::Resync => ClockFaultKind::Resync,
                        },
                    },
                )
            }
        };
        script
            .faults
            .push(psn_sim::fault::ScriptedFault { at: SimTime::from_nanos(spec.0), spec: spec.1 });
    }
    if let Some(chaos_fields) = &def.chaos {
        let mut cfg = ChaosConfig::new((0..n).collect(), horizon);
        let mut r = FieldReader { diags };
        for f in chaos_fields {
            match f.name.node.as_str() {
                "crashes" => {
                    if let Some(v) = r.usize(f) {
                        cfg.crashes = v;
                    }
                }
                "partitions" => {
                    if let Some(v) = r.usize(f) {
                        cfg.partitions = v;
                    }
                }
                "channel_rules" => {
                    if let Some(v) = r.usize(f) {
                        cfg.channel_rules = v;
                    }
                }
                "clock_faults" => {
                    if let Some(v) = r.usize(f) {
                        cfg.clock_faults = v;
                    }
                }
                "corruption" => {
                    if let Some(v) = r.bool(f) {
                        cfg.corruption = v;
                    }
                }
                "park" => {
                    if let Some(v) = r.bool(f) {
                        cfg.park = v;
                    }
                }
                "horizon" => {
                    if let Some(t) = r.time(f) {
                        cfg.horizon = t;
                    }
                }
                _ => unknown_field(
                    r.diags,
                    f,
                    "chaos",
                    &[
                        "crashes",
                        "partitions",
                        "channel_rules",
                        "clock_faults",
                        "corruption",
                        "park",
                        "horizon",
                    ],
                ),
            }
        }
        script.faults.extend(FaultScript::generate(&cfg, seed).faults);
    }
    Some(script)
}

/// Lower an already-parsed [`ScenarioDef`].
pub fn compile_def(def: &ScenarioDef) -> Result<CompiledScenario, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let seed = def.seed.as_ref().map(|s| s.node).unwrap_or(1);

    let Some((scenario, env, duration)) = lower_world(&def.world, seed, &mut diags) else {
        return Err(diags);
    };
    let n = scenario.num_processes();

    let mut config = ExecutionConfig {
        seed,
        // Scenario runs are meant to be analyzed: the structured trace
        // feeds detection, the golden hashes, and the chaos invariants.
        record_sim_trace: true,
        ..ExecutionConfig::default()
    };
    let mut discipline = Discipline::VectorStrobe;

    lower_clocks(&def.clocks, &mut config.clocks, &mut diags);
    lower_strobes(&def.strobes, &mut config.strobes, &mut diags);
    if let Some(net) = &def.network {
        lower_network(net, &mut config);
    }
    lower_run_block(def, &mut config, &mut discipline, &mut diags);

    if let Some(faults) = &def.faults {
        match lower_faults(faults, n, seed, duration, &mut diags) {
            Some(script) if !script.is_empty() => config.faults = Some(script),
            _ => {}
        }
    }

    let mut predicates = Vec::new();
    for p in &def.predicates {
        if let Some(cp) = lower_predicate(p, &scenario, &env, &mut diags) {
            predicates.push(cp);
        }
    }

    if !diags.is_empty() {
        return Err(diags);
    }
    Ok(CompiledScenario {
        name: def.name.node.clone(),
        seed,
        scenario,
        config,
        predicates,
        discipline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_an_exhibition_with_sum_predicate() {
        let src = r#"scenario "demo" {
            seed 11
            world exhibition { doors 3 duration 120s capacity 40 }
            network { delay uniform 20ms..200ms }
            predicate "crowded" relational {
                sum(d in 0..doors)(door[d].x - door[d].y) > capacity
            }
        }"#;
        let c = compile(src).expect("compiles");
        assert_eq!(c.scenario.num_processes(), 3);
        assert_eq!(c.predicates.len(), 1);
        // The sum unrolled into 3 terms.
        let Predicate::Relational(Expr::Gt(lhs, _)) = &c.predicates[0].predicate else {
            panic!("shape");
        };
        let Expr::Sum(terms) = lhs.as_ref() else { panic!("expected Sum") };
        assert_eq!(terms.len(), 3);
    }

    #[test]
    fn conjunct_locality_is_enforced() {
        let src = r#"scenario "bad" {
            world office { rooms 2 persons 1 duration 120s }
            predicate "wrong" conjunctive {
                at 0: room[1].motion
            }
        }"#;
        let errs = compile(src).unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("must be local")), "{errs:?}");
    }

    #[test]
    fn hospital_prefix_match_finds_infectious_ward() {
        let src = r#"scenario "h" {
            world hospital { duration 600s }
            predicate "exposure" relational { ward[4].count > 0 }
        }"#;
        let c = compile(src).expect("compiles");
        assert_eq!(c.predicates.len(), 1);
    }

    #[test]
    fn unknown_world_field_lists_known() {
        let src = r#"scenario "x" { world exhibition { dors 3 } }"#;
        let errs = compile(src).unwrap_err();
        assert!(errs[0].message.contains("unknown exhibition field `dors`"), "{}", errs[0].message);
        assert!(errs[0].message.contains("doors"), "{}", errs[0].message);
    }

    #[test]
    fn faults_lower_into_a_script() {
        let src = r#"scenario "f" {
            world exhibition { doors 3 duration 300s }
            faults {
                at 30s crash 0 recover 20s
                at 50s partition [0, 1] heal 10s park
                at 10s channel from 0 prob 0.5 reorder 50ms for 100s
                at 5s clock 1 drift_spike 400.0
                chaos { crashes 1 partitions 0 channel_rules 0 clock_faults 0 }
            }
        }"#;
        let c = compile(src).expect("compiles");
        let script = c.config.faults.expect("has script");
        // 4 explicit + 1 generated crash.
        assert_eq!(script.faults.len(), 5);
    }

    #[test]
    fn out_of_range_actor_is_a_diagnostic() {
        let src = r#"scenario "f" {
            world exhibition { doors 3 duration 300s }
            faults { at 30s crash 7 }
        }"#;
        let errs = compile(src).unwrap_err();
        assert!(errs[0].message.contains("out of range"), "{}", errs[0].message);
    }

    #[test]
    fn run_block_configures_sharding() {
        let src = r#"scenario "s" {
            world exhibition { doors 4 duration 120s }
            network { delay uniform 20ms..200ms }
            run { shards 4 plan affinity optimistic true discipline arrival }
        }"#;
        let c = compile(src).expect("compiles");
        assert_eq!(c.config.shards, 4);
        assert_eq!(c.config.shard_plan, Some(ShardPlanKind::Affinity));
        assert_eq!(c.config.speculation, Some(SpeculationMode::Optimistic));
        assert_eq!(c.discipline, Discipline::Arrival);
    }

    #[test]
    fn default_seed_is_one_and_trace_on() {
        let src = r#"scenario "d" { world habitat { duration 600s } }"#;
        let c = compile(src).expect("compiles");
        assert_eq!(c.seed, 1);
        assert!(c.config.record_sim_trace);
    }
}
