//! Recursive-descent parser for the `.psn` scenario language.
//!
//! Grammar sketch (see the README for the user-facing version):
//!
//! ```text
//! file       := scenario
//! scenario   := "scenario" STRING "{" item* "}"
//! item       := "seed" INT
//!             | "world" IDENT "{" field* "}"
//!             | "clocks" "{" field* "}"
//!             | "strobes" "{" field* "}"
//!             | "network" "{" net-item* "}"
//!             | "run" "{" field* "}"
//!             | "predicate" STRING ("relational" "{" expr "}"
//!                                  | "conjunctive" "{" ("at" INT ":" expr)* "}")
//!             | "faults" "{" fault-item* "}"
//! field      := IDENT value
//! value      := INT | FLOAT | DUR | "true" | "false" | IDENT
//! net-item   := "delay" delay | "loss" loss | "fifo" BOOL
//! delay      := "synchronous" | "fixed" DUR | "delta" DUR
//!             | "uniform" DUR ".." DUR | "exponential" DUR ["cap" DUR]
//! loss       := "none" | "bernoulli" FLOAT | "bursty" FLOAT FLOAT FLOAT FLOAT
//! fault-item := "at" DUR fault | "chaos" "{" field* "}"
//! fault      := "crash" INT ["recover" DUR]
//!             | "partition" "[" INT ("," INT)* "]" ["heal" DUR] ["park"]
//!             | "channel" ["from" INT] ["to" INT] "prob" NUM effect ["for" DUR]
//!             | "clock" INT clock-kind
//! effect     := "drop" | "duplicate" | "reorder" DUR | "corrupt"
//! clock-kind := "drift_spike" NUM | "reset" | "freeze" | "unfreeze"
//!             | "desync" | "resync"
//! expr       := or ; or := and ("or" and)* ; and := cmp ("and" cmp)*
//! cmp        := add (("<"|"<="|">"|">="|"=="|"!=") add)?
//! add        := mul (("+"|"-") mul)* ; mul := unary ("*" unary)*
//! unary      := ("not"|"!"|"-") unary | atom
//! atom       := NUM | BOOL | "(" expr ")"
//!             | "sum" "(" IDENT "in" expr ".." expr ")" "(" expr ")"
//!             | IDENT ("[" expr "]")? ("." IDENT)?
//! ```
//!
//! Statements need no terminators: every construct's arity is fixed by
//! its leading keyword.

use crate::ast::*;
use crate::diag::{Diagnostic, Span, Spanned};
use crate::lexer::{lex, Tok};

struct Parser {
    toks: Vec<Spanned<Tok>>,
    pos: usize,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].node
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Spanned<Tok> {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(Diagnostic::new(self.span(), msg))
    }

    fn expect(&mut self, want: &Tok, what: &str) -> PResult<Span> {
        if self.peek() == want {
            Ok(self.bump().span)
        } else {
            self.err(format!("expected {what}, found {}", self.peek().describe()))
        }
    }

    /// Consume the keyword `kw` (an `Ident` with that exact text).
    fn expect_kw(&mut self, kw: &str) -> PResult<Span> {
        match self.peek() {
            Tok::Ident(s) if s == kw => Ok(self.bump().span),
            other => Err(Diagnostic::new(
                self.span(),
                format!("expected `{kw}`, found {}", other.describe()),
            )),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self, what: &str) -> PResult<Spanned<String>> {
        match self.peek().clone() {
            Tok::Ident(s) => Ok(Spanned::new(s, self.bump().span)),
            other => self.err(format!("expected {what}, found {}", other.describe())),
        }
    }

    fn string(&mut self, what: &str) -> PResult<Spanned<String>> {
        match self.peek().clone() {
            Tok::Str(s) => Ok(Spanned::new(s, self.bump().span)),
            other => {
                self.err(format!("expected {what} (a quoted string), found {}", other.describe()))
            }
        }
    }

    fn int(&mut self, what: &str) -> PResult<Spanned<i64>> {
        match *self.peek() {
            Tok::Int(v) => Ok(Spanned::new(v, self.bump().span)),
            ref other => {
                self.err(format!("expected {what} (an integer), found {}", other.describe()))
            }
        }
    }

    fn dur(&mut self, what: &str) -> PResult<Spanned<u64>> {
        match *self.peek() {
            Tok::Dur(ns) => Ok(Spanned::new(ns, self.bump().span)),
            ref other => self.err(format!(
                "expected {what} (a duration like `300ms` or `20s`), found {}",
                other.describe()
            )),
        }
    }

    fn num(&mut self, what: &str) -> PResult<Spanned<f64>> {
        match *self.peek() {
            Tok::Int(v) => Ok(Spanned::new(v as f64, self.bump().span)),
            Tok::Float(v) => Ok(Spanned::new(v, self.bump().span)),
            ref other => {
                self.err(format!("expected {what} (a number), found {}", other.describe()))
            }
        }
    }

    // ---- blocks --------------------------------------------------------

    fn scenario(&mut self) -> PResult<ScenarioDef> {
        self.expect_kw("scenario")?;
        let name = self.string("the scenario name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut def = ScenarioDef {
            name,
            seed: None,
            world: WorldDef {
                kind: Spanned::new(String::new(), Span::default()),
                fields: Vec::new(),
            },
            clocks: Vec::new(),
            strobes: Vec::new(),
            network: None,
            run: Vec::new(),
            predicates: Vec::new(),
            faults: None,
        };
        let mut have_world = false;
        while self.peek() != &Tok::RBrace {
            let kw = self.ident("a block keyword")?;
            match kw.node.as_str() {
                "seed" => {
                    let v = self.int("the seed")?;
                    if v.node < 0 {
                        return Err(Diagnostic::new(v.span, "seed must be non-negative"));
                    }
                    def.seed = Some(Spanned::new(v.node as u64, v.span));
                }
                "world" => {
                    let kind = self
                        .ident("a world kind (office, exhibition, hospital, habitat, structure)")?;
                    def.world = WorldDef { kind, fields: self.field_block()? };
                    have_world = true;
                }
                "clocks" => def.clocks = self.field_block()?,
                "strobes" => def.strobes = self.field_block()?,
                "network" => def.network = Some(self.network_block()?),
                "run" => def.run = self.field_block()?,
                "predicate" => def.predicates.push(self.predicate_block()?),
                "faults" => def.faults = Some(self.faults_block()?),
                other => {
                    return Err(Diagnostic::new(
                        kw.span,
                        format!(
                            "unknown block `{other}` (expected seed, world, clocks, strobes, \
                             network, run, predicate, or faults)"
                        ),
                    ));
                }
            }
        }
        self.expect(&Tok::RBrace, "`}`")?;
        if !have_world {
            return Err(Diagnostic::new(
                def.name.span,
                "scenario has no `world` block (one is required)",
            ));
        }
        Ok(def)
    }

    fn field_block(&mut self) -> PResult<Vec<Field>> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut out = Vec::new();
        while self.peek() != &Tok::RBrace {
            let name = self.ident("a field name")?;
            let value = match self.peek().clone() {
                Tok::Int(v) => Spanned::new(Value::Int(v), self.bump().span),
                Tok::Float(v) => Spanned::new(Value::Float(v), self.bump().span),
                Tok::Dur(ns) => Spanned::new(Value::Dur(ns), self.bump().span),
                Tok::Ident(s) if s == "true" => Spanned::new(Value::Bool(true), self.bump().span),
                Tok::Ident(s) if s == "false" => Spanned::new(Value::Bool(false), self.bump().span),
                Tok::Ident(s) => Spanned::new(Value::Ident(s), self.bump().span),
                other => {
                    return self.err(format!(
                        "expected a value for field `{}`, found {}",
                        name.node,
                        other.describe()
                    ));
                }
            };
            out.push(Field { name, value });
        }
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(out)
    }

    fn network_block(&mut self) -> PResult<NetworkDef> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut net = NetworkDef::default();
        while self.peek() != &Tok::RBrace {
            let kw = self.ident("`delay`, `loss`, or `fifo`")?;
            match kw.node.as_str() {
                "delay" => {
                    let start = self.span();
                    let spec = self.delay_spec()?;
                    net.delay = Some(Spanned::new(spec, start.to(self.prev_span())));
                }
                "loss" => {
                    let start = self.span();
                    let spec = self.loss_spec()?;
                    net.loss = Some(Spanned::new(spec, start.to(self.prev_span())));
                }
                "fifo" => {
                    let v = self.ident("`true` or `false`")?;
                    let b = match v.node.as_str() {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(Diagnostic::new(
                                v.span,
                                format!("`fifo` expects `true` or `false`, found `{other}`"),
                            ));
                        }
                    };
                    net.fifo = Some(Spanned::new(b, v.span));
                }
                other => {
                    return Err(Diagnostic::new(
                        kw.span,
                        format!("unknown network item `{other}` (expected delay, loss, or fifo)"),
                    ));
                }
            }
        }
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(net)
    }

    fn delay_spec(&mut self) -> PResult<DelaySpec> {
        let kind = self.ident("a delay model (synchronous, fixed, delta, uniform, exponential)")?;
        Ok(match kind.node.as_str() {
            "synchronous" => DelaySpec::Synchronous,
            "fixed" => DelaySpec::Fixed(self.dur("the fixed delay")?.node),
            "delta" => DelaySpec::Delta(self.dur("the delay bound Δ")?.node),
            "uniform" => {
                let min = self.dur("the minimum delay")?;
                self.expect(&Tok::DotDot, "`..`")?;
                let max = self.dur("the maximum delay")?;
                if min.node > max.node {
                    return Err(Diagnostic::new(
                        min.span.to(max.span),
                        "uniform delay range has min > max",
                    ));
                }
                DelaySpec::Uniform { min: min.node, max: max.node }
            }
            "exponential" => {
                let mean = self.dur("the mean delay")?.node;
                let cap = if self.at_kw("cap") {
                    self.bump();
                    Some(self.dur("the delay cap")?.node)
                } else {
                    None
                };
                DelaySpec::Exponential { mean, cap }
            }
            other => {
                return Err(Diagnostic::new(
                    kind.span,
                    format!(
                        "unknown delay model `{other}` (expected synchronous, fixed, delta, \
                         uniform, or exponential)"
                    ),
                ));
            }
        })
    }

    fn loss_spec(&mut self) -> PResult<LossSpec> {
        let kind = self.ident("a loss model (none, bernoulli, bursty)")?;
        Ok(match kind.node.as_str() {
            "none" => LossSpec::None,
            "bernoulli" => {
                let p = self.num("the loss probability")?;
                if !(0.0..=1.0).contains(&p.node) {
                    return Err(Diagnostic::new(p.span, "loss probability must be in [0, 1]"));
                }
                LossSpec::Bernoulli(p.node)
            }
            "bursty" => {
                let a = self.num("p(good→bad)")?.node;
                let b = self.num("p(bad→good)")?.node;
                let c = self.num("loss in good state")?.node;
                let d = self.num("loss in bad state")?.node;
                LossSpec::Bursty(a, b, c, d)
            }
            other => {
                return Err(Diagnostic::new(
                    kind.span,
                    format!("unknown loss model `{other}` (expected none, bernoulli, or bursty)"),
                ));
            }
        })
    }

    fn predicate_block(&mut self) -> PResult<PredicateDef> {
        let name = self.string("the predicate name")?;
        let shape = self.ident("`relational` or `conjunctive`")?;
        let body = match shape.node.as_str() {
            "relational" => {
                self.expect(&Tok::LBrace, "`{`")?;
                let e = self.expr()?;
                self.expect(&Tok::RBrace, "`}`")?;
                PredicateBody::Relational(e)
            }
            "conjunctive" => {
                self.expect(&Tok::LBrace, "`{`")?;
                let mut parts = Vec::new();
                while self.peek() != &Tok::RBrace {
                    self.expect_kw("at")?;
                    let process = self.int("the owning process index")?;
                    self.expect(&Tok::Colon, "`:`")?;
                    parts.push(ConjunctDef { process, expr: self.expr()? });
                }
                self.expect(&Tok::RBrace, "`}`")?;
                if parts.is_empty() {
                    return Err(Diagnostic::new(
                        name.span,
                        "conjunctive predicate has no `at P: expr` parts",
                    ));
                }
                PredicateBody::Conjunctive(parts)
            }
            other => {
                return Err(Diagnostic::new(
                    shape.span,
                    format!("expected `relational` or `conjunctive`, found `{other}`"),
                ));
            }
        };
        Ok(PredicateDef { name, body })
    }

    fn faults_block(&mut self) -> PResult<FaultsDef> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut def = FaultsDef::default();
        while self.peek() != &Tok::RBrace {
            if self.at_kw("chaos") {
                self.bump();
                def.chaos = Some(self.field_block()?);
                continue;
            }
            let start = self.span();
            self.expect_kw("at")?;
            let at = self.dur("the injection time")?.node;
            let entry = self.fault_entry(at)?;
            def.entries.push(Spanned::new(entry, start.to(self.prev_span())));
        }
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(def)
    }

    fn fault_entry(&mut self, at: u64) -> PResult<FaultEntry> {
        let kind = self.ident("a fault kind (crash, partition, channel, clock)")?;
        Ok(match kind.node.as_str() {
            "crash" => {
                let actor = self.int("the crashed process")?;
                let recover = if self.at_kw("recover") {
                    self.bump();
                    Some(self.dur("the recovery delay")?.node)
                } else {
                    None
                };
                FaultEntry::Crash { at, actor, recover }
            }
            "partition" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let mut group = vec![self.int("a process index")?];
                while self.peek() == &Tok::Comma {
                    self.bump();
                    group.push(self.int("a process index")?);
                }
                self.expect(&Tok::RBracket, "`]`")?;
                let heal = if self.at_kw("heal") {
                    self.bump();
                    Some(self.dur("the heal delay")?.node)
                } else {
                    None
                };
                let park = if self.at_kw("park") {
                    self.bump();
                    true
                } else {
                    false
                };
                FaultEntry::Partition { at, group, heal, park }
            }
            "channel" => {
                let mut from = None;
                let mut to = None;
                if self.at_kw("from") {
                    self.bump();
                    from = Some(self.int("the source process")?);
                }
                if self.at_kw("to") {
                    self.bump();
                    to = Some(self.int("the destination process")?);
                }
                self.expect_kw("prob")?;
                let prob = self.num("the match probability")?;
                if !(0.0..=1.0).contains(&prob.node) {
                    return Err(Diagnostic::new(prob.span, "probability must be in [0, 1]"));
                }
                let eff = self.ident("an effect (drop, duplicate, reorder, corrupt)")?;
                let effect = match eff.node.as_str() {
                    "drop" => ChannelEffectDef::Drop,
                    "duplicate" => ChannelEffectDef::Duplicate,
                    "reorder" => ChannelEffectDef::Reorder(self.dur("the extra delay")?.node),
                    "corrupt" => ChannelEffectDef::Corrupt,
                    other => {
                        return Err(Diagnostic::new(
                            eff.span,
                            format!(
                                "unknown channel effect `{other}` (expected drop, duplicate, \
                                 reorder, or corrupt)"
                            ),
                        ));
                    }
                };
                let dur = if self.at_kw("for") {
                    self.bump();
                    Some(self.dur("the rule lifetime")?.node)
                } else {
                    None
                };
                FaultEntry::Channel { at, from, to, prob: prob.node, effect, dur }
            }
            "clock" => {
                let actor = self.int("the affected process")?;
                let k = self.ident(
                    "a clock fault (drift_spike, reset, freeze, unfreeze, desync, resync)",
                )?;
                let kind = match k.node.as_str() {
                    "drift_spike" => {
                        ClockKindDef::DriftSpike(self.num("the added drift, ppm")?.node)
                    }
                    "reset" => ClockKindDef::Reset,
                    "freeze" => ClockKindDef::Freeze,
                    "unfreeze" => ClockKindDef::Unfreeze,
                    "desync" => ClockKindDef::Desync,
                    "resync" => ClockKindDef::Resync,
                    other => {
                        return Err(Diagnostic::new(
                            k.span,
                            format!(
                                "unknown clock fault `{other}` (expected drift_spike, reset, \
                                 freeze, unfreeze, desync, or resync)"
                            ),
                        ));
                    }
                };
                FaultEntry::Clock { at, actor, kind }
            }
            other => {
                return Err(Diagnostic::new(
                    kind.span,
                    format!(
                        "unknown fault kind `{other}` (expected crash, partition, channel, \
                         or clock)"
                    ),
                ));
            }
        })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> PResult<Spanned<PExpr>> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Spanned<PExpr>> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("or") || self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                PExpr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Spanned<PExpr>> {
        let mut lhs = self.cmp_expr()?;
        while self.at_kw("and") || self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                PExpr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Spanned<PExpr>> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Spanned::new(PExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span))
    }

    fn add_expr(&mut self) -> PResult<Spanned<PExpr>> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(PExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Spanned<PExpr>> {
        let mut lhs = self.unary_expr()?;
        while self.peek() == &Tok::Star {
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                PExpr::Binary { op: BinOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Spanned<PExpr>> {
        if self.at_kw("not") || self.peek() == &Tok::Bang {
            let start = self.bump().span;
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Ok(Spanned::new(PExpr::Not(Box::new(inner)), span));
        }
        if self.peek() == &Tok::Minus {
            let start = self.bump().span;
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Ok(Spanned::new(PExpr::Neg(Box::new(inner)), span));
        }
        self.atom_expr()
    }

    fn atom_expr(&mut self) -> PResult<Spanned<PExpr>> {
        match self.peek().clone() {
            Tok::Int(v) => Ok(Spanned::new(PExpr::Int(v), self.bump().span)),
            Tok::Float(v) => Ok(Spanned::new(PExpr::Float(v), self.bump().span)),
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(s) if s == "true" => Ok(Spanned::new(PExpr::Bool(true), self.bump().span)),
            Tok::Ident(s) if s == "false" => Ok(Spanned::new(PExpr::Bool(false), self.bump().span)),
            Tok::Ident(s) if s == "sum" => {
                let start = self.bump().span;
                self.expect(&Tok::LParen, "`(`")?;
                let var = self.ident("the loop variable")?;
                self.expect_kw("in")?;
                let lo = self.add_expr()?;
                self.expect(&Tok::DotDot, "`..`")?;
                let hi = self.add_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::LParen, "`(`")?;
                let body = self.expr()?;
                let end = self.expect(&Tok::RParen, "`)`")?;
                Ok(Spanned::new(
                    PExpr::Sum {
                        var: var.node,
                        lo: Box::new(lo),
                        hi: Box::new(hi),
                        body: Box::new(body),
                    },
                    start.to(end),
                ))
            }
            Tok::Ident(name) => {
                let start = self.bump().span;
                let mut end = start;
                let index = if self.peek() == &Tok::LBracket {
                    self.bump();
                    let i = self.expr()?;
                    end = self.expect(&Tok::RBracket, "`]`")?;
                    Some(Box::new(i))
                } else {
                    None
                };
                if self.peek() == &Tok::Dot {
                    self.bump();
                    let attr = self.ident("an attribute name")?;
                    let span = start.to(attr.span);
                    Ok(Spanned::new(PExpr::Var { family: name, index, attr: attr.node }, span))
                } else if index.is_some() {
                    Err(Diagnostic::new(
                        start.to(end),
                        "indexed reference needs an attribute: write `family[i].attr`",
                    ))
                } else {
                    Ok(Spanned::new(PExpr::Const(name), start))
                }
            }
            other => self.err(format!("expected an expression, found {}", other.describe())),
        }
    }
}

/// Parse one `.psn` source file into a [`ScenarioDef`].
pub fn parse(source: &str) -> Result<ScenarioDef, Vec<Diagnostic>> {
    let toks = lex(source).map_err(|d| vec![d])?;
    let mut p = Parser { toks, pos: 0 };
    let def = p.scenario().map_err(|d| vec![d])?;
    if p.peek() != &Tok::Eof {
        return Err(vec![Diagnostic::new(
            p.span(),
            format!("expected end of file after the scenario, found {}", p.peek().describe()),
        )]);
    }
    Ok(def)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
        # A minimal scenario.
        scenario "demo" {
            seed 7
            world exhibition { doors 3 capacity 50 duration 300s }
            network {
                delay uniform 50ms..300ms
                loss bernoulli 0.02
                fifo true
            }
            run { shards 4 plan affinity }
            predicate "crowded" relational {
                sum(d in 0..doors)(door[d].x - door[d].y) > 50
            }
            faults {
                at 30s crash 0 recover 20s
                at 60s partition [0, 1] heal 10s park
                at 10s channel from 0 to 2 prob 0.5 reorder 50ms for 100s
                at 5s clock 1 drift_spike 400.0
                chaos { crashes 1 partitions 0 }
            }
        }
    "#;

    #[test]
    fn parses_the_kitchen_sink() {
        let def = parse(SMALL).unwrap();
        assert_eq!(def.name.node, "demo");
        assert_eq!(def.seed.as_ref().unwrap().node, 7);
        assert_eq!(def.world.kind.node, "exhibition");
        assert_eq!(def.world.fields.len(), 3);
        let net = def.network.unwrap();
        assert_eq!(
            net.delay.unwrap().node,
            DelaySpec::Uniform { min: 50_000_000, max: 300_000_000 }
        );
        assert_eq!(net.loss.unwrap().node, LossSpec::Bernoulli(0.02));
        assert_eq!(def.predicates.len(), 1);
        let faults = def.faults.unwrap();
        assert_eq!(faults.entries.len(), 4);
        assert!(faults.chaos.is_some());
    }

    #[test]
    fn missing_world_is_an_error() {
        let errs = parse("scenario \"x\" { seed 1 }").unwrap_err();
        assert!(errs[0].message.contains("no `world` block"), "{}", errs[0].message);
    }

    #[test]
    fn unknown_block_names_the_candidates() {
        let errs = parse("scenario \"x\" { wrld office {} }").unwrap_err();
        assert!(errs[0].message.contains("unknown block `wrld`"));
        assert_eq!(errs[0].span.line, 1);
    }

    #[test]
    fn conjunctive_parts_parse() {
        let src = r#"scenario "c" {
            world office {}
            predicate "hot" conjunctive {
                at 0: room[0].temp > 30.0
                at 0: room[0].motion
            }
        }"#;
        let def = parse(src).unwrap();
        match &def.predicates[0].body {
            PredicateBody::Conjunctive(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected conjunctive, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let src = r#"scenario "p" {
            world office {}
            predicate "q" relational { room[0].temp + 1.0 * 2.0 > 3.0 and room[1].motion }
        }"#;
        let def = parse(src).unwrap();
        let PredicateBody::Relational(e) = &def.predicates[0].body else { panic!() };
        // Top level must be `and`.
        assert!(
            matches!(&e.node, PExpr::Binary { op: BinOp::And, .. }),
            "expected `and` at the top, got {:?}",
            e.node
        );
    }

    #[test]
    fn indexed_ref_without_attr_is_an_error() {
        let src = r#"scenario "p" { world office {} predicate "q" relational { door[0] > 1 } }"#;
        let errs = parse(src).unwrap_err();
        assert!(errs[0].message.contains("needs an attribute"), "{}", errs[0].message);
    }
}
