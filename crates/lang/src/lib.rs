//! `psn-lang` — a declarative scenario language for the pervasive-time
//! workspace.
//!
//! One `.psn` file describes a complete experiment: the world (one of
//! the parameterized generators — office, exhibition, hospital, habitat,
//! structure), the network (delay/loss/FIFO), clock hardware and strobe
//! policy, the run setup (shards, speculation, detection discipline),
//! named predicates (relational or conjunctive), and a fault script
//! (explicit entries and/or a seeded chaos block). The pipeline is
//! classic and dependency-free:
//!
//! ```text
//! source ──lex──▶ tokens ──parse──▶ ScenarioDef ──compile──▶ CompiledScenario
//!                                    (typed AST)              { Scenario,
//!   every stage reports Diagnostics with line:col               ExecutionConfig,
//!   spans, rendered with a source excerpt + caret               Predicates }
//! ```
//!
//! ```
//! let src = r#"scenario "demo" {
//!     seed 7
//!     world exhibition { doors 3 duration 120s capacity 40 }
//!     network { delay uniform 20ms..200ms }
//!     predicate "crowded" relational {
//!         sum(d in 0..doors)(door[d].x - door[d].y) > capacity
//!     }
//! }"#;
//! let compiled = psn_lang::compile(src).expect("valid scenario");
//! assert_eq!(compiled.scenario.num_processes(), 3);
//! ```
//!
//! [`generate::sample_source`] draws valid scenarios from the grammar for
//! seeded soak testing (`chaos --grammar`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod diag;
pub mod generate;
pub mod lexer;
pub mod parser;

pub use compile::{
    check, compile, compile_def, parse_discipline, CompiledPredicate, CompiledScenario,
};
pub use diag::{render, Diagnostic, Span, Spanned};
pub use generate::sample_source;
pub use parser::parse;
