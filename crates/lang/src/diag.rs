//! Span-carrying diagnostics.
//!
//! Every error the lexer, parser, or compiler produces points at a byte
//! range of the source with its 1-based line and column, so
//! [`render`] can show the offending line with a caret underline —
//! the `psn-script --check` lint mode prints exactly this.

use std::fmt;

/// A byte range of the source with its human coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub offset: usize,
    /// Length in bytes (at least 1 for rendering; 0 only at EOF).
    pub len: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Span {
    /// A span covering both `self` and `other` (assumed on the same line
    /// for rendering purposes; multi-line unions keep `self`'s line/col and
    /// clamp the underline at the line end).
    pub fn to(self, other: Span) -> Span {
        let end = (other.offset + other.len).max(self.offset + self.len);
        Span { offset: self.offset, len: end - self.offset, line: self.line, col: self.col }
    }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned<T> {
    /// The value.
    pub node: T,
    /// Where it was written.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pair `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

/// One error, anchored to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Where in the source.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { span, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

/// Render `diags` against `source` in the familiar compiler format: the
/// message, a `--> path:line:col` locus, and the source line with a caret
/// underline. Every diagnostic carries a line:col span and a one-line
/// excerpt.
pub fn render(source: &str, path: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let line_text = source.lines().nth(d.span.line.saturating_sub(1) as usize).unwrap_or("");
        let gutter = format!("{}", d.span.line);
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!("error: {}\n", d.message));
        out.push_str(&format!("{pad}--> {path}:{}:{}\n", d.span.line, d.span.col));
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{gutter} | {line_text}\n"));
        let col = d.span.col.saturating_sub(1) as usize;
        // Clamp the underline to the excerpt so multi-line spans stay tidy.
        let width = d.span.len.max(1).min(line_text.chars().count().saturating_sub(col).max(1));
        out.push_str(&format!("{pad} | {}{}\n", " ".repeat(col), "^".repeat(width)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_line_and_caret() {
        let src = "scenario \"x\" {\n  wrld office {}\n}\n";
        let d =
            Diagnostic::new(Span { offset: 17, len: 4, line: 2, col: 3 }, "unknown block `wrld`");
        let s = render(src, "test.psn", &[d]);
        assert!(s.contains("error: unknown block `wrld`"), "{s}");
        assert!(s.contains("--> test.psn:2:3"), "{s}");
        assert!(s.contains("2 |   wrld office {}"), "{s}");
        assert!(s.contains(" |   ^^^^"), "{s}");
    }

    #[test]
    fn span_union_covers_both() {
        let a = Span { offset: 4, len: 3, line: 1, col: 5 };
        let b = Span { offset: 10, len: 2, line: 1, col: 11 };
        let u = a.to(b);
        assert_eq!(u.offset, 4);
        assert_eq!(u.len, 8);
        assert_eq!((u.line, u.col), (1, 5));
    }

    #[test]
    fn caret_clamps_to_line_end() {
        let src = "ab\n";
        let d = Diagnostic::new(Span { offset: 0, len: 99, line: 1, col: 1 }, "long span");
        let s = render(src, "p", &[d]);
        assert!(s.contains("| ^^\n"), "underline clamped to 2 chars: {s}");
    }
}
