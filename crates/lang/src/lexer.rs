//! Hand-rolled lexer for the `.psn` scenario language.
//!
//! The token set is small: identifiers, string literals, numbers (integer
//! and float), *duration literals* (`300ms`, `1.5s`, `20min` — a number
//! with a time-unit suffix), and a handful of punctuation/operator tokens.
//! Comments run `#` or `//` to end of line. Every token carries a
//! [`Span`], so later phases report errors against the source text.

use crate::diag::{Diagnostic, Span, Spanned};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (`scenario`, `doors`, `and`, `true`…).
    Ident(String),
    /// A double-quoted string literal (no escapes needed by the grammar).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A duration literal, stored in nanoseconds.
    Dur(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input (always the last token).
    Eof,
}

impl Tok {
    /// How the token prints in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Int(v) => format!("`{v}`"),
            Tok::Float(v) => format!("`{v}`"),
            Tok::Dur(ns) => format!("`{}ns`", ns),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Dot => "`.`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Ne => "`!=`".into(),
            Tok::AndAnd => "`&&`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Bang => "`!`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

/// Nanoseconds per unit for duration suffixes.
fn unit_nanos(unit: &str) -> Option<f64> {
    Some(match unit {
        "ns" => 1.0,
        "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        "min" => 60e9,
        "h" => 3600e9,
        _ => return None,
    })
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span { offset: start.0, len: self.pos - start.0, line: start.1, col: start.2 }
    }

    fn mark(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, String> {
        let start = self.pos;
        while self.peek().is_ascii_digit() || self.peek() == b'_' {
            self.bump();
        }
        let mut is_float = false;
        // A `.` starts a fraction only if a digit follows (so `0..4` lexes
        // as `0`, `..`, `4`).
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.bump();
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .chars()
            .filter(|&c| c != '_')
            .collect();
        // A trailing alphabetic run is a time-unit suffix.
        let unit_start = self.pos;
        while self.peek().is_ascii_alphabetic() {
            self.bump();
        }
        if unit_start != self.pos {
            let unit = std::str::from_utf8(&self.src[unit_start..self.pos]).unwrap();
            let Some(scale) = unit_nanos(unit) else {
                return Err(format!("unknown time unit `{unit}` (known: ns, us, ms, s, min, h)"));
            };
            let v: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
            if v < 0.0 {
                return Err("durations cannot be negative".into());
            }
            return Ok(Tok::Dur((v * scale).round() as u64));
        }
        if is_float {
            Ok(Tok::Float(text.parse().map_err(|_| format!("bad float `{text}`"))?))
        } else {
            Ok(Tok::Int(text.parse().map_err(|_| format!("bad integer `{text}`"))?))
        }
    }
}

/// Tokenize `source`. Returns the token list (ending in [`Tok::Eof`]) or
/// the first lexical error.
pub fn lex(source: &str) -> Result<Vec<Spanned<Tok>>, Diagnostic> {
    let mut lx = Lexer { src: source.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia();
        let start = lx.mark();
        let c = lx.peek();
        let tok = match c {
            0 => {
                out.push(Spanned::new(Tok::Eof, lx.span_from(start)));
                return Ok(out);
            }
            b'{' => {
                lx.bump();
                Tok::LBrace
            }
            b'}' => {
                lx.bump();
                Tok::RBrace
            }
            b'[' => {
                lx.bump();
                Tok::LBracket
            }
            b']' => {
                lx.bump();
                Tok::RBracket
            }
            b'(' => {
                lx.bump();
                Tok::LParen
            }
            b')' => {
                lx.bump();
                Tok::RParen
            }
            b',' => {
                lx.bump();
                Tok::Comma
            }
            b':' => {
                lx.bump();
                Tok::Colon
            }
            b'+' => {
                lx.bump();
                Tok::Plus
            }
            b'-' => {
                lx.bump();
                Tok::Minus
            }
            b'*' => {
                lx.bump();
                Tok::Star
            }
            b'.' => {
                lx.bump();
                if lx.peek() == b'.' {
                    lx.bump();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            b'>' => {
                lx.bump();
                if lx.peek() == b'=' {
                    lx.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'<' => {
                lx.bump();
                if lx.peek() == b'=' {
                    lx.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'=' => {
                lx.bump();
                if lx.peek() == b'=' {
                    lx.bump();
                    Tok::EqEq
                } else {
                    return Err(Diagnostic::new(
                        lx.span_from(start),
                        "single `=` is not an operator (use `==` to compare; \
                         block fields need no `=`)",
                    ));
                }
            }
            b'!' => {
                lx.bump();
                if lx.peek() == b'=' {
                    lx.bump();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            b'&' => {
                lx.bump();
                if lx.peek() == b'&' {
                    lx.bump();
                    Tok::AndAnd
                } else {
                    return Err(Diagnostic::new(lx.span_from(start), "expected `&&`"));
                }
            }
            b'|' => {
                lx.bump();
                if lx.peek() == b'|' {
                    lx.bump();
                    Tok::OrOr
                } else {
                    return Err(Diagnostic::new(lx.span_from(start), "expected `||`"));
                }
            }
            b'"' => {
                lx.bump();
                let text_start = lx.pos;
                while lx.peek() != b'"' && lx.peek() != 0 && lx.peek() != b'\n' {
                    lx.bump();
                }
                if lx.peek() != b'"' {
                    return Err(Diagnostic::new(
                        lx.span_from(start),
                        "unterminated string literal",
                    ));
                }
                let text = std::str::from_utf8(&lx.src[text_start..lx.pos]).unwrap().to_string();
                lx.bump();
                Tok::Str(text)
            }
            b'0'..=b'9' => match lx.lex_number() {
                Ok(t) => t,
                Err(msg) => return Err(Diagnostic::new(lx.span_from(start), msg)),
            },
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while lx.peek().is_ascii_alphanumeric() || lx.peek() == b'_' {
                    lx.bump();
                }
                Tok::Ident(std::str::from_utf8(&lx.src[start.0..lx.pos]).unwrap().to_string())
            }
            other => {
                lx.bump();
                return Err(Diagnostic::new(
                    lx.span_from(start),
                    format!("unexpected character `{}`", other as char),
                ));
            }
        };
        out.push(Spanned::new(tok, lx.span_from(start)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.node).collect()
    }

    #[test]
    fn durations_and_ranges() {
        assert_eq!(
            toks("50ms..300ms"),
            vec![Tok::Dur(50_000_000), Tok::DotDot, Tok::Dur(300_000_000), Tok::Eof]
        );
        assert_eq!(toks("1.5s")[0], Tok::Dur(1_500_000_000));
        assert_eq!(toks("2min")[0], Tok::Dur(120_000_000_000));
        assert_eq!(toks("0..4"), vec![Tok::Int(0), Tok::DotDot, Tok::Int(4), Tok::Eof]);
    }

    #[test]
    fn numbers_idents_strings() {
        assert_eq!(
            toks("doors 4 rate 3.5 \"hall\""),
            vec![
                Tok::Ident("doors".into()),
                Tok::Int(4),
                Tok::Ident("rate".into()),
                Tok::Float(3.5),
                Tok::Str("hall".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a >= 3 && !b || c != d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Int(3),
                Tok::AndAnd,
                Tok::Bang,
                Tok::Ident("b".into()),
                Tok::OrOr,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a # rest of line\n// whole line\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!((ts[0].span.line, ts[0].span.col, ts[0].span.len), (1, 1, 2));
        assert_eq!((ts[1].span.line, ts[1].span.col, ts[1].span.len), (2, 3, 2));
    }

    #[test]
    fn bad_unit_is_an_error() {
        let err = lex("10parsecs").unwrap_err();
        assert!(err.message.contains("unknown time unit"), "{}", err.message);
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"oops").unwrap_err().message.contains("unterminated"));
    }
}
