//! Property-based tests over the scenario grammar: every program the
//! sampler can draw must compile, run on both the sequential and the
//! sharded engine without errors, and replay bit-identically.

use proptest::prelude::*;

use psn_core::{run_execution, ExecutionConfig, ShardPlanKind};
use psn_lang::{compile, render, sample_source, CompiledScenario};

fn compiled(seed: u64) -> CompiledScenario {
    let source = sample_source(seed);
    match compile(&source) {
        Ok(c) => c,
        Err(diags) => panic!(
            "sampled scenario (seed {seed}) failed to compile:\n{}",
            render(&source, "<sampled>", &diags)
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sampled program compiles and runs cleanly on the sequential
    /// engine and at 4 shards (the sampler guarantees the nonzero delay
    /// floor sharding needs).
    #[test]
    fn sampled_scenarios_compile_and_run(seed in 0u64..5_000) {
        // The sampler itself is a pure function of the seed.
        prop_assert_eq!(sample_source(seed), sample_source(seed));

        let c = compiled(seed);
        prop_assert!(c.scenario.num_processes() > 0);
        prop_assert!(!c.predicates.is_empty());

        let seq = run_execution(&c.scenario, &c.config);
        let sharded_cfg = ExecutionConfig {
            shards: 4,
            shard_plan: Some(ShardPlanKind::Contiguous),
            ..c.config.clone()
        };
        let sharded = run_execution(&c.scenario, &sharded_cfg);

        // The sharded run is not merely error-free: it lands on the same
        // trace as the sequential one.
        prop_assert_eq!(seq.sim.records(), sharded.sim.records());
        prop_assert_eq!(&seq.net, &sharded.net);
        prop_assert_eq!(seq.ended_at, sharded.ended_at);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Compile → run → replay is deterministic per seed: two independent
    /// compilations of the same sampled source produce configurations
    /// whose runs are bit-identical.
    #[test]
    fn compile_run_replay_deterministic(seed in 0u64..5_000) {
        let a = compiled(seed);
        let b = compiled(seed);
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(a.seed, b.seed);

        let run_a = run_execution(&a.scenario, &a.config);
        let run_b = run_execution(&b.scenario, &b.config);
        prop_assert_eq!(run_a.sim.records(), run_b.sim.records());
        prop_assert_eq!(&run_a.net, &run_b.net);
        prop_assert_eq!(&run_a.faults, &run_b.faults);
        prop_assert_eq!(run_a.ended_at, run_b.ended_at);
    }
}
