//! Streaming ≡ offline on the four committed golden worlds.
//!
//! For every predicate of every `scenarios/*.psn` program, the streaming
//! detector — run both through the sealed-trace adapter and incrementally
//! with a finite `2Δ` hold-back — must produce a [`ModalStatus`]
//! bit-identical to the offline [`modal_status`] sweep. The verdicts are
//! additionally pinned with an FNV-1a hash so any drift in either
//! implementation (they would have to drift *together* to escape the
//! equivalence assertions) still shows up as a failing constant.

use std::fs;
use std::path::PathBuf;

use psn_core::run_execution;
use psn_lang::{compile, render};
use psn_predicates::{modal_status, modal_status_streaming, ModalStatus, StreamingModal};
use psn_sim::time::SimDuration;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a over the ordered per-predicate verdicts of one world.
fn verdict_hash(verdicts: &[(String, ModalStatus)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (name, m) in verdicts {
        fnv1a(&mut h, name.as_bytes());
        fnv1a(&mut h, &(m.possibly as u64).to_le_bytes());
        fnv1a(&mut h, &(m.definitely as u64).to_le_bytes());
        fnv1a(&mut h, &[u8::from(m.holding_now)]);
    }
    h
}

fn golden_stream(name: &str, pinned: u64) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(format!("{name}.psn"));
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let compiled = match compile(&src) {
        Ok(c) => c,
        Err(diags) => panic!("{name}.psn failed to compile:\n{}", render(&src, name, &diags)),
    };
    let trace = run_execution(&compiled.scenario, &compiled.config);
    let init = compiled.scenario.timeline.initial_state();
    let hold_back = compiled
        .config
        .delay
        .delta_bound()
        .map(|d| SimDuration::from_nanos(2 * d.as_nanos() + 1))
        .unwrap_or(SimDuration::MAX);

    let mut verdicts = Vec::new();
    for p in &compiled.predicates {
        let offline = modal_status(&trace, &p.predicate, &init);

        let sealed = modal_status_streaming(&trace, &p.predicate, &init);
        assert_eq!(
            sealed, offline,
            "{name}.psn predicate \"{}\": sealed-trace streaming verdict differs from offline",
            p.name
        );

        let mut live = StreamingModal::new(&p.predicate, &init, trace.n, hold_back);
        for r in &trace.log.reports {
            live.offer(r);
        }
        assert_eq!(live.late_reports(), 0, "{name}.psn: 2Δ hold-back must suffice");
        assert_eq!(
            live.seal(),
            offline,
            "{name}.psn predicate \"{}\": incremental streaming verdict differs from offline",
            p.name
        );

        verdicts.push((p.name.clone(), offline));
    }
    let got = verdict_hash(&verdicts);
    assert_eq!(
        got, pinned,
        "{name}.psn: golden modal verdict hash moved (got {got:#018x}) — if the change is \
         intentional, update the pinned constant"
    );
}

#[test]
fn office_streaming_matches_offline() {
    golden_stream("office", OFFICE_MODAL_HASH);
}

#[test]
fn exhibition_streaming_matches_offline() {
    golden_stream("exhibition", EXHIBITION_MODAL_HASH);
}

#[test]
fn hospital_streaming_matches_offline() {
    golden_stream("hospital", HOSPITAL_MODAL_HASH);
}

#[test]
fn habitat_streaming_matches_offline() {
    golden_stream("habitat", HABITAT_MODAL_HASH);
}

// Golden modal-verdict hashes for the four committed scenarios at seed 42.
// Recorded from the offline sweep; the streaming detector must land on the
// same constants via the equivalence assertions above.
const OFFICE_MODAL_HASH: u64 = 0x48e43e67f29d1496;
const EXHIBITION_MODAL_HASH: u64 = 0xd0bc903ed9669a3e;
const HOSPITAL_MODAL_HASH: u64 = 0xe3a7157117bf3d93;
const HABITAT_MODAL_HASH: u64 = 0x420913d4cb4f6fc9;
