//! Round-trip proof for the committed `.psn` scenarios: each of the four
//! built-in worlds, written as a `.psn` program under `scenarios/`, must
//! compile and run **bit-identically** to its hand-coded generator with
//! the same seed — checked structurally (same trace, net stats, end
//! time) and pinned with an FNV-1a golden hash so any drift in the
//! lexer, parser, compiler, generators, or engine shows up as a failing
//! constant.

use std::fs;
use std::path::PathBuf;

use psn_core::{run_execution, ExecutionConfig, ExecutionTrace};
use psn_lang::{compile, render};
use psn_world::scenarios::{exhibition, habitat, hospital, office, Scenario};

/// FNV-1a over a stable encoding (same algorithm as tests/determinism.rs,
/// so constants are comparable across the repo).
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a over the full structured trace: every record including stamped
/// process events, message ids, and clock stamps.
fn trace_full_hash(trace: &psn_sim::trace::Trace) -> u64 {
    use psn_sim::trace::{ClockStamp, TraceKind};
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.events() {
        fnv1a(&mut h, &e.seq.to_le_bytes());
        fnv1a(&mut h, &e.at.as_nanos().to_le_bytes());
        let (tag, a, b, c): (u8, u64, u64, u64) = match &e.kind {
            TraceKind::Sent { from, to, bytes, msg } => {
                fnv1a(&mut h, &msg.0.to_le_bytes());
                (0, *from as u64, *to as u64, *bytes as u64)
            }
            TraceKind::Delivered { from, to, msg } => {
                fnv1a(&mut h, &msg.0.to_le_bytes());
                (1, *from as u64, *to as u64, 0)
            }
            TraceKind::Lost { from, to, msg } => {
                fnv1a(&mut h, &msg.0.to_le_bytes());
                (2, *from as u64, *to as u64, 0)
            }
            TraceKind::TimerFired { actor, tag } => (3, *actor as u64, *tag, 0),
            TraceKind::Note { actor, label } => {
                fnv1a(&mut h, label.as_bytes());
                (4, *actor as u64, label.len() as u64, 0)
            }
            TraceKind::Process { actor, kind, stamp, detail } => {
                match stamp {
                    ClockStamp::None => fnv1a(&mut h, &[0]),
                    ClockStamp::Scalar(v) => {
                        fnv1a(&mut h, &[1]);
                        fnv1a(&mut h, &v.to_le_bytes());
                    }
                    ClockStamp::Vector(v) => {
                        fnv1a(&mut h, &[2]);
                        for x in v.as_slice() {
                            fnv1a(&mut h, &x.to_le_bytes());
                        }
                    }
                }
                fnv1a(&mut h, kind.label().as_bytes());
                (5, *actor as u64, kind.label().len() as u64, *detail)
            }
            TraceKind::Fault { actor, kind, detail } => {
                fnv1a(&mut h, kind.label().as_bytes());
                (6, *actor as u64, kind.label().len() as u64, *detail)
            }
        };
        fnv1a(&mut h, &[tag]);
        fnv1a(&mut h, &a.to_le_bytes());
        fnv1a(&mut h, &b.to_le_bytes());
        fnv1a(&mut h, &c.to_le_bytes());
    }
    h
}

fn scenario_source(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(format!("{name}.psn"));
    (
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}")),
        format!("{name}.psn"),
    )
}

/// The configuration the hand-coded side uses: exactly what the compiler
/// produces for a `.psn` file with no network/clocks/strobes/run blocks.
fn hand_config() -> ExecutionConfig {
    ExecutionConfig { seed: 42, record_sim_trace: true, ..Default::default() }
}

fn golden(name: &str, hand: Scenario, pinned: u64) {
    let (src, file) = scenario_source(name);
    let compiled = match compile(&src) {
        Ok(c) => c,
        Err(diags) => panic!("{file} failed to compile:\n{}", render(&src, &file, &diags)),
    };
    assert_eq!(compiled.seed, 42, "{file}: golden scenarios pin seed 42");
    assert_eq!(
        compiled.scenario.num_processes(),
        hand.num_processes(),
        "{file}: process count differs from the hand-coded world"
    );
    assert_eq!(
        compiled.scenario.timeline.len(),
        hand.timeline.len(),
        "{file}: world-event count differs from the hand-coded world"
    );

    let dsl: ExecutionTrace = run_execution(&compiled.scenario, &compiled.config);
    let coded: ExecutionTrace = run_execution(&hand, &hand_config());

    assert_eq!(dsl.net, coded.net, "{file}: network stats differ");
    assert_eq!(dsl.ended_at, coded.ended_at, "{file}: end times differ");
    let dsl_hash = trace_full_hash(&dsl.sim);
    let coded_hash = trace_full_hash(&coded.sim);
    assert_eq!(
        dsl_hash, coded_hash,
        "{file}: compiled run is not bit-identical to the hand-coded run"
    );
    assert_eq!(
        dsl_hash, pinned,
        "{file}: golden trace hash moved (got {dsl_hash:#018x}) — if the change is \
         intentional, update the pinned constant"
    );
}

#[test]
fn office_psn_matches_hand_coded() {
    golden("office", office::generate(&office::OfficeParams::default(), 42), OFFICE_HASH);
}

#[test]
fn exhibition_psn_matches_hand_coded() {
    golden(
        "exhibition",
        exhibition::generate(&exhibition::ExhibitionParams::default(), 42),
        EXHIBITION_HASH,
    );
}

#[test]
fn hospital_psn_matches_hand_coded() {
    golden("hospital", hospital::generate(&hospital::HospitalParams::default(), 42), HOSPITAL_HASH);
}

#[test]
fn habitat_psn_matches_hand_coded() {
    golden("habitat", habitat::generate(&habitat::HabitatParams::default(), 42), HABITAT_HASH);
}

// Golden full-trace hashes for the four committed scenarios at seed 42.
// Recorded from the hand-coded generators; the `.psn` compilations must
// land on the same constants.
const OFFICE_HASH: u64 = 0xcce565828b938901;
const EXHIBITION_HASH: u64 = 0x8d95c87a2fea59f6;
const HOSPITAL_HASH: u64 = 0xfe13869ed0b35cea;
const HABITAT_HASH: u64 = 0x77f16e0b82b773c2;
