//! The secure-banking scenario (paper §3.1.1.a.ii and §6, citing [22]):
//! "a biometric key is presented remotely after a password is entered
//! across the network" — a *relative timing relation* between two
//! distributed events. The paper's §6 suggests exactly this application as
//! the natural fit for partial-order time as a specification tool.
//!
//! Two sensors: a password terminal and a biometric reader at different
//! locations. Authentication requires the biometric to FOLLOW the password
//! WITHIN a session window. We run legitimate sessions, replay attacks
//! (biometric with no password), and stale presentations (too late), then
//! detect the pattern with the relative-timing machinery under both a
//! synchronized-clock discipline ([22]'s assumption) and vector strobes.
//!
//! ```sh
//! cargo run --release --example secure_banking
//! ```

use pervasive_time::predicates::{detect_timing, TimingSpec};
use pervasive_time::prelude::*;
use pervasive_time::world::{ObjectSpec, Timeline, WorldEvent};

/// Build the ground truth: sessions of (password time, optional biometric
/// time) pulses, each pulse 2 s long.
fn banking_timeline(sessions: &[(u64, Option<u64>)]) -> Scenario {
    let objects = vec![
        ObjectSpec {
            id: 0,
            name: "password-terminal".into(),
            attrs: vec![("ok".into(), AttrValue::Bool(false))],
        },
        ObjectSpec {
            id: 1,
            name: "biometric-reader".into(),
            attrs: vec![("ok".into(), AttrValue::Bool(false))],
        },
    ];
    let mut events = Vec::new();
    let mut push = |at_s: u64, obj: usize, v: bool| {
        events.push(WorldEvent {
            id: events.len(),
            at: SimTime::from_secs(at_s),
            key: AttrKey::new(obj, 0),
            value: AttrValue::Bool(v),
            caused_by: vec![],
        });
    };
    for &(pw, bio) in sessions {
        if pw > 0 {
            push(pw, 0, true);
            push(pw + 2, 0, false);
        }
        if let Some(b) = bio {
            push(b, 1, true);
            push(b + 2, 1, false);
        }
    }
    Scenario {
        name: "secure-banking".into(),
        timeline: Timeline::new(objects, events),
        sensing: pervasive_time::world::SensorAssignment {
            watches: vec![vec![AttrKey::new(0, 0)], vec![AttrKey::new(1, 0)]],
        },
    }
}

fn main() {
    // Sessions: (password at t, biometric at t') — all in seconds.
    //   #1 legit: biometric 10 s after the password (inside the 30 s window)
    //   #2 attack: biometric with NO password at all
    //   #3 stale: biometric 120 s after the password (window expired)
    //   #4 legit: another clean login
    let scenario = banking_timeline(&[
        (100, Some(112)),
        (0, Some(300)), // pw=0 means "no password entered"
        (500, Some(622)),
        (800, Some(815)),
    ]);
    println!("{}: {} world events", scenario.name, scenario.timeline.len());

    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(400)),
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let init = scenario.timeline.initial_state();
    let horizon = SimTime::from_secs(1000);

    let password = Predicate::Relational(Expr::var(AttrKey::new(0, 0)));
    let biometric = Predicate::Relational(Expr::var(AttrKey::new(1, 0)));
    // The [22] rule: biometric must follow the password within 30 s.
    let spec = TimingSpec::FollowedWithin { max_gap: SimDuration::from_secs(30) };

    for disc in [Discipline::SyncedPhysical, Discipline::VectorStrobe] {
        let matches = detect_timing(&trace, &password, &biometric, &spec, &init, disc, horizon);
        println!("\nauthentications accepted under {:?}:", disc.label());
        for m in &matches {
            println!(
                "  password@{} → biometric@{} (gap {}){}",
                m.x_start,
                m.y_start,
                m.y_start.saturating_since(m.x_end),
                if m.borderline { "  [borderline: race]" } else { "" }
            );
        }
        assert_eq!(matches.len(), 2, "exactly the two legitimate sessions");
    }

    // The biometric occurrences NOT matched are the rejected attempts.
    let bio_all = pervasive_time::predicates::detect_occurrences(
        &trace,
        &biometric,
        &init,
        Discipline::VectorStrobe,
    );
    let accepted = detect_timing(
        &trace,
        &password,
        &biometric,
        &spec,
        &init,
        Discipline::VectorStrobe,
        horizon,
    );
    let rejected: Vec<_> =
        bio_all.iter().filter(|b| !accepted.iter().any(|m| m.y_start == b.start)).collect();
    println!("\nrejected biometric presentations:");
    for b in &rejected {
        println!("  biometric@{} — no password within the session window", b.start);
    }
    assert_eq!(rejected.len(), 2, "the replay attack and the stale presentation");

    println!(
        "\nBoth clock disciplines accept exactly the two legitimate logins:\n\
         with second-scale session windows, even Δ = 400 ms strobe time is\n\
         a safe substitute for synchronized clocks — the §6 observation that\n\
         such applications are where partial-order time fits naturally."
    );
}
