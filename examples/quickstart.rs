//! Quickstart: build a small sensor network, run it with strobe clocks,
//! detect a global predicate, and compare clock disciplines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pervasive_time::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A world to observe: the paper's §5 exhibition hall, scaled down.
    //    Four doors, people arriving at 2/s, staying ~90s. The "covert
    //    channel" is each person: their exit is caused by their entry, but
    //    no sensor can see that causality — only per-door counters.
    // ------------------------------------------------------------------
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(90),
        duration: SimTime::from_secs(900),
        capacity: 150,
    };
    let scenario = exhibition::generate(&params, 42);
    println!("world: {}", scenario.name);
    println!(
        "  {} ground-truth events over {}",
        scenario.timeline.len(),
        scenario.timeline.duration()
    );

    // ------------------------------------------------------------------
    // 2. The network plane: 4 sensor processes + the root P0, asynchronous
    //    Δ-bounded links (Δ = 250 ms), strobe broadcast on every sense
    //    event (rules SSC1/SVC1).
    // ------------------------------------------------------------------
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(250)),
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    println!("\nnetwork plane:");
    println!("  sense events   : {}", trace.log.sense_events().len());
    println!("  reports at P0  : {}", trace.log.reports.len());
    println!("  strobe bcasts  : {}", trace.net.broadcasts);
    println!("  messages sent  : {}", trace.net.messages_sent);

    // ------------------------------------------------------------------
    // 3. Detect every occurrence of the occupancy predicate
    //    φ = Σ(xᵢ − yᵢ) > 150 under the Instantaneously modality, with
    //    each clock discipline on the *same* execution.
    // ------------------------------------------------------------------
    let predicate = Predicate::occupancy_over(params.doors, params.capacity);
    let truth = truth_intervals(&scenario.timeline, |s| predicate.eval_state(s));
    println!("\nground truth: {} occurrence(s) of occupancy > {}", truth.len(), params.capacity);

    let horizon = params.duration;
    let tolerance = SimDuration::from_millis(500); // ≈ 2Δ race window
    let initial = scenario.timeline.initial_state();

    println!(
        "\n{:<16} {:>5} {:>4} {:>4} {:>6} {:>10} {:>8}",
        "discipline", "TP", "FP", "FN", "bline", "precision", "recall"
    );
    for d in Discipline::ALL {
        let detections = detect_occurrences(&trace, &predicate, &initial, d);
        let r = score(&detections, &truth, horizon, tolerance, BorderlinePolicy::AsPositive);
        println!(
            "{:<16} {:>5} {:>4} {:>4} {:>6} {:>10.3} {:>8.3}",
            d.label(),
            r.true_positives,
            r.false_positives,
            r.false_negatives,
            r.borderline,
            r.precision(),
            r.recall()
        );
    }

    println!(
        "\nThe oracle row is the unattainable ideal; strobe rows show the\n\
         paper's claim: logical strobe clocks simulate the single time axis\n\
         well when the event rate is low relative to Δ, with races confined\n\
         to the borderline bin (treat as positive to err on the safe side)."
    );
}
