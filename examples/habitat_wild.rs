//! Habitat monitoring "in the wild" — the paper's strongest case for
//! strobe clocks (§3.3, §6): events are rare relative to Δ, energy is
//! scarce, and no lower-layer clock-sync service is affordable. Shows
//! (1) near-perfect strobe detection of a congregation predicate at Δ = 1 s,
//! (2) the energy budget vs a periodic sync service, and
//! (3) on-demand synchronization (§4.2, Baumgartner et al.) for one
//!     simultaneous sampling task without any standing time base.
//!
//! ```sh
//! cargo run --release --example habitat_wild
//! ```

use pervasive_time::prelude::*;
use pervasive_time::sync::{run_on_demand, run_rbs, CostModel, OnDemandParams, RbsParams};
use pervasive_time::world::scenarios::habitat::ATTR_PRESENT;

fn main() {
    // A day in a valley: 6 stations along a corridor, 3 tagged animals,
    // 20-minute mean dwell — a few events per hour across the whole site.
    let params = HabitatParams::default();
    let scenario = habitat::generate(&params, 7);
    println!(
        "{} — {} events over 24h ({:.2} events/hour)",
        scenario.name,
        scenario.timeline.len(),
        scenario.event_rate_hz() * 3600.0
    );

    // Detection with vector strobes at a (huge, for sensornets) Δ = 1 s.
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_secs(1)),
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let pred = Predicate::Relational(Expr::var(AttrKey::new(2, ATTR_PRESENT)).ge(Expr::int(2)));
    let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
    let det = detect_occurrences(
        &trace,
        &pred,
        &scenario.timeline.initial_state(),
        Discipline::VectorStrobe,
    );
    let r = score(
        &det,
        &truth,
        SimTime::from_secs(86_400),
        SimDuration::from_secs(3),
        BorderlinePolicy::AsPositive,
    );
    println!(
        "\npredicate '≥2 animals at station 2': truth {} → TP {} FP {} FN {} (borderline {})",
        truth.len(),
        r.true_positives,
        r.false_positives,
        r.false_negatives,
        r.borderline
    );
    println!(
        "event rate ({:.4}/s) ≪ 1/Δ (1/s): the paper's regime — strobes are near-exact.",
        scenario.event_rate_hz()
    );

    // Energy: strobes for the whole day vs an RBS service resyncing every
    // 30 s for the whole day.
    let cost = CostModel::default();
    let strobe_energy = cost.net_energy(&trace.net);
    let rbs =
        run_rbs(&RbsParams { receivers: params.stations, beacons: 5, ..Default::default() }, 3);
    let rounds = (86_400.0_f64 / 30.0).ceil();
    let sync_energy = cost.sync_energy(&rbs) * rounds;
    println!("\nenergy over 24h (model units):");
    println!("  event-driven strobes : {strobe_energy:>12.0}");
    println!("  RBS service @30s     : {sync_energy:>12.0}   (ε = {})", rbs.achieved_skew);
    println!(
        "  ratio                : {:>11.1}x  — 'such service is not for free' (§3.3)",
        sync_energy / strobe_energy.max(1.0)
    );

    // On-demand sync: fire all stations' microphones simultaneously once,
    // to localize an audio source — no standing time base needed.
    println!("\non-demand simultaneous sampling (Baumgartner et al., §4.2):");
    let od = run_on_demand(&OnDemandParams { nodes: params.stations, ..Default::default() }, 11);
    let raw = run_on_demand(
        &OnDemandParams { nodes: params.stations, synchronize: false, ..Default::default() },
        11,
    );
    println!("  firing spread with one-shot sync : {:>12}  ({} msgs)", od.spread, od.messages);
    println!("  firing spread on raw clocks      : {:>12}  ({} msgs)", raw.spread, raw.messages);
    println!(
        "\nThe network stays unsynchronized all day and collaborates only\n\
         for the event itself — the §4.2 pattern, with {}x tighter firing.",
        (raw.spread.as_nanos() as f64 / od.spread.as_nanos().max(1) as f64).round()
    );
}
