//! The §5 hospital scenario: RFID badges on visitors, ward sensors, two
//! predicates — waiting-room overcrowding (relational) and
//! infectious-ward intrusion (boolean) — detected with strobe clocks, plus
//! the energy comparison against running a clock-sync service.
//!
//! ```sh
//! cargo run --release --example hospital
//! ```

use pervasive_time::prelude::*;
use pervasive_time::sync::{run_rbs, CostModel, RbsParams};
use pervasive_time::world::scenarios::hospital::{ATTR_COUNT, ATTR_INTRUSION};

fn main() {
    let params = HospitalParams {
        wards: 5,
        infectious_ward: 4,
        visitors: 8,
        mean_dwell: SimDuration::from_secs(240),
        duration: SimTime::from_secs(7200),
    };
    let scenario = hospital::generate(&params, 2024);
    println!(
        "{} — {} world events over {}",
        scenario.name,
        scenario.timeline.len(),
        scenario.timeline.duration()
    );

    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(400)),
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let initial = scenario.timeline.initial_state();

    // Predicate 1 (relational): waiting room over 5 visitors.
    let crowded = Predicate::Relational(Expr::var(AttrKey::new(0, ATTR_COUNT)).gt(Expr::int(5)));
    // Predicate 2 (boolean): someone inside the infectious ward.
    let breach =
        Predicate::Relational(Expr::var(AttrKey::new(params.infectious_ward, ATTR_INTRUSION)));

    for (name, pred) in [("waiting-room > 5", &crowded), ("infectious-ward breach", &breach)] {
        let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
        let det = detect_occurrences(&trace, pred, &initial, Discipline::VectorStrobe);
        let r = score(
            &det,
            &truth,
            params.duration,
            SimDuration::from_secs(2),
            BorderlinePolicy::AsPositive,
        );
        println!(
            "\n{name}: truth {} occurrences → detected TP {} FP {} FN {} (borderline {})",
            truth.len(),
            r.true_positives,
            r.false_positives,
            r.false_negatives,
            r.borderline
        );
        if let Some(first) = truth.first() {
            println!("  first occurrence at {}", first.start);
        }
    }

    // ------------------------------------------------------------------
    // "This service is not for free": the energy cost of the strobe
    // protocol for this whole run versus a physically-synchronized-clock
    // service resynchronizing every 30 s (RBS, 5 beacons per round).
    // ------------------------------------------------------------------
    let cost = CostModel::default();
    let strobe_energy = cost.net_energy(&trace.net);

    let rounds = (params.duration.as_secs_f64() / 30.0).ceil() as u64;
    let rbs = run_rbs(&RbsParams { receivers: params.wards, beacons: 5, ..Default::default() }, 9);
    let sync_energy = cost.sync_energy(&rbs) * rounds as f64;
    println!("\nenergy (model units) over {}:", params.duration);
    println!("  strobe clocks (per-event broadcast) : {strobe_energy:>10.0}");
    println!("  RBS sync service (every 30s, ε={})  : {sync_energy:>10.0}", rbs.achieved_skew);
    println!(
        "\nWith rare events (here {:.3} ev/s), strobes transmit only when\n\
         something happens, while a sync service pays continuously — the\n\
         paper's case for strobe clocks in low-rate settings.",
        scenario.event_rate_hz()
    );
}
