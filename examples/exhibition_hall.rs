//! The paper's §5 scenario, end to end **with actuation**: a convention
//! hall with RFID entry/exit door sensors, the occupancy predicate
//! Σ(xᵢ − yᵢ) > 200 detected online at the root with vector strobes, and
//! door-lock commands closing the sense → send → receive → actuate loop.
//!
//! ```sh
//! cargo run --release --example exhibition_hall
//! ```

use pervasive_time::core::{ExecutionLog, Report};
use pervasive_time::prelude::*;
use psn_clocks::ProcessId;

/// The root's online rule: maintain the running occupancy from the report
/// stream; when it first exceeds the capacity, command every door sensor to
/// lock; when it drops back, unlock. (Lock state attribute index 2 is
/// conventional — the world generator does not model it, so the actuation
/// is observable in the log rather than feeding back into arrivals; see the
//  DESIGN.md note on open-loop scenarios.)
struct CapacityRule {
    doors: usize,
    capacity: i64,
    x: Vec<i64>,
    y: Vec<i64>,
    locked: bool,
}

impl CapacityRule {
    fn occupancy(&self) -> i64 {
        (0..self.doors).map(|d| self.x[d] - self.y[d]).sum()
    }
}

impl ActuationRule for CapacityRule {
    fn on_report(
        &mut self,
        report: &Report,
        _history: &ExecutionLog,
    ) -> Vec<(ProcessId, AttrKey, AttrValue)> {
        match report.key.attr {
            0 => self.x[report.key.object] = report.value.as_int(),
            1 => self.y[report.key.object] = report.value.as_int(),
            _ => {}
        }
        let over = self.occupancy() > self.capacity;
        if over != self.locked {
            self.locked = over;
            (0..self.doors).map(|d| (d, AttrKey::new(d, 2), AttrValue::Bool(over))).collect()
        } else {
            Vec::new()
        }
    }

    // Opting into the optimistic sharded mode: the running occupancy is the
    // rule's whole state, so a clone is a valid rollback checkpoint.
    fn fork(&self) -> Option<Box<dyn ActuationRule>> {
        Some(Box::new(CapacityRule {
            doors: self.doors,
            capacity: self.capacity,
            x: self.x.clone(),
            y: self.y.clone(),
            locked: self.locked,
        }))
    }
}

fn main() {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 4.0,
        mean_stay: SimDuration::from_secs(70),
        duration: SimTime::from_secs(1200),
        capacity: 200,
    };
    let scenario = exhibition::generate(&params, 7);
    println!("{}", scenario.name);

    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(300)),
        ..Default::default()
    };
    let rule = CapacityRule {
        doors: params.doors,
        capacity: params.capacity,
        x: vec![0; params.doors],
        y: vec![0; params.doors],
        locked: false,
    };
    let trace = pervasive_time::core::run_execution_with_rule(&scenario, &cfg, Box::new(rule));

    // Ground truth.
    let predicate = Predicate::occupancy_over(params.doors, params.capacity);
    let truth = truth_intervals(&scenario.timeline, |s| predicate.eval_state(s));
    println!("\nground truth: hall over capacity {} time(s):", truth.len());
    for (i, t) in truth.iter().enumerate() {
        println!(
            "  #{:<2} {} .. {}",
            i + 1,
            t.start,
            t.end.map(|e| e.to_string()).unwrap_or_else(|| "(end of run)".into())
        );
    }

    // The actuation loop: every lock/unlock the root commanded.
    println!("\nactuation loop (root commands, {} total):", trace.log.actuations.len());
    let mut shown = 0;
    let mut last: Option<bool> = None;
    for a in &trace.log.actuations {
        let lock = a.command.as_bool();
        if last != Some(lock) {
            println!("  t={:<12} {} all doors", a.at, if lock { "LOCK" } else { "unlock" });
            last = Some(lock);
            shown += 1;
            if shown >= 20 {
                println!("  …");
                break;
            }
        }
    }

    // Each actuated sensor recorded an 'a' event — the causal chain of
    // §4.1: e1@world → sense@door → report → detect@P0 → actuate@door.
    let actuate_events = trace.log.events.iter().filter(|e| e.kind.tag() == 'a').count();
    println!("\n'a' (actuate) events recorded at sensors: {actuate_events}");

    // Detection quality with the vector strobe clock + borderline bin.
    let detections = detect_occurrences(
        &trace,
        &predicate,
        &scenario.timeline.initial_state(),
        Discipline::VectorStrobe,
    );
    let r = score(
        &detections,
        &truth,
        params.duration,
        SimDuration::from_millis(600),
        BorderlinePolicy::AsPositive,
    );
    println!(
        "\nvector-strobe detection: TP {} FP {} FN {} (borderline bin {}, of which FP caught {})",
        r.true_positives,
        r.false_positives,
        r.false_negatives,
        r.borderline,
        r.borderline_false_positives,
    );
    println!(
        "precision {:.3} recall {:.3} — races within Δ land in the borderline bin;\n\
         treating them as positives errs on the safe side (fire-code compliant).",
        r.precision(),
        r.recall()
    );
}
