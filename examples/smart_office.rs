//! The §3.1 smart-office example: detect `Definitely(motion ∧ temp>30°C)`
//! per room, comparing the causality-based Mattern/Fidge stamps (which
//! degenerate for pure observation — the paper's point) against strobe
//! vector stamps, and reproducing the [17]-style result that detection
//! probability stays high as the mean message delay grows.
//!
//! ```sh
//! cargo run --release --example smart_office
//! ```

use pervasive_time::prelude::*;

fn main() {
    let params = OfficeParams {
        rooms: 4,
        persons: 3,
        mean_dwell: SimDuration::from_secs(90),
        temp_step_every: SimDuration::from_secs(10),
        temp_sigma: 0.9,
        temp_emit_threshold: 0.5,
        base_temp: 29.0,
        pens: 1,
        duration: SimTime::from_secs(3600),
    };
    let scenario = office::generate(&params, 99);
    println!("{} — {} world events", scenario.name, scenario.timeline.len());

    // The conjunctive predicate for room 1: motion ∧ temp > 30.
    let room = 1;
    let conjuncts = match Predicate::hot_and_occupied(room, 30.0) {
        Predicate::Conjunctive(cs) => cs,
        _ => unreachable!(),
    };
    let pred = Predicate::hot_and_occupied(room, 30.0);
    let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
    println!(
        "ground truth: room {room} hot-and-occupied {} time(s), total {:.1}s",
        truth.len(),
        truth.iter().map(|t| t.duration(params.duration).as_secs_f64()).sum::<f64>()
    );

    // --- The paper's degeneracy observation -----------------------------
    // Mattern/Fidge clocks have "no occasion" to relate sensors that never
    // exchange computation messages: Definitely never holds.
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(100)),
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let initial = scenario.timeline.initial_state();
    let causal = detect_conjunctive(&trace, &conjuncts, &initial, StampFamily::Causal);
    let strobe = detect_conjunctive(&trace, &conjuncts, &initial, StampFamily::StrobeVector);
    println!("\nconjunctive detection (single-room conjunct is trivially definite;");
    println!("multi-room conjunction shows the contrast):");

    // A genuinely distributed conjunction: motion in room 1 AND room 2.
    let multi = vec![
        Conjunct { process: 1, expr: Expr::var(AttrKey::new(1, 1)) },
        Conjunct { process: 2, expr: Expr::var(AttrKey::new(2, 1)) },
    ];
    let causal_multi = detect_conjunctive(&trace, &multi, &initial, StampFamily::Causal);
    let strobe_multi = detect_conjunctive(&trace, &multi, &initial, StampFamily::StrobeVector);
    println!(
        "  Mattern/Fidge stamps : {} possibly, {} definitely  (degenerate: observation-only)",
        causal_multi.len(),
        causal_multi.iter().filter(|o| o.definitely).count()
    );
    println!(
        "  strobe vector stamps : {} possibly, {} definitely",
        strobe_multi.len(),
        strobe_multi.iter().filter(|o| o.definitely).count()
    );
    let _ = (causal, strobe);

    // --- Detection probability vs mean delay ([17]-style) ---------------
    // Sweep the mean message delay over a wide range; the probability of
    // detecting the hot-and-occupied occurrences stays high.
    println!("\ndetection probability of each occurrence vs mean delay (vector strobes):");
    println!("{:>12} {:>8} {:>8} {:>8}", "mean delay", "recall", "prec.", "bline");
    for delay_ms in [50u64, 200, 500, 1000, 2000, 5000] {
        let cfg = ExecutionConfig {
            delay: DelayModel::Exponential { mean: SimDuration::from_millis(delay_ms), cap: None },
            fifo: false,
            ..Default::default()
        };
        let trace = run_execution(&scenario, &cfg);
        let detections = detect_occurrences(&trace, &pred, &initial, Discipline::VectorStrobe);
        let r = score(
            &detections,
            &truth,
            params.duration,
            SimDuration::from_millis(4 * delay_ms + 1000),
            BorderlinePolicy::AsPositive,
        );
        println!(
            "{:>10}ms {:>8.3} {:>8.3} {:>8}",
            delay_ms,
            r.recall(),
            r.precision(),
            r.borderline
        );
    }
    println!(
        "\nHuman-timescale events (minutes) vastly outpace even multi-second\n\
         delays, so correctness stays high — the paper's §3.3 argument for\n\
         strobe clocks in smart offices."
    );

    // --- §4.1: the smart pen ---------------------------------------------
    // "When Bob gives a pen to Tom, Tom then moves to another room, and
    // leaves the pen there, the physical handoff and transport of the pen
    // can be detected by all the sensors/badge readers. The causality …
    // can be tracked in the network plane."
    // Our pen's moves are sensed by the room badge readers at BOTH ends,
    // so — unlike generic covert channels — this world-plane causal chain
    // IS mirrored by the strobe order.
    use pervasive_time::world::scenarios::office::pen_object_id;
    let pen = pen_object_id(params.rooms, 0);
    let pen_events: Vec<_> = trace
        .log
        .sense_events()
        .into_iter()
        .filter(|e| match e.kind {
            pervasive_time::core::EventKind::Sense { key, .. } => key.object == pen,
            _ => false,
        })
        .cloned()
        .collect();
    println!("\n§4.1 pen tracking: {} pen sightings across badge readers", pen_events.len());
    // Sightings at *different instants* must come out strobe-ordered (the
    // chain is mirrored); the leave/enter pair of one physical move shares
    // an instant and is correctly concurrent.
    let mut mirrored = 0;
    let mut total = 0;
    for w in pen_events.windows(2) {
        if w[0].at == w[1].at {
            continue; // one physical move: simultaneous by construction
        }
        total += 1;
        if w[0].stamps.strobe_vector.lt(&w[1].stamps.strobe_vector) {
            mirrored += 1;
        }
    }
    if total > 0 {
        println!(
            "distinct-instant sighting pairs whose world-plane causality the\n\
             strobe order mirrors in the network plane: {mirrored}/{total} — the pen's\n\
             chain is trackable because both ends are sensed (contrast the\n\
             dumb-pen case, a covert channel the network plane cannot see)."
        );
    }
}
