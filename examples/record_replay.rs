//! Record an execution to disk, then replay the stored observations
//! through different detectors — the workflow the paper's §6 asks for when
//! evaluating strobe clocks on *real* sensornet applications: collect the
//! report stream once (from hardware or a simulator), analyze offline as
//! many times as you like.
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use pervasive_time::core::TraceFile;
use pervasive_time::prelude::*;

fn main() {
    // --- Record -----------------------------------------------------------
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 110,
    };
    let scenario = exhibition::generate(&params, 2026);
    let trace = run_execution(
        &scenario,
        &ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(400)),
            ..Default::default()
        },
    );
    let path = std::env::temp_dir().join("pervasive-time-demo-trace.json");
    TraceFile::from_trace(&trace).save(&path).expect("write trace");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "recorded {} reports ({} sense events) to {} ({} KiB)",
        trace.log.reports.len(),
        trace.log.sense_events().len(),
        path.display(),
        bytes / 1024
    );

    // --- Replay ------------------------------------------------------------
    let loaded = TraceFile::load(&path).expect("read trace").into_trace();
    let pred = Predicate::occupancy_over(params.doors, params.capacity);
    let truth = truth_intervals(&scenario.timeline, |s| pred.eval_state(s));
    let init = scenario.timeline.initial_state();

    println!("\nreplaying the stored observation stream through every discipline:");
    println!("{:<16} {:>10} {:>8} {:>8}", "discipline", "detected", "recall", "prec.");
    for d in Discipline::ALL {
        let det = detect_occurrences(&loaded, &pred, &init, d);
        let r = score(
            &det,
            &truth,
            params.duration,
            SimDuration::from_millis(900),
            BorderlinePolicy::AsPositive,
        );
        println!("{:<16} {:>10} {:>8.3} {:>8.3}", d.label(), det.len(), r.recall(), r.precision());
    }

    // The replayed trace is bit-identical to the live one.
    let live = detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe);
    let replayed = detect_occurrences(&loaded, &pred, &init, Discipline::VectorStrobe);
    assert_eq!(live, replayed, "storage must be lossless");
    println!("\nreplayed detections are identical to the live run — the trace file");
    println!("is a faithful archive (swap in hardware logs for the §6 field study).");
    std::fs::remove_file(&path).ok();
}
