//! # pervasive-time
//!
//! A full Rust implementation of the system in *Execution and Time Models
//! for Pervasive Sensor Networks* (Kshemkalyani, Khokhar, Shen; IPPS 2011
//! workshop / IJNC 2012): the ⟨P, L, O, C⟩ execution model for
//! sensor-actuator networks, the complete clock-implementation design
//! space (Lamport, Mattern/Fidge, **strobe scalar**, **strobe vector**,
//! drifting and ε-synchronized physical clocks, physical vectors), global
//! predicate detection under the *Instantaneously* / *Possibly* /
//! *Definitely* modalities with every-occurrence semantics and the
//! borderline bin, consistent-global-state lattices (the slim-lattice
//! postulate), and the RBS/TPSN clock-synchronization baseline — all on a
//! deterministic discrete-event simulator.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Provides |
//! |---|---|
//! | [`sim`] | deterministic DES engine, delay/loss models, sweeps |
//! | [`clocks`] | the clock zoo (SC/VC/SSC/SVC rules + physical + HLC + matrix) |
//! | [`world`] | the ⟨O, C⟩ world plane, covert causality, scenarios |
//! | [`core`] | the ⟨P, L, O, C⟩ execution model wiring the planes |
//! | [`predicates`] | predicate language + detectors + accuracy scoring |
//! | [`lattice`] | consistent cuts, lattice enumeration, interval algebra |
//! | [`sync`] | RBS/TPSN sync protocols, skew and energy accounting |
//! | [`faults`] | fault plane: scripted crashes, partitions, channel + clock faults |
//! | [`lang`] | the `.psn` scenario language: lexer/parser, compiler, grammar sampler |
//!
//! ## Quickstart
//!
//! ```
//! use pervasive_time::prelude::*;
//!
//! // The paper's §5 scenario: an exhibition hall with RFID door sensors.
//! let scenario = exhibition::generate(
//!     &ExhibitionParams {
//!         doors: 3,
//!         arrival_rate_hz: 2.0,
//!         mean_stay: SimDuration::from_secs(60),
//!         duration: SimTime::from_secs(300),
//!         capacity: 80,
//!     },
//!     42,
//! );
//!
//! // Run it over a Δ-bounded asynchronous network with strobe clocks.
//! let trace = run_execution(&scenario, &ExecutionConfig::default());
//!
//! // Detect every occurrence of Σ(xᵢ−yᵢ) > 80 with vector strobes.
//! let predicate = Predicate::occupancy_over(3, 80);
//! let detections = detect_occurrences(
//!     &trace,
//!     &predicate,
//!     &scenario.timeline.initial_state(),
//!     Discipline::VectorStrobe,
//! );
//!
//! // Score against ground truth.
//! let truth = truth_intervals(&scenario.timeline, |s| predicate.eval_state(s));
//! let report = score(
//!     &detections,
//!     &truth,
//!     SimTime::from_secs(300),
//!     SimDuration::from_millis(200),
//!     BorderlinePolicy::AsPositive,
//! );
//! assert!(report.recall() >= 0.0); // see EXPERIMENTS.md for the real numbers
//! ```

#![warn(missing_docs)]

pub use psn_clocks as clocks;
pub use psn_core as core;
pub use psn_faults as faults;
pub use psn_lang as lang;
pub use psn_lattice as lattice;
pub use psn_predicates as predicates;
pub use psn_sim as sim;
pub use psn_sync as sync;
pub use psn_world as world;

/// Everything you need for the common workflow: generate a scenario, run
/// an execution, detect, score.
pub mod prelude {
    pub use psn_clocks::{
        Causality, LamportClock, LogicalClock, StrobeScalarClock, StrobeVectorClock, Timestamp,
        VectorClock, VectorStamp,
    };
    pub use psn_core::{
        run_execution, run_execution_instrumented, run_execution_profiled, run_execution_with_rule,
        ActuationRule, ClockConfig, ExecMetrics, ExecutionConfig, ExecutionTrace, ShardPlanKind,
        SpeculationMode, StrobePolicy,
    };
    pub use psn_faults::{
        ChannelEffect, ChannelFaultRule, ChaosConfig, ClockFaultKind, CutPolicy, FaultScript,
        FaultSpec, FaultStats,
    };
    pub use psn_predicates::{
        detect_conjunctive, detect_occurrences, detect_occurrences_instrumented, score,
        AccuracyReport, BorderlinePolicy, Conjunct, Detection, DetectorMetrics, Discipline, Expr,
        OnlineDetector, Predicate, StampFamily,
    };
    pub use psn_sim::delay::DelayModel;
    pub use psn_sim::loss::LossModel;
    pub use psn_sim::metrics::{Metrics, MetricsSnapshot};
    pub use psn_sim::telemetry::{Phase, Telemetry, TelemetrySnapshot};
    pub use psn_sim::time::{SimDuration, SimTime};
    pub use psn_world::scenarios::exhibition::{self, ExhibitionParams};
    pub use psn_world::scenarios::habitat::{self, HabitatParams};
    pub use psn_world::scenarios::hospital::{self, HospitalParams};
    pub use psn_world::scenarios::office::{self, OfficeParams};
    pub use psn_world::{truth_intervals, AttrKey, AttrValue, Scenario, TruthInterval, WorldState};
}
