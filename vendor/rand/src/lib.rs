//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: `rngs::SmallRng` (here a
//! xoshiro256++ generator, the same family rand 0.8 uses on 64-bit
//! targets), `SeedableRng::{from_seed, seed_from_u64}`, and `Rng::{gen,
//! gen_range, gen_bool, fill}` for the primitive types that appear in this
//! repo. Streams are deterministic per seed; no OS entropy is ever used
//! (`thread_rng`/`from_entropy` are deliberately absent — every stream in
//! the simulator must come from an explicit seed).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from an explicit seed.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the standard recipe
    /// for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a primitive type with its "standard" distribution
    /// (uniform over the full range for integers, uniform in `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        f64::standard_sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// 53 random mantissa bits scaled into `[0, 1)` — the same construction
    /// rand 0.8's `Standard` uses for `f64`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw in `[0, bound)` by rejection on the widening
/// multiply (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::standard_sample(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the generator family behind rand 0.8's `SmallRng` on
    /// 64-bit targets: tiny state, excellent statistical quality, not
    /// cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in &mut s {
                    *word = splitmix64(&mut st);
                }
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference values for xoshiro256++ with state [1, 2, 3, 4]
        // (from the published C implementation by Blackman & Vigna).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(rng.gen::<u64>(), e);
        }
    }

    #[test]
    fn float_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&a));
            let b = rng.gen_range(0usize..7);
            assert!(b < 7);
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn gen_bool_edge() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
