//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serde replacement. Instead of serde's visitor architecture, this
//! one round-trips through an owned JSON-like [`Value`] tree:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] reconstructs `Self` from a [`&Value`](Value).
//!
//! The derive macros (re-exported from the vendored `serde_derive`) generate
//! the same shapes real serde would emit as JSON: structs as maps, tuple
//! structs as sequences (newtypes transparent), enums externally tagged.
//! That keeps the on-disk JSON produced by the vendored `serde_json`
//! familiar, and everything in this workspace that round-trips through it
//! self-consistent.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like data tree — the interchange format between
/// [`Serialize`] and [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers (and any integer parsed with a leading `-`).
    Int(i64),
    /// Non-negative integers; kept separate from [`Value::Int`] so `u64`
    /// values above `i64::MAX` survive round-trips losslessly.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key order is preserved (serialization order = field order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Map lookup by key (linear scan; maps here are field lists).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error { msg: format!("expected {what}, got {}", got.kind()) }
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error { msg: format!("missing field `{field}` for {ty}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is absent from its map. Defaults to
    /// an error; `Option<T>` overrides this to `None` so adding optional
    /// fields stays backward-compatible.
    fn absent(ty: &str, field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(ty, field))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null; accept it back.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("one-char string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected exactly one char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_ty: &str, _field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec = Vec::<T>::from_value(v)?;
        let n = vec.len();
        <[T; N]>::try_from(vec)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("tuple sequence", v))?;
                let want = [$($i),+].len();
                if s.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of length {want}, got {}", s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

// Maps serialize as a sequence of `[key, value]` pairs, sorted by key.
// Unlike real serde_json this also works for non-string keys, and the
// sorting makes serialized bytes deterministic even for `HashMap` (which
// matters for the trace-determinism tests).
impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(entries.into_iter().map(|(k, v)| (k, v).to_value()).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|entry| entry.to_value()).collect())
    }
}

fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    v.as_seq()
        .ok_or_else(|| Error::expected("sequence of map entries", v))?
        .iter()
        .map(<(K, V)>::from_value)
        .collect()
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_entries(v)?.into_iter().collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_entries(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support code for the derive macros — not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetch and decode one struct field from a map value, falling back to
    /// `T::absent` (error, or `None` for options) when the key is missing.
    pub fn field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(x) => T::from_value(x).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
            None => T::absent(ty, name),
        }
    }

    /// Fetch and decode one tuple-struct element from a sequence value.
    pub fn element<T: Deserialize>(s: &[Value], ty: &str, idx: usize) -> Result<T, Error> {
        let v = s
            .get(idx)
            .ok_or_else(|| Error::custom(format!("{ty}: missing tuple element {idx}")))?;
        T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{idx}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
        let x = f64::from_value(&1.5f64.to_value()).unwrap();
        assert_eq!(x, 1.5);
    }

    #[test]
    fn u64_above_i64_max_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![(1u64, -2i64), (3, -4)];
        assert_eq!(Vec::<(u64, i64)>::from_value(&xs.to_value()).unwrap(), xs);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }
}
