//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored Value-based `serde` shim, with no `syn`/`quote` dependency: the
//! item is parsed by hand from the raw token stream and the impl is emitted
//! as a source string. Supported shapes — which cover every derived type in
//! this workspace — are non-generic structs (named, tuple, unit) and enums
//! (unit, newtype, tuple, struct variants). Generic or `#[serde(...)]`-
//! attributed types are rejected with a compile error rather than silently
//! mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    item: Item,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_item(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({:?});", format!("serde shim derive: {msg}"))
                .parse()
                .expect("compile_error tokens");
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` is not supported by the vendored derive"));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                _ => return Err(format!("unsupported struct body for `{name}`")),
            };
            Ok(Parsed { name, item: Item::Struct(fields) })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("expected enum body for `{name}`")),
            };
            Ok(Parsed { name, item: Item::Enum(parse_variants(body)?) })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Names of the fields in a `{ a: T, b: U }` body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got `{other}`")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        names.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(names)
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket aware:
/// commas inside `Vec<(A, B)>`'s `<...>` don't terminate the field).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Number of fields in a `(T, U, ...)` tuple body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got `{other}`")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (source strings; shapes mirror serde's JSON conventions)
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.item {
        Item::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Item::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Item::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Item::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        Fields::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
             ::std::string::String::from({vname:?}), ::serde::Serialize::to_value(__f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let vals: Vec<String> =
                binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from({vname:?}), \
                 ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                vals.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from({vname:?}), \
                 ::serde::Value::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.item {
        Item::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(v, {name:?}, {f:?})?"))
                .collect();
            format!(
                "if v.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::expected({name:?}, v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Item::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::element(__s, {name:?}, {i})?"))
                .collect();
            format!(
                "let __s = v.as_seq().ok_or_else(|| ::serde::Error::expected({name:?}, v))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Item::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Item::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push(format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),"))
            }
            Fields::Tuple(1) => data_arms.push(format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__payload)?)),"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::__private::element(__s, {vname:?}, {i})?"))
                    .collect();
                data_arms.push(format!(
                    "{vname:?} => {{\n\
                         let __s = __payload.as_seq()\
                             .ok_or_else(|| ::serde::Error::expected({vname:?}, __payload))?;\n\
                         ::std::result::Result::Ok({name}::{vname}({}))\n\
                     }}",
                    inits.join(", ")
                ))
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::__private::field(__payload, {vname:?}, {f:?})?")
                    })
                    .collect();
                data_arms.push(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                    inits.join(", ")
                ))
            }
        }
    }
    format!(
        "match v {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = &__m[0];\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n\
                     {data}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::serde::Error::expected({name:?}, __other)),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
