//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are vendored as minimal, API-compatible
//! shims. This one wraps `std::sync` primitives with `parking_lot`'s
//! poison-free interface (`lock()` returns the guard directly). Only the
//! surface the workspace actually uses is provided.

use std::fmt;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that recovers from poisoning instead of
/// propagating it, matching `parking_lot::Mutex` semantics closely enough
/// for this workspace (no lock here is held across a panic on purpose).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the same poison-free interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: StdCondvar::new() }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.inner.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
