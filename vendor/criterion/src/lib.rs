//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated wall-clock
//! loop instead of criterion's statistical machinery. Results print as
//! `group/name ... ns/iter (throughput)` lines. Good enough to eyeball
//! regressions offline; swap in real criterion when a registry is
//! available.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { text: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

/// True when the benches were invoked as `cargo bench -- --test`:
/// criterion's "test mode", where every closure runs exactly once so CI can
/// verify benches compile and run without paying for (flaky) timing.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Run `f` in a calibrated loop and record its mean wall-clock cost.
    /// Under `--test`, run it once and skip calibration entirely.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm up and calibrate: find an iteration count that runs for at
        // least ~20ms, then measure three rounds and keep the fastest.
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || n >= 1 << 30 {
                let mut best = dt.as_secs_f64() / n as f64;
                for _ in 0..2 {
                    let t0 = Instant::now();
                    for _ in 0..n {
                        black_box(f());
                    }
                    best = best.min(t0.elapsed().as_secs_f64() / n as f64);
                }
                self.ns_per_iter = best * 1e9;
                return;
            }
            n = n.saturating_mul(if dt.as_micros() == 0 {
                100
            } else {
                (Duration::from_millis(25).as_micros() / dt.as_micros().max(1)).max(2) as u64
            });
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the shim's single-pass timing loop
    /// has no sample count to configure.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, ns: f64) {
        if test_mode() {
            println!("{}/{:<40} ok (--test: ran once, untimed)", self.name, id);
            return;
        }
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.1}M elem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{:<40} {:>14.1} ns/iter{extra}", self.name, id, ns);
        let _ = &self.criterion;
    }
}

/// Entry point matching criterion's; collects and prints results.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
