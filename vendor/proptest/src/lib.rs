//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, `prop_oneof!`, `Just`, integer-range and
//! `collection::vec` strategies, tuple composition, and
//! `prop_map`/`prop_flat_map`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking** — a failing case reports the exact generated inputs
//!   (printed before the panic propagates) instead of a minimized one.
//! - **Deterministic seeding** — the RNG seed is derived from the test's
//!   module path and name, so failures always reproduce.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default; property tests in this workspace that
        // need fewer cases say so via `#![proptest_config(...)]`.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies — deterministic per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Seed from a stable label (the test's full path).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { rng: SmallRng::seed_from_u64(h) }
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func: f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, func: f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// Type-erased strategy (also what `prop_oneof!` arms become).
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    func: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.func)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

/// Uniform choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};
}

pub mod prelude {
    pub use super::collection;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test-harness macro. Each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// real proptest) running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __case_inputs = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(&::std::format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg,
                            ));
                        )+
                        __s
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let ::std::result::Result::Err(__payload) = __outcome {
                        ::std::eprintln!(
                            "proptest {}: case {}/{} failed with inputs:\n{}",
                            stringify!($name), __case + 1, __config.cases, __case_inputs,
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(usize),
        B(usize),
    }

    fn pick_strategy(n: usize) -> impl Strategy<Value = Pick> {
        prop_oneof![(0..n).prop_map(Pick::A), (0..n).prop_map(Pick::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -5i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(xs in collection::vec(0u32..100, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_oneof_compose(
            pair in (0usize..4, pick_strategy(7)),
            j in Just(9u8),
        ) {
            let (a, p) = pair;
            prop_assert!(a < 4);
            prop_assert_eq!(j, 9);
            match p {
                Pick::A(v) | Pick::B(v) => prop_assert!(v < 7),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = collection::vec(0u64..1000, 3..10);
        let mut r1 = super::TestRng::deterministic("label");
        let mut r2 = super::TestRng::deterministic("label");
        for _ in 0..16 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
