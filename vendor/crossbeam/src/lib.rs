//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::channel::{unbounded, Sender, Receiver}` — the
//! surface `psn-sim`'s sweep runner uses. The implementation is a classic
//! Mutex+Condvar MPMC queue: correct and deterministic-enough for a work
//! queue (the sweep reorders results by index anyway), if not as fast as
//! the real lock-free crossbeam. Swap in the real crate when a registry is
//! available.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent value, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared.queue.lock().unwrap().items.pop_front().ok_or(RecvError)
        }

        /// Blocking iterator over received values; ends when all senders
        /// are dropped and the queue drains.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Borrowing blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut n = 0usize;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_when_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
