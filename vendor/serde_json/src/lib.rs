//! Offline stand-in for `serde_json`, over the vendored `serde` shim.
//!
//! Serializes the shim's [`Value`] tree to RFC 8259 JSON and parses it
//! back. Non-finite floats serialize as `null` (matching real serde_json's
//! lossy default), integers round-trip exactly (u64/i64 kept out of f64),
//! and strings are escaped/unescaped including `\uXXXX` forms.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Render an already-built [`Value`] as compact JSON, appending to `out`.
/// Unlike [`to_string`] (whose `Serialize` bound would deep-clone a
/// `Value` argument via its identity `to_value`), this borrows — callers
/// that assemble `Value` trees by hand serialize them without a copy and
/// can reuse the output buffer.
pub fn write_value_to(value: &Value, out: &mut String) {
    write_value(value, out, None, 0);
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 produces a shortest round-trippable form, but renders
    // integral floats without a decimal point; keep the point so the value
    // re-parses as a float and the Value tree round-trips exactly.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or_else(|| Error::new("unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::new("unpaired surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `\\{}`", *other as char)))
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always valid UTF-8).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid utf8"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    if *pos + 4 > bytes.len() {
        return Err(Error::new("truncated \\u escape"));
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| Error::new("invalid \\u escape"))?;
    let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
    *pos += 4;
    Ok(n)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_collections() {
        let xs = vec![(1u64, -2i64), (3, -4)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[[1,-2],[3,-4]]");
        assert_eq!(from_str::<Vec<(u64, i64)>>(&json).unwrap(), xs);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A\u{1F600}");
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Map(vec![("a".into(), Value::Seq(vec![Value::UInt(1)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(parse("{\"a\": }").is_err());
    }
}
