//! End-to-end integration: world generation → execution → detection →
//! scoring, across all four scenarios and all clock disciplines.

use pervasive_time::prelude::*;
use pervasive_time::world::scenarios::hospital::ATTR_INTRUSION;

fn exhibition_scenario(seed: u64) -> (Scenario, Predicate, SimTime) {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(600),
        capacity: 110,
    };
    (exhibition::generate(&params, seed), Predicate::occupancy_over(4, 110), params.duration)
}

#[test]
fn oracle_discipline_reproduces_truth_on_every_scenario() {
    // Exhibition.
    let (s, pred, _) = exhibition_scenario(3);
    let trace = run_execution(&s, &ExecutionConfig::default());
    let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
    let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
    assert_eq!(det.len(), truth.len());

    // Office.
    let s = office::generate(&OfficeParams::default(), 4);
    let pred = Predicate::hot_and_occupied(1, 30.0);
    let trace = run_execution(&s, &ExecutionConfig::default());
    let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
    let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
    assert_eq!(det.len(), truth.len());

    // Hospital.
    let s = hospital::generate(&HospitalParams::default(), 5);
    let pred = Predicate::Relational(Expr::var(AttrKey::new(4, ATTR_INTRUSION)));
    let trace = run_execution(&s, &ExecutionConfig::default());
    let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
    let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
    assert_eq!(det.len(), truth.len());

    // Habitat.
    let s = habitat::generate(&HabitatParams::default(), 6);
    let pred = Predicate::Relational(Expr::var(AttrKey::new(0, 0)).ge(Expr::int(2)));
    let trace = run_execution(&s, &ExecutionConfig::default());
    let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::Oracle);
    let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
    assert_eq!(det.len(), truth.len());
}

#[test]
fn all_disciplines_are_reasonable_at_small_delta() {
    // With Δ = 10ms and events seconds apart, every discipline should be
    // near-perfect (races essentially never happen).
    let (s, pred, horizon) = exhibition_scenario(9);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(10)),
        ..Default::default()
    };
    let trace = run_execution(&s, &cfg);
    let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
    assert!(!truth.is_empty(), "fixture must have occurrences");
    for d in Discipline::ALL {
        let det = detect_occurrences(&trace, &pred, &s.timeline.initial_state(), d);
        let r = score(
            &det,
            &truth,
            horizon,
            SimDuration::from_millis(100),
            BorderlinePolicy::AsPositive,
        );
        assert!(
            r.recall() > 0.9,
            "discipline {} recall {} too low at tiny Δ",
            d.label(),
            r.recall()
        );
    }
}

#[test]
fn habitat_regime_strobes_are_near_perfect() {
    // The paper's target regime: event rate ≪ 1/Δ ⇒ strobe detection is
    // essentially exact even with Δ = 1 s.
    let s = habitat::generate(&HabitatParams::default(), 12);
    let pred = Predicate::Relational(Expr::var(AttrKey::new(2, 0)).ge(Expr::int(1)));
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_secs(1)),
        ..Default::default()
    };
    let trace = run_execution(&s, &cfg);
    let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
    let det =
        detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::VectorStrobe);
    let r = score(
        &det,
        &truth,
        SimTime::from_secs(86_400),
        SimDuration::from_secs(3),
        BorderlinePolicy::AsPositive,
    );
    assert_eq!(r.false_negatives, 0, "rare events: nothing should be missed");
    assert!(r.precision() > 0.95, "precision {}", r.precision());
}

#[test]
fn actuation_loop_reacts_to_detection() {
    use pervasive_time::core::{ExecutionLog, Report};
    use pervasive_time::world::AttrValue as AV;

    struct AlarmRule {
        fired: bool,
    }
    impl ActuationRule for AlarmRule {
        fn on_report(&mut self, report: &Report, _h: &ExecutionLog) -> Vec<(usize, AttrKey, AV)> {
            if !self.fired && report.value.as_int() >= 3 {
                self.fired = true;
                vec![(report.process, report.key, AV::Bool(true))]
            } else {
                vec![]
            }
        }
    }

    let (s, _, _) = exhibition_scenario(21);
    let trace = pervasive_time::core::run_execution_with_rule(
        &s,
        &ExecutionConfig::default(),
        Box::new(AlarmRule { fired: false }),
    );
    assert_eq!(trace.log.actuations.len(), 1);
    let target = trace.log.actuations[0].target;
    let actuated = trace.log.events.iter().any(|e| e.process == target && e.kind.tag() == 'a');
    assert!(actuated, "the commanded sensor must record an 'a' event");
    // The actuate event is causally after the root's receive: its vector
    // clock must dominate the root's component.
    let a_event = trace.log.events.iter().find(|e| e.kind.tag() == 'a').expect("actuate event");
    assert!(
        a_event.stamps.vector.get(trace.root_id()) > 0,
        "actuation carries the root's causal influence (sense→send→receive→actuate)"
    );
}

#[test]
fn strobe_throttling_trades_messages_for_accuracy() {
    let (s, pred, horizon) = exhibition_scenario(33);
    let run_with = |every: usize| {
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(500)),
            strobes: StrobePolicy { every, ..Default::default() },
            seed: 1,
            ..Default::default()
        };
        let trace = run_execution(&s, &cfg);
        let det = detect_occurrences(
            &trace,
            &pred,
            &s.timeline.initial_state(),
            Discipline::VectorStrobe,
        );
        let truth = truth_intervals(&s.timeline, |st| pred.eval_state(st));
        let r =
            score(&det, &truth, horizon, SimDuration::from_secs(2), BorderlinePolicy::AsPositive);
        (trace.net.broadcasts, r.f1())
    };
    let (msgs_every, f1_every) = run_with(1);
    let (msgs_throttled, f1_throttled) = run_with(8);
    assert!(msgs_throttled < msgs_every / 4, "throttling cuts broadcasts");
    assert!(
        f1_throttled <= f1_every + 0.05,
        "throttling must not magically improve accuracy ({f1_throttled} vs {f1_every})"
    );
}
