//! The telemetry plane is observational: wall-clock reads feed histograms
//! only, never scheduling decisions, so attaching a live [`Telemetry`]
//! registry must not change a single byte of any output — on the
//! sequential engine, the conservative sharded engine at any shard count,
//! or the optimistic (Time Warp) path. These tests enforce that three
//! ways: telemetry-on vs telemetry-off bit-identity of the serialized
//! outputs, a pinned golden hash (the same constant for every execution
//! mode — the sharded-equals-sequential guarantee and the telemetry-is-
//! free guarantee in one number), and a paired A/B wall-clock guard on
//! the sequential engine.

use pervasive_time::prelude::*;

/// FNV-1a (specified algorithm — the pinned constant below stays
/// meaningful across Rust and standard-library versions).
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn scenario() -> Scenario {
    let params = ExhibitionParams {
        doors: 6,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(120),
        capacity: 70,
    };
    exhibition::generate(&params, 23)
}

/// Shards > 1 need lookahead, so every mode (sequential included) runs
/// under the same Δ-band — that is what makes the golden hash one
/// constant across all of them.
fn cfg(shards: usize, optimistic: bool) -> ExecutionConfig {
    ExecutionConfig {
        delay: DelayModel::DeltaBounded {
            min: SimDuration::from_millis(40),
            max: SimDuration::from_millis(240),
        },
        seed: 23,
        shards,
        speculation: Some(if optimistic {
            SpeculationMode::Optimistic
        } else {
            SpeculationMode::Conservative
        }),
        ..Default::default()
    }
}

/// Serialize the observable outputs (execution log + network counters)
/// into one stable string.
fn output_bytes(trace: &ExecutionTrace) -> String {
    let mut s = serde_json::to_string(&trace.log).expect("log serializes");
    s.push_str(&serde_json::to_string(&trace.net).expect("net serializes"));
    s
}

fn output_hash(trace: &ExecutionTrace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut h, output_bytes(trace).as_bytes());
    h
}

/// One constant for all eight runs of the matrix below: {sequential,
/// 2 shards, 4 shards, optimistic 4 shards} × {telemetry off, on}.
/// Regenerate by running this test with the println uncommented if the
/// workload or the engine's canonical ordering deliberately changes.
const GOLDEN_OUTPUT_HASH: u64 = 0x9557_c668_40a9_8b49;

#[test]
fn telemetry_on_output_is_bit_identical_across_engines() {
    let scenario = scenario();
    let modes: &[(usize, bool, &str)] = &[
        (1, false, "sequential"),
        (2, false, "sharded x2"),
        (4, false, "sharded x4"),
        (4, true, "optimistic x4"),
    ];
    for &(shards, optimistic, label) in modes {
        let cfg = cfg(shards, optimistic);
        let off = {
            let telemetry = Telemetry::disabled();
            run_execution_profiled(&scenario, &cfg, &Metrics::disabled(), &telemetry)
        };
        let telemetry = Telemetry::new();
        let on = run_execution_profiled(&scenario, &cfg, &Metrics::disabled(), &telemetry);
        assert_eq!(
            output_bytes(&off),
            output_bytes(&on),
            "{label}: telemetry-on output diverged from telemetry-off"
        );
        // println!("{label}: {:#x}", output_hash(&on));
        assert_eq!(
            output_hash(&on),
            GOLDEN_OUTPUT_HASH,
            "{label}: output hash drifted from the pinned golden value"
        );
        // The registry really recorded: the run is covered, not skipped.
        let snap = telemetry.snapshot();
        assert!(snap.enabled && snap.runs == 1 && snap.run_wall_ns > 0, "{label}: {snap:?}");
        assert!(
            snap.shards.iter().any(|s| s.phases.iter().any(|p| p.count > 0)),
            "{label}: no phase spans recorded"
        );
        if shards > 1 {
            assert!(
                snap.phase_ns(0, Phase::BarrierWait) > 0,
                "{label}: sharded run recorded no barrier wait"
            );
        }
    }
}

/// Telemetry must stay within 2% of the uninstrumented sequential engine.
/// Median of 10 *paired* A/B runs (pairing cancels thermal/scheduler
/// drift); the comparison is repeated up to 3 times before failing so a
/// single noisy CI neighbor cannot flake the suite.
#[test]
fn sequential_telemetry_overhead_within_two_percent() {
    let scenario = scenario();
    let cfg = cfg(1, false);
    let time_with = |telemetry: &Telemetry| {
        let t0 = std::time::Instant::now();
        std::hint::black_box(run_execution_profiled(
            &scenario,
            &cfg,
            &Metrics::disabled(),
            telemetry,
        ));
        t0.elapsed().as_secs_f64()
    };
    // Warm caches and the allocator before any timed run.
    let _ = time_with(&Telemetry::disabled());
    let mut last_median = f64::NAN;
    for _attempt in 0..3 {
        let live = Telemetry::new();
        let mut ratios: Vec<f64> = (0..10)
            .map(|_| {
                let off = time_with(&Telemetry::disabled());
                let on = time_with(&live);
                on / off
            })
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        last_median = (ratios[4] + ratios[5]) / 2.0;
        if last_median <= 1.02 {
            return;
        }
    }
    panic!("telemetry overhead ratio {last_median:.4} > 1.02 after 3 attempts");
}
