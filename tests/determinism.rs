//! Reproducibility guarantees: every layer is a pure function of
//! `(config, seed)`, and parallel sweeps are thread-count invariant.

use pervasive_time::prelude::*;
use pervasive_time::sim::sweep::run_sweep;

fn fingerprint(seed: u64, delta_ms: u64) -> (usize, u64, u64, Vec<(SimTime, Option<SimTime>)>) {
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(300),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, seed);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
        seed,
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let pred = Predicate::occupancy_over(3, 70);
    let det = detect_occurrences(
        &trace,
        &pred,
        &scenario.timeline.initial_state(),
        Discipline::VectorStrobe,
    );
    (
        trace.log.reports.len(),
        trace.net.messages_sent,
        trace.net.bytes_sent,
        det.into_iter().map(|d| (d.start, d.end)).collect(),
    )
}

#[test]
fn full_pipeline_is_deterministic() {
    assert_eq!(fingerprint(7, 300), fingerprint(7, 300));
    assert_eq!(fingerprint(8, 300), fingerprint(8, 300));
    assert_ne!(fingerprint(7, 300), fingerprint(8, 300), "seeds matter");
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let seeds: Vec<u64> = (0..12).collect();
    let f = |_: usize, &s: &u64| fingerprint(s, 250);
    let t1 = run_sweep(&seeds, 1, f);
    let t4 = run_sweep(&seeds, 4, f);
    let t16 = run_sweep(&seeds, 16, f);
    assert_eq!(t1, t4);
    assert_eq!(t1, t16);
}

#[test]
fn scenario_generation_isolated_from_execution_seed() {
    // The world timeline depends only on its own seed; execution noise
    // (delays, clock errors) must not leak back into ground truth.
    let params = ExhibitionParams {
        doors: 2,
        arrival_rate_hz: 1.0,
        mean_stay: SimDuration::from_secs(30),
        duration: SimTime::from_secs(120),
        capacity: 20,
    };
    let s = exhibition::generate(&params, 42);
    let before = s.timeline.events.clone();
    for exec_seed in 0..5 {
        let cfg = ExecutionConfig { seed: exec_seed, ..Default::default() };
        let _ = run_execution(&s, &cfg);
    }
    assert_eq!(s.timeline.events, before);
}

#[test]
fn delta_zero_is_invariant_to_seed() {
    // Under the synchronous model nothing is random in the network plane,
    // so detection outcomes are identical across execution seeds (only the
    // clock-hardware draws differ, and strobe detection ignores physical
    // clocks).
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(300),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, 5);
    let pred = Predicate::occupancy_over(3, 70);
    let detect = |seed: u64| {
        let cfg = ExecutionConfig { delay: DelayModel::Synchronous, seed, ..Default::default() };
        let trace = run_execution(&scenario, &cfg);
        detect_occurrences(
            &trace,
            &pred,
            &scenario.timeline.initial_state(),
            Discipline::VectorStrobe,
        )
    };
    assert_eq!(detect(1), detect(99));
}
