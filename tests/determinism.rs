//! Reproducibility guarantees: every layer is a pure function of
//! `(config, seed)`, and parallel sweeps are thread-count invariant.

use pervasive_time::prelude::*;
use pervasive_time::sim::sweep::run_sweep;

fn fingerprint(seed: u64, delta_ms: u64) -> (usize, u64, u64, Vec<(SimTime, Option<SimTime>)>) {
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(300),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, seed);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
        seed,
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let pred = Predicate::occupancy_over(3, 70);
    let det = detect_occurrences(
        &trace,
        &pred,
        &scenario.timeline.initial_state(),
        Discipline::VectorStrobe,
    );
    (
        trace.log.reports.len(),
        trace.net.messages_sent,
        trace.net.bytes_sent,
        det.into_iter().map(|d| (d.start, d.end)).collect(),
    )
}

/// FNV-1a over a stable encoding of the full network-plane trace. Unlike
/// `DefaultHasher`, FNV has a specified algorithm, so the constant below is
/// meaningful across Rust versions and standard-library changes.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a over the *pre-PR-3 projection* of the trace: stamped process
/// events are skipped and message ids dropped, reproducing byte-for-byte
/// the encoding the original golden constant was recorded over. If the
/// tracing pipeline ever perturbs what the network plane actually does,
/// this hash moves.
fn trace_projection_hash(trace: &pervasive_time::sim::trace::Trace) -> u64 {
    use pervasive_time::sim::trace::TraceKind;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.events() {
        let (tag, a, b, c): (u8, u64, u64, u64) = match &e.kind {
            TraceKind::Sent { from, to, bytes, .. } => (0, *from as u64, *to as u64, *bytes as u64),
            TraceKind::Delivered { from, to, .. } => (1, *from as u64, *to as u64, 0),
            TraceKind::Lost { from, to, .. } => (2, *from as u64, *to as u64, 0),
            TraceKind::TimerFired { actor, tag } => (3, *actor as u64, *tag, 0),
            TraceKind::Note { actor, label } => {
                fnv1a(&mut h, &e.at.as_nanos().to_le_bytes());
                fnv1a(&mut h, label.as_bytes());
                (4, *actor as u64, label.len() as u64, 0)
            }
            TraceKind::Process { .. } => continue,
            // Fault records cannot appear in the golden (fault-free) trace;
            // hashing them keeps the projection total over TraceKind.
            TraceKind::Fault { actor, kind, detail } => {
                fnv1a(&mut h, kind.label().as_bytes());
                (6, *actor as u64, kind.label().len() as u64, *detail)
            }
        };
        if tag != 4 {
            fnv1a(&mut h, &e.at.as_nanos().to_le_bytes());
        }
        fnv1a(&mut h, &[tag]);
        fnv1a(&mut h, &a.to_le_bytes());
        fnv1a(&mut h, &b.to_le_bytes());
        fnv1a(&mut h, &c.to_le_bytes());
    }
    h
}

/// FNV-1a over the full PR-3 trace format: every record including stamped
/// process events, message ids, and clock stamps. Pins the complete
/// structured-trace pipeline, not just the network plane.
fn trace_full_hash(trace: &pervasive_time::sim::trace::Trace) -> u64 {
    use pervasive_time::sim::trace::{ClockStamp, TraceKind};
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.events() {
        fnv1a(&mut h, &e.seq.to_le_bytes());
        fnv1a(&mut h, &e.at.as_nanos().to_le_bytes());
        let (tag, a, b, c): (u8, u64, u64, u64) = match &e.kind {
            TraceKind::Sent { from, to, bytes, msg } => {
                fnv1a(&mut h, &msg.0.to_le_bytes());
                (0, *from as u64, *to as u64, *bytes as u64)
            }
            TraceKind::Delivered { from, to, msg } => {
                fnv1a(&mut h, &msg.0.to_le_bytes());
                (1, *from as u64, *to as u64, 0)
            }
            TraceKind::Lost { from, to, msg } => {
                fnv1a(&mut h, &msg.0.to_le_bytes());
                (2, *from as u64, *to as u64, 0)
            }
            TraceKind::TimerFired { actor, tag } => (3, *actor as u64, *tag, 0),
            TraceKind::Note { actor, label } => {
                fnv1a(&mut h, label.as_bytes());
                (4, *actor as u64, label.len() as u64, 0)
            }
            TraceKind::Process { actor, kind, stamp, detail } => {
                match stamp {
                    ClockStamp::None => fnv1a(&mut h, &[0]),
                    ClockStamp::Scalar(v) => {
                        fnv1a(&mut h, &[1]);
                        fnv1a(&mut h, &v.to_le_bytes());
                    }
                    ClockStamp::Vector(v) => {
                        fnv1a(&mut h, &[2]);
                        for x in v.as_slice() {
                            fnv1a(&mut h, &x.to_le_bytes());
                        }
                    }
                }
                fnv1a(&mut h, kind.label().as_bytes());
                (5, *actor as u64, kind.label().len() as u64, *detail)
            }
            TraceKind::Fault { actor, kind, detail } => {
                fnv1a(&mut h, kind.label().as_bytes());
                (6, *actor as u64, kind.label().len() as u64, *detail)
            }
        };
        fnv1a(&mut h, &[tag]);
        fnv1a(&mut h, &a.to_le_bytes());
        fnv1a(&mut h, &b.to_le_bytes());
        fnv1a(&mut h, &c.to_le_bytes());
    }
    h
}

fn golden_trace() -> pervasive_time::core::execution::ExecutionTrace {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(200),
        capacity: 90,
    };
    let scenario = exhibition::generate(&params, 13);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(150)),
        loss: LossModel::Bernoulli { p: 0.02 },
        seed: 13,
        record_sim_trace: true,
        ..Default::default()
    };
    run_execution(&scenario, &cfg)
}

/// Golden-trace regression: the exact event-for-event network trace of a
/// fixed `(scenario, config, seed)` triple, hashed two ways. The projection
/// constants were re-recorded for the sharded engine (PR 5): canonical
/// event keys and per-sender network/fault RNG streams deliberately change
/// every delay draw and same-instant tie-break, so the pre-PR-5 constants
/// could not survive. From here on, any change that reorders events,
/// perturbs an RNG draw, or changes a
/// delivery time will move it. The full-format constant additionally pins
/// message ids and clock stamps. Δ is variable (sampled) and loss is
/// nonzero so the fifo clamp, the loss path, and the delay sampler all
/// execute.
#[test]
fn golden_trace_hash_is_stable() {
    let trace = golden_trace();
    assert!(trace.sim.len() > 1_000, "trace must be non-trivial, got {}", trace.sim.len());
    assert_eq!(
        trace_projection_hash(&trace.sim),
        18040857238188682466,
        "network-plane trace diverged from the recorded golden hash"
    );
    assert_eq!(
        trace_full_hash(&trace.sim),
        FULL_TRACE_HASH,
        "structured trace (stamps/msg ids) diverged from the golden hash"
    );
}

/// Re-recorded with the sharded engine (PR 5, canonical keys + per-sender
/// streams); see `golden_trace_hash_is_stable`.
const FULL_TRACE_HASH: u64 = 14563640158707952414;

/// The fault plane's contract: faults off is provably observational. A run
/// with the plane **installed but empty** must reproduce the golden hashes
/// byte-for-byte — both the network-plane projection and the full
/// structured trace — and be bit-identical in every other observable to a
/// run with no plane at all. Installing an empty script therefore draws
/// zero extra RNG values and perturbs no event.
#[test]
fn empty_fault_plane_reproduces_the_golden_hashes() {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(200),
        capacity: 90,
    };
    let scenario = exhibition::generate(&params, 13);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(150)),
        loss: LossModel::Bernoulli { p: 0.02 },
        seed: 13,
        record_sim_trace: true,
        faults: Some(FaultScript::new()),
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    assert_eq!(
        trace_projection_hash(&trace.sim),
        18040857238188682466,
        "an empty fault plane perturbed the network-plane trace"
    );
    assert_eq!(
        trace_full_hash(&trace.sim),
        FULL_TRACE_HASH,
        "an empty fault plane perturbed the structured trace"
    );
    let off = golden_trace();
    assert_eq!(off.log.events, trace.log.events);
    assert_eq!(off.log.reports, trace.log.reports);
    assert_eq!(off.net, trace.net, "fault counters aside, the network counters must not move");
    assert_eq!(off.ended_at, trace.ended_at);
    assert_eq!(trace.faults, Some(FaultStats::default()), "plane installed, nothing fired");
}

/// The tentpole's contract: tracing is purely observational. A run with the
/// structured trace enabled must be bit-identical — events, reports,
/// network counters, end time — to the same run with tracing off.
#[test]
fn tracing_on_is_bit_identical_to_tracing_off() {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(200),
        capacity: 90,
    };
    let scenario = exhibition::generate(&params, 13);
    let base = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(150)),
        loss: LossModel::Bernoulli { p: 0.02 },
        seed: 13,
        ..Default::default()
    };
    let off = run_execution(&scenario, &base);
    let on = run_execution(&scenario, &ExecutionConfig { record_sim_trace: true, ..base.clone() });
    assert_eq!(off.log.events, on.log.events, "process events must not move");
    assert_eq!(off.log.reports, on.log.reports, "report stream must not move");
    assert_eq!(off.log.actuations, on.log.actuations);
    assert_eq!(off.net, on.net, "network counters must not move");
    assert_eq!(off.ended_at, on.ended_at, "end time must not move");
    assert!(off.sim.is_empty(), "tracing off records nothing");
    assert!(!on.sim.is_empty(), "tracing on records the run");
}

#[test]
fn full_pipeline_is_deterministic() {
    assert_eq!(fingerprint(7, 300), fingerprint(7, 300));
    assert_eq!(fingerprint(8, 300), fingerprint(8, 300));
    assert_ne!(fingerprint(7, 300), fingerprint(8, 300), "seeds matter");
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let seeds: Vec<u64> = (0..12).collect();
    let f = |_: usize, &s: &u64| fingerprint(s, 250);
    let t1 = run_sweep(&seeds, 1, f);
    let t4 = run_sweep(&seeds, 4, f);
    let t16 = run_sweep(&seeds, 16, f);
    assert_eq!(t1, t4);
    assert_eq!(t1, t16);
}

#[test]
fn scenario_generation_isolated_from_execution_seed() {
    // The world timeline depends only on its own seed; execution noise
    // (delays, clock errors) must not leak back into ground truth.
    let params = ExhibitionParams {
        doors: 2,
        arrival_rate_hz: 1.0,
        mean_stay: SimDuration::from_secs(30),
        duration: SimTime::from_secs(120),
        capacity: 20,
    };
    let s = exhibition::generate(&params, 42);
    let before = s.timeline.events.clone();
    for exec_seed in 0..5 {
        let cfg = ExecutionConfig { seed: exec_seed, ..Default::default() };
        let _ = run_execution(&s, &cfg);
    }
    assert_eq!(s.timeline.events, before);
}

mod hb_dag {
    use super::*;
    use pervasive_time::sim::trace_analysis::TraceAnalysis;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The happened-before DAG `TraceAnalysis` reconstructs from the
        /// vector stamps must be *isomorphic* to the stamp order: for any
        /// two stamped process events, `f` is reachable from `e` through
        /// the covering edges ⇔ `V(e) < V(f)`. Exercised over real
        /// executions (random world seed and delay) rather than synthetic
        /// stamp sets, so the whole pipeline — clock bundle, engine trace
        /// actions, ring drain, analysis — is under the property.
        #[test]
        fn hb_dag_is_isomorphic_to_vector_stamps(
            seed in 0u64..500,
            delta_ms in 0u64..400,
        ) {
            let params = ExhibitionParams {
                doors: 2,
                arrival_rate_hz: 1.0,
                mean_stay: SimDuration::from_secs(20),
                duration: SimTime::from_secs(30),
                capacity: 8,
            };
            let scenario = exhibition::generate(&params, seed);
            let cfg = ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
                seed,
                record_sim_trace: true,
                ..Default::default()
            };
            let trace = run_execution(&scenario, &cfg);
            let a = TraceAnalysis::build(&trace.sim);
            let nodes = a.hb_nodes();
            prop_assert!(!nodes.is_empty(), "scenario produced no stamped events");
            let index: HashMap<usize, usize> =
                nodes.iter().enumerate().map(|(i, &r)| (r, i)).collect();
            let mut adj = vec![Vec::new(); nodes.len()];
            for (u, v) in a.hb_edges() {
                adj[index[&u]].push(index[&v]);
            }
            for i in 0..nodes.len() {
                let mut reach = vec![false; nodes.len()];
                let mut stack = vec![i];
                while let Some(u) = stack.pop() {
                    for &v in &adj[u] {
                        if !reach[v] {
                            reach[v] = true;
                            stack.push(v);
                        }
                    }
                }
                for j in 0..nodes.len() {
                    prop_assert_eq!(
                        reach[j],
                        a.happened_before(nodes[i], nodes[j]),
                        "edge closure and stamp order disagree at ({}, {})",
                        i,
                        j
                    );
                }
            }
        }
    }
}

#[test]
fn delta_zero_is_invariant_to_seed() {
    // Under the synchronous model nothing is random in the network plane,
    // so detection outcomes are identical across execution seeds (only the
    // clock-hardware draws differ, and strobe detection ignores physical
    // clocks).
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(300),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, 5);
    let pred = Predicate::occupancy_over(3, 70);
    let detect = |seed: u64| {
        let cfg = ExecutionConfig { delay: DelayModel::Synchronous, seed, ..Default::default() };
        let trace = run_execution(&scenario, &cfg);
        detect_occurrences(
            &trace,
            &pred,
            &scenario.timeline.initial_state(),
            Discipline::VectorStrobe,
        )
    };
    assert_eq!(detect(1), detect(99));
}

mod shard_invariance {
    use super::*;
    use proptest::prelude::*;

    /// One full execution at a given shard count, plan, and window
    /// discipline, with everything observable folded into a comparable
    /// tuple.
    fn fingerprint(
        shards: usize,
        seed: u64,
        delay_min_ms: u64,
        chaos: bool,
        plan: ShardPlanKind,
        spec: SpeculationMode,
    ) -> pervasive_time::core::execution::ExecutionTrace {
        let params = ExhibitionParams {
            doors: 3,
            arrival_rate_hz: 1.5,
            mean_stay: SimDuration::from_secs(25),
            duration: SimTime::from_secs(60),
            capacity: 20,
        };
        let scenario = exhibition::generate(&params, seed);
        let faults = chaos.then(|| {
            let mut c = ChaosConfig::new(vec![0, 1, 2], SimTime::from_secs(60));
            c.partitions = 1;
            c.park = true;
            FaultScript::generate(&c, seed ^ 0xC0FFEE)
        });
        let cfg = ExecutionConfig {
            // min > 0 gives the sharded engine real lookahead; the exact
            // values vary per case so many window widths are exercised.
            delay: DelayModel::DeltaBounded {
                min: SimDuration::from_millis(delay_min_ms),
                max: SimDuration::from_millis(delay_min_ms + 120),
            },
            seed,
            record_sim_trace: true,
            faults,
            shards,
            shard_plan: Some(plan),
            speculation: Some(spec),
            ..Default::default()
        };
        run_execution(&scenario, &cfg)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole's contract, as a property: the shard count, the
        /// actor→shard plan, and the window discipline are all
        /// **unobservable**. For random seeds, lookahead widths, and with
        /// or without a seeded chaos fault script, every observable — the
        /// full structured trace (hashed), the execution log, the network
        /// counters, the fault counters, the end time — is bit-identical
        /// across shard counts {1, 2, 4, 7} × {conservative, optimistic}
        /// × {contiguous, affinity}.
        #[test]
        fn shard_count_is_unobservable(
            seed in 0u64..1000,
            delay_min_ms in 1u64..40,
            chaos_bit in 0u64..2,
        ) {
            let chaos = chaos_bit == 1;
            let want = fingerprint(
                1, seed, delay_min_ms, chaos,
                ShardPlanKind::Contiguous, SpeculationMode::Conservative,
            );
            let want_hash = trace_full_hash(&want.sim);
            if chaos {
                let fs = want.faults.clone().expect("plane installed");
                prop_assert!(fs.crashes + fs.cuts + fs.clock_faults > 0, "chaos script must bite");
            }
            for shards in [2usize, 4, 7] {
                for spec in [SpeculationMode::Conservative, SpeculationMode::Optimistic] {
                    for plan in [ShardPlanKind::Contiguous, ShardPlanKind::Affinity] {
                        let got = fingerprint(shards, seed, delay_min_ms, chaos, plan, spec);
                        let label = format!("shards={shards} {spec:?} {plan:?}");
                        prop_assert_eq!(trace_full_hash(&got.sim), want_hash, "trace hash, {}", label);
                        prop_assert_eq!(&got.log.events, &want.log.events, "events, {}", label);
                        prop_assert_eq!(&got.log.reports, &want.log.reports, "reports, {}", label);
                        prop_assert_eq!(&got.log.actuations, &want.log.actuations, "actuations, {}", label);
                        prop_assert_eq!(&got.net, &want.net, "net counters, {}", label);
                        prop_assert_eq!(&got.faults, &want.faults, "fault stats, {}", label);
                        prop_assert_eq!(got.ended_at, want.ended_at, "end time, {}", label);
                    }
                }
            }
        }
    }
}

/// The optimistic (Time Warp) engine against a pinned golden hash: a fixed
/// `(scenario, config, seed)` with a floored Δ-band (the floor is the
/// lookahead; a pure Δ-bounded delay has minimum 0 and would fall back to
/// the sequential loop) must produce the recorded full-format trace hash
/// both sequentially and under optimistic sharded execution — while the
/// optimistic run actually speculates (rollbacks > 0) and the sequential
/// one, by construction, never does.
#[test]
fn optimistic_run_reproduces_the_sequential_golden_hash() {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(200),
        capacity: 90,
    };
    let scenario = exhibition::generate(&params, 13);
    let cfg = |shards: usize, spec: SpeculationMode| ExecutionConfig {
        delay: DelayModel::DeltaBounded {
            min: SimDuration::from_millis(30),
            max: SimDuration::from_millis(150),
        },
        seed: 13,
        record_sim_trace: true,
        shards,
        speculation: Some(spec),
        ..Default::default()
    };
    let seq = run_execution(&scenario, &cfg(1, SpeculationMode::Conservative));
    assert!(seq.sim.len() > 1_000, "trace must be non-trivial, got {}", seq.sim.len());
    assert_eq!(seq.rollbacks, 0, "the sequential engine never rolls back");
    assert_eq!(
        trace_full_hash(&seq.sim),
        OPTIMISTIC_GOLDEN_FULL_TRACE_HASH,
        "sequential floored-Δ run diverged from the recorded golden hash"
    );
    let opt = run_execution(&scenario, &cfg(4, SpeculationMode::Optimistic));
    assert!(opt.rollbacks > 0, "the optimistic run must actually speculate and roll back");
    assert_eq!(
        trace_full_hash(&opt.sim),
        OPTIMISTIC_GOLDEN_FULL_TRACE_HASH,
        "optimistic run diverged from the sequential golden hash"
    );
    assert_eq!(seq.log.events, opt.log.events);
    assert_eq!(seq.log.reports, opt.log.reports);
    assert_eq!(seq.net, opt.net);
    assert_eq!(seq.ended_at, opt.ended_at);
}

/// Recorded from the sequential leg of
/// `optimistic_run_reproduces_the_sequential_golden_hash`; deterministic
/// across machines (FNV-1a over the full trace format).
const OPTIMISTIC_GOLDEN_FULL_TRACE_HASH: u64 = 397811650213989502;

mod affinity_plan {
    use pervasive_time::sim::engine::ShardPlan;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `ShardPlan::by_affinity` is a valid total partition for any
        /// random weighted edge set: every actor is owned by exactly one
        /// shard, shard indices stay below the requested count, and the
        /// plan is a pure function of its inputs.
        #[test]
        fn by_affinity_is_a_valid_total_partition(
            n in 1usize..40,
            k in 1usize..9,
            raw_edges in proptest::collection::vec((0usize..40, 0usize..40, 0u64..1000), 0..60),
        ) {
            let edges: Vec<(usize, usize, u64)> = raw_edges
                .into_iter()
                .map(|(a, b, w)| (a % n, b % n, w))
                .collect();
            let plan = ShardPlan::by_affinity(n, k, &edges);
            prop_assert_eq!(plan.owner().len(), n, "every actor must be assigned");
            prop_assert!(plan.shard_count() <= k, "plan must respect the requested shard count");
            prop_assert!(plan.shard_count() >= 1);
            for (actor, &owner) in plan.owner().iter().enumerate() {
                prop_assert!(
                    (owner as usize) < plan.shard_count(),
                    "actor {} owned by out-of-range shard {}", actor, owner
                );
            }
            // Deterministic: same inputs, same plan.
            let again = ShardPlan::by_affinity(n, k, &edges);
            prop_assert_eq!(plan.owner(), again.owner());
        }
    }
}

/// The sparse channel store is a drop-in for the dense FIFO matrix: the
/// same E7 habitat cell, run with the dense path (default threshold) and
/// with the sparse path forced (`fifo_dense_limit: Some(0)`), must produce
/// the identical execution down to the full-format trace hash. Above
/// `DENSE_ACTOR_LIMIT` the switch happens automatically; this pins that the
/// switch is unobservable.
#[test]
fn sparse_channel_store_matches_dense_on_an_e7_cell() {
    let params = HabitatParams {
        stations: 8,
        animals: 4,
        mean_dwell: SimDuration::from_secs(600),
        duration: SimTime::from_secs(3600),
    };
    let scenario = habitat::generate(&params, 42);
    let cell = |dense_limit: Option<usize>| {
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(300)),
            seed: 1,
            record_sim_trace: true,
            fifo_dense_limit: dense_limit,
            ..Default::default()
        };
        run_execution(&scenario, &cfg)
    };
    let dense = cell(None);
    let sparse = cell(Some(0));
    assert_eq!(
        trace_full_hash(&sparse.sim),
        trace_full_hash(&dense.sim),
        "sparse FIFO store must reproduce the dense trace byte-for-byte"
    );
    assert_eq!(trace_projection_hash(&sparse.sim), trace_projection_hash(&dense.sim));
    assert_eq!(sparse.log.events, dense.log.events);
    assert_eq!(sparse.log.reports, dense.log.reports);
    assert_eq!(sparse.net, dense.net);
    assert_eq!(sparse.ended_at, dense.ended_at);
}
