//! Reproducibility guarantees: every layer is a pure function of
//! `(config, seed)`, and parallel sweeps are thread-count invariant.

use pervasive_time::prelude::*;
use pervasive_time::sim::sweep::run_sweep;

fn fingerprint(seed: u64, delta_ms: u64) -> (usize, u64, u64, Vec<(SimTime, Option<SimTime>)>) {
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(300),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, seed);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
        seed,
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let pred = Predicate::occupancy_over(3, 70);
    let det = detect_occurrences(
        &trace,
        &pred,
        &scenario.timeline.initial_state(),
        Discipline::VectorStrobe,
    );
    (
        trace.log.reports.len(),
        trace.net.messages_sent,
        trace.net.bytes_sent,
        det.into_iter().map(|d| (d.start, d.end)).collect(),
    )
}

/// FNV-1a over a stable encoding of the full network-plane trace. Unlike
/// `DefaultHasher`, FNV has a specified algorithm, so the constant below is
/// meaningful across Rust versions and standard-library changes.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn trace_hash(trace: &pervasive_time::sim::trace::Trace) -> u64 {
    use pervasive_time::sim::trace::TraceKind;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.events() {
        fnv1a(&mut h, &e.at.as_nanos().to_le_bytes());
        let (tag, a, b, c): (u8, u64, u64, u64) = match &e.kind {
            TraceKind::Sent { from, to, bytes } => (0, *from as u64, *to as u64, *bytes as u64),
            TraceKind::Delivered { from, to } => (1, *from as u64, *to as u64, 0),
            TraceKind::Lost { from, to } => (2, *from as u64, *to as u64, 0),
            TraceKind::TimerFired { actor, tag } => (3, *actor as u64, *tag, 0),
            TraceKind::Note { actor, label } => {
                fnv1a(&mut h, label.as_bytes());
                (4, *actor as u64, label.len() as u64, 0)
            }
        };
        fnv1a(&mut h, &[tag]);
        fnv1a(&mut h, &a.to_le_bytes());
        fnv1a(&mut h, &b.to_le_bytes());
        fnv1a(&mut h, &c.to_le_bytes());
    }
    h
}

/// Golden-trace regression: the exact event-for-event network trace of a
/// fixed `(scenario, config, seed)` triple, hashed. The constant was
/// recorded before the zero-allocation engine overhaul (PR 2); any
/// optimization that reorders events, perturbs an RNG draw, or changes a
/// delivery time will move this hash. Δ is variable (sampled) and loss is
/// nonzero so the fifo clamp, the loss path, and the delay sampler all
/// execute.
#[test]
fn golden_trace_hash_is_stable() {
    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(200),
        capacity: 90,
    };
    let scenario = exhibition::generate(&params, 13);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(150)),
        loss: LossModel::Bernoulli { p: 0.02 },
        seed: 13,
        record_sim_trace: true,
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    assert!(trace.sim.len() > 1_000, "trace must be non-trivial, got {}", trace.sim.len());
    assert_eq!(
        trace_hash(&trace.sim),
        9037720422308291165,
        "engine trace diverged from the pre-optimization golden hash"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    assert_eq!(fingerprint(7, 300), fingerprint(7, 300));
    assert_eq!(fingerprint(8, 300), fingerprint(8, 300));
    assert_ne!(fingerprint(7, 300), fingerprint(8, 300), "seeds matter");
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let seeds: Vec<u64> = (0..12).collect();
    let f = |_: usize, &s: &u64| fingerprint(s, 250);
    let t1 = run_sweep(&seeds, 1, f);
    let t4 = run_sweep(&seeds, 4, f);
    let t16 = run_sweep(&seeds, 16, f);
    assert_eq!(t1, t4);
    assert_eq!(t1, t16);
}

#[test]
fn scenario_generation_isolated_from_execution_seed() {
    // The world timeline depends only on its own seed; execution noise
    // (delays, clock errors) must not leak back into ground truth.
    let params = ExhibitionParams {
        doors: 2,
        arrival_rate_hz: 1.0,
        mean_stay: SimDuration::from_secs(30),
        duration: SimTime::from_secs(120),
        capacity: 20,
    };
    let s = exhibition::generate(&params, 42);
    let before = s.timeline.events.clone();
    for exec_seed in 0..5 {
        let cfg = ExecutionConfig { seed: exec_seed, ..Default::default() };
        let _ = run_execution(&s, &cfg);
    }
    assert_eq!(s.timeline.events, before);
}

#[test]
fn delta_zero_is_invariant_to_seed() {
    // Under the synchronous model nothing is random in the network plane,
    // so detection outcomes are identical across execution seeds (only the
    // clock-hardware draws differ, and strobe detection ignores physical
    // clocks).
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(300),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, 5);
    let pred = Predicate::occupancy_over(3, 70);
    let detect = |seed: u64| {
        let cfg = ExecutionConfig { delay: DelayModel::Synchronous, seed, ..Default::default() };
        let trace = run_execution(&scenario, &cfg);
        detect_occurrences(
            &trace,
            &pred,
            &scenario.timeline.initial_state(),
            Discipline::VectorStrobe,
        )
    };
    assert_eq!(detect(1), detect(99));
}
