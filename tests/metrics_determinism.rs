//! The metrics layer is observational: turning instrumentation on must not
//! change a single byte of any output. These tests run the full pipeline
//! (execution → sweep detection → online detection) twice — once plain,
//! once with a live [`Metrics`] registry threaded through every layer — and
//! compare the *serialized* outputs for bit-identity.

use pervasive_time::prelude::*;

fn scenario_and_cfg(seed: u64) -> (Scenario, ExecutionConfig) {
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 2.0,
        mean_stay: SimDuration::from_secs(45),
        duration: SimTime::from_secs(400),
        capacity: 70,
    };
    let scenario = exhibition::generate(&params, seed);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(250)),
        seed,
        ..Default::default()
    };
    (scenario, cfg)
}

#[test]
fn instrumented_pipeline_output_is_bit_identical() {
    for seed in [3u64, 11, 29] {
        let (scenario, cfg) = scenario_and_cfg(seed);
        let init = scenario.timeline.initial_state();
        let pred = Predicate::occupancy_over(3, 70);

        // Metrics OFF: the plain entry points.
        let trace_off = run_execution(&scenario, &cfg);
        let det_off = detect_occurrences(&trace_off, &pred, &init, Discipline::VectorStrobe);

        // Metrics ON: live registry through engine, execution, and detector.
        let metrics = Metrics::new();
        let trace_on = run_execution_instrumented(&scenario, &cfg, &metrics);
        let dm = DetectorMetrics::attach(&metrics);
        let det_on =
            detect_occurrences_instrumented(&trace_on, &pred, &init, Discipline::VectorStrobe, &dm);

        // Bit-identity via the serialized form — any drift in any field of
        // the log, the network counters, or the detections shows up here.
        assert_eq!(
            serde_json::to_string(&trace_off.log).unwrap(),
            serde_json::to_string(&trace_on.log).unwrap(),
            "seed {seed}: execution log must be bit-identical"
        );
        assert_eq!(
            serde_json::to_string(&trace_off.net).unwrap(),
            serde_json::to_string(&trace_on.net).unwrap(),
            "seed {seed}: network counters must be bit-identical"
        );
        assert_eq!(
            serde_json::to_string(&det_off).unwrap(),
            serde_json::to_string(&det_on).unwrap(),
            "seed {seed}: detections must be bit-identical"
        );

        // And the instrumentation actually observed the run.
        let snap = metrics.snapshot();
        assert!(snap.counter("engine.events_processed").unwrap_or(0) > 0);
        assert_eq!(
            snap.counter("engine.messages_delivered"),
            Some(trace_on.net.messages_delivered),
            "seed {seed}"
        );
        assert_eq!(snap.counter("detector.occurrences"), Some(det_on.len() as u64), "seed {seed}");
    }
}

#[test]
fn instrumented_online_detection_is_bit_identical() {
    let (scenario, cfg) = scenario_and_cfg(17);
    let init = scenario.timeline.initial_state();
    let pred = Predicate::occupancy_over(3, 70);
    let trace = run_execution(&scenario, &cfg);
    let hold = SimDuration::from_millis(500); // 2Δ

    let mut plain = OnlineDetector::new(pred.clone(), &init, hold);
    let metrics = Metrics::new();
    let mut inst =
        OnlineDetector::new(pred, &init, hold).with_metrics(DetectorMetrics::attach(&metrics));
    for r in &trace.log.reports {
        plain.offer(r);
        inst.offer(r);
    }
    let out_plain = plain.finish();
    let out_inst = inst.finish();
    assert_eq!(
        serde_json::to_string(&out_plain).unwrap(),
        serde_json::to_string(&out_inst).unwrap(),
        "online detections must be bit-identical"
    );
    assert_eq!(metrics.snapshot().counter("detector.occurrences"), Some(out_inst.len() as u64));
}
