//! End-to-end exercises of the causal tracing pipeline: a real execution's
//! structured trace, merged detector verdicts, critical-path extraction
//! behind a detection, channel statistics, and exporter validity.

use pervasive_time::prelude::*;
use pervasive_time::sim::trace::{ProcessEventKind, TraceKind};
use pervasive_time::sim::trace_analysis::TraceAnalysis;
use pervasive_time::sim::trace_export;

fn traced_run() -> (pervasive_time::core::execution::ExecutionTrace, Predicate, WorldState) {
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(600),
        capacity: 60,
    };
    let scenario = exhibition::generate(&params, 17);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(300)),
        seed: 17,
        record_sim_trace: true,
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    let pred = Predicate::occupancy_over(3, 60);
    // Fixture sanity (probed once): this (scenario, seed) yields several
    // truth occurrences, of which at least one closes within the run.
    let init = scenario.timeline.initial_state();
    (trace, pred, init)
}

/// The acceptance-criterion chain: a detector occurrence is attributed
/// end-to-end — sense at the reporting process, the report send, its
/// network delivery at the root, and the verdict — with per-hop latency.
#[test]
fn critical_path_attributes_a_detection_end_to_end() {
    let (trace, pred, init) = traced_run();
    let mut sink = trace.sim.clone();
    let detections = pervasive_time::predicates::detect_occurrences_traced(
        &trace,
        &pred,
        &init,
        Discipline::Arrival,
        &mut sink,
    );
    assert!(
        detections.iter().any(|d| d.end.is_some()),
        "scenario must produce at least one report-completed occurrence"
    );

    let a = TraceAnalysis::build(&sink);
    let verdicts = a.detections();
    assert_eq!(verdicts.len(), detections.len(), "one Detect record per occurrence");

    let mut attributed = 0usize;
    for &v in &verdicts {
        let Some(chain) = a.detection_chain(v) else { continue };
        attributed += 1;
        let records = a.records();
        // The chain is causally ordered in time and ends at the verdict.
        assert!(chain.records.windows(2).all(|w| records[w[0]].at <= records[w[1]].at));
        assert_eq!(*chain.records.last().unwrap(), v);
        // It crosses the network: the completing report's send and delivery
        // are both on the path, and the sense that caused the report roots
        // it.
        let kinds: Vec<&TraceKind> = chain.records.iter().map(|&i| &records[i].kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::Sent { .. })));
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::Delivered { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::Process { kind: ProcessEventKind::Sense, .. })));
        // Per-hop latency attribution sums to the end-to-end total.
        assert_eq!(chain.hops.len() + 1, chain.records.len());
        assert_eq!(chain.hops.iter().copied().sum::<SimDuration>(), chain.total);
        // The network hop is the Δ-bounded (≤300 ms) sampled delivery delay.
        let net_hop = chain
            .records
            .windows(2)
            .zip(&chain.hops)
            .find(|(w, _)| matches!(records[w[1]].kind, TraceKind::Delivered { .. }))
            .map(|(_, h)| *h)
            .expect("chain contains the delivery hop");
        assert!(net_hop <= SimDuration::from_millis(300), "hop within the Δ bound");
    }
    assert!(attributed >= 1, "at least one detection attributed end-to-end");
}

#[test]
fn channel_stats_histogram_the_report_path() {
    let (trace, _, _) = traced_run();
    let a = TraceAnalysis::build(&trace.sim);
    let stats = a.channel_stats();
    assert!(!stats.is_empty());
    let root = trace.root_id();
    // Every sensor→root channel carried reports with positive latency.
    let mut sensor_channels = 0usize;
    for ((from, to), cs) in stats {
        if *to == root {
            sensor_channels += 1;
            assert!(cs.sent > 0 && cs.bytes > 0);
            assert!(cs.latency.count() > 0);
            let mean = cs.latency.mean();
            assert!(
                cs.latency.min() <= mean && mean <= cs.latency.max(),
                "histogram moments must be consistent"
            );
        }
        assert!(*from != *to, "no self-channels in the trace");
    }
    assert_eq!(sensor_channels, trace.n, "every sensor reported to the root");
}

#[test]
fn exporters_round_trip_a_real_execution() {
    let (trace, pred, init) = traced_run();
    let mut sink = trace.sim.clone();
    pervasive_time::predicates::detect_occurrences_traced(
        &trace,
        &pred,
        &init,
        Discipline::Arrival,
        &mut sink,
    );
    let root = trace.root_id();
    let name = |a: usize| if a == root { "root".to_string() } else { format!("sensor {a}") };

    let chrome = trace_export::chrome_trace_json(&sink, name);
    let summary = trace_export::validate_chrome(&chrome).expect("valid Chrome trace JSON");
    assert!(summary.events > 0);
    assert!(summary.flows > 0, "messages appear as flow arrows");

    let jsonl = trace_export::jsonl(&sink);
    let mut detect_lines = 0usize;
    for line in jsonl.lines() {
        let v = serde_json::parse(line).expect("each JSONL line parses");
        let map = v.as_map().expect("each line is an object");
        assert!(map.iter().any(|(k, _)| k == "seq"));
        assert!(map.iter().any(|(k, _)| k == "at_ns"));
        if map.iter().any(|(k, v)| k == "event" && v.as_str() == Some("process"))
            && line.contains("\"detect\"")
        {
            detect_lines += 1;
        }
    }
    assert_eq!(jsonl.lines().count(), sink.len(), "one line per record");
    assert!(detect_lines > 0, "merged verdicts survive the JSONL export");
}
