//! Cross-validation between independent implementations of the same
//! concept: the lattice view, the interval-overlap view, and the sweep
//! detectors must agree where the theory says they must.

use pervasive_time::lattice::{enumerate_lattice, History, StampedInterval};
use pervasive_time::prelude::*;

fn small_trace(delta_ms: u64, seed: u64) -> (Scenario, ExecutionTrace) {
    let params = ExhibitionParams {
        doors: 3,
        arrival_rate_hz: 0.5,
        mean_stay: SimDuration::from_secs(20),
        duration: SimTime::from_secs(60),
        capacity: 5,
    };
    let scenario = exhibition::generate(&params, seed);
    let cfg = ExecutionConfig {
        delay: if delta_ms == 0 {
            DelayModel::Synchronous
        } else {
            DelayModel::delta(SimDuration::from_millis(delta_ms))
        },
        seed,
        ..Default::default()
    };
    let trace = run_execution(&scenario, &cfg);
    (scenario, trace)
}

fn strobe_history(trace: &ExecutionTrace) -> History {
    let mut stamps = vec![Vec::new(); trace.n];
    let mut events: Vec<_> = trace.log.sense_events();
    events.sort_by_key(|e| (e.process, e.seq));
    for e in events {
        if e.process < trace.n {
            stamps[e.process].push(e.stamps.strobe_vector.clone());
        }
    }
    History::new(stamps)
}

#[test]
fn delta_zero_lattice_is_a_chain_and_orders_all_events() {
    let (_, trace) = small_trace(0, 3);
    let h = strobe_history(&trace);
    let stats = enumerate_lattice(&h, 1_000_000);
    assert_eq!(stats.states, h.chain_cuts(), "Δ=0 ⇒ chain of np+1 states");
    // Equivalent statement at the stamp level: no two sense events at
    // different processes are concurrent.
    let senses = trace.log.sense_events();
    for i in 0..senses.len() {
        for j in (i + 1)..senses.len() {
            if senses[i].process != senses[j].process {
                assert!(
                    !senses[i].stamps.strobe_vector.concurrent(&senses[j].stamps.strobe_vector),
                    "chain lattice implies no concurrency"
                );
            }
        }
    }
}

#[test]
fn lattice_size_grows_with_delta() {
    let sizes: Vec<u64> = [0u64, 1000, 30_000]
        .iter()
        .map(|&d| {
            let (_, trace) = small_trace(d, 3);
            enumerate_lattice(&strobe_history(&trace), 10_000_000).states
        })
        .collect();
    assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "sizes {sizes:?}");
    assert!(sizes[2] > sizes[0], "30s delays must fatten the lattice");
}

#[test]
fn concurrency_count_matches_lattice_width_direction() {
    // More concurrent pairs ⇔ wider lattice (coarse cross-check).
    let width_at = |d| {
        let (_, trace) = small_trace(d, 9);
        let h = strobe_history(&trace);
        enumerate_lattice(&h, 10_000_000).levels.iter().copied().max().unwrap_or(0)
    };
    assert!(width_at(0) <= width_at(30_000));
    assert_eq!(width_at(0), 1);
}

#[test]
fn stamped_interval_tests_agree_with_raw_stamp_order() {
    let (_, trace) = small_trace(200, 5);
    let senses = trace.log.sense_events();
    // Build per-event degenerate intervals [stamp, stamp] and check that
    // surely_precedes agrees with the raw vector order.
    for i in 0..senses.len().min(20) {
        for j in 0..senses.len().min(20) {
            if i == j {
                continue;
            }
            let a = &senses[i].stamps.strobe_vector;
            let b = &senses[j].stamps.strobe_vector;
            let ia = StampedInterval { lo: a.clone(), hi: a.clone() };
            let ib = StampedInterval { lo: b.clone(), hi: b.clone() };
            assert_eq!(ia.surely_precedes(&ib), a.lt(b));
            assert_eq!(
                ia.possibly_overlaps(&ib),
                !a.lt(b) && !b.lt(a),
                "degenerate intervals overlap iff stamps are unordered-or-equal"
            );
        }
    }
}

#[test]
fn conjunctive_detection_consistent_with_relational_sweep() {
    // A conjunction evaluated as a relational predicate by the sweep
    // detector and as interval overlaps by the conjunctive detector must
    // agree on *whether it ever held* at Δ=0.
    let params = ExhibitionParams {
        doors: 2,
        arrival_rate_hz: 3.0,
        mean_stay: SimDuration::from_secs(60),
        duration: SimTime::from_secs(400),
        capacity: 100,
    };
    for seed in 0..5 {
        let scenario = exhibition::generate(&params, seed);
        let cfg = ExecutionConfig { delay: DelayModel::Synchronous, seed, ..Default::default() };
        let trace = run_execution(&scenario, &cfg);
        let init = scenario.timeline.initial_state();
        let conjuncts: Vec<Conjunct> = (0..2)
            .map(|d| Conjunct {
                process: d,
                expr: Expr::var(AttrKey::new(d, 0))
                    .sub(Expr::var(AttrKey::new(d, 1)))
                    .gt(Expr::int(4)),
            })
            .collect();
        let pred = Predicate::Conjunctive(conjuncts.clone());
        let sweep = detect_occurrences(&trace, &pred, &init, Discipline::VectorStrobe);
        let ivs = detect_conjunctive(&trace, &conjuncts, &init, StampFamily::StrobeVector);
        let definite = ivs.iter().filter(|o| o.definitely).count();
        assert_eq!(
            sweep.is_empty(),
            definite == 0,
            "seed {seed}: sweep found {} but interval detector found {definite}",
            sweep.len()
        );
    }
}

#[test]
fn flooded_star_detection_matches_full_mesh_quality() {
    // A star overlay with the root at the hub: sensors reach each other
    // only through the relay. With flooding on, the vector-strobe detector
    // should perform about as well as on the full mesh.
    use pervasive_time::core::StrobePolicy;
    use pervasive_time::sim::network::Topology;

    let params = ExhibitionParams {
        doors: 4,
        arrival_rate_hz: 1.0,
        mean_stay: SimDuration::from_secs(40),
        duration: SimTime::from_secs(300),
        capacity: 25,
    };
    let s = exhibition::generate(&params, 9);
    let pred = Predicate::occupancy_over(4, 25);
    let star = {
        let mut adj = vec![vec![false; 5]; 5];
        adj[4][..4].iter_mut().for_each(|e| *e = true);
        for row in adj.iter_mut().take(4) {
            row[4] = true;
        }
        Topology::Graph { adj }
    };
    let detect = |topology: Option<Topology>, flood: bool| {
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(50)),
            topology,
            strobes: StrobePolicy { flood, ..Default::default() },
            seed: 1,
            ..Default::default()
        };
        let trace = run_execution(&s, &cfg);
        detect_occurrences(&trace, &pred, &s.timeline.initial_state(), Discipline::VectorStrobe)
            .len()
    };
    let mesh = detect(None, false);
    let starred = detect(Some(star), true);
    assert!(
        starred.abs_diff(mesh) <= 1,
        "flooded star ({starred}) should detect about as well as the mesh ({mesh})"
    );
}
